#include "milp/branch_and_bound.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "core/search_coordinator.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace rankhow {

namespace {

/// A subproblem: bound fixings applied on top of the root core LP, plus the
/// set of indicator big-M rows its ancestors found binding (lazily grown —
/// children start from the parent's set instead of rediscovering it), plus
/// the basis its parent's LP ended on (the warm start that lets a worker's
/// IncrementalLp *resolve* this node in a few dual pivots instead of
/// re-solving it from scratch). Bases are engine-local — each worker
/// materializes lazy rows in its own first-use order, so `basis_owner`
/// records which worker's engine the snapshot belongs to; other workers
/// simply resolve from their engine's current state instead.
struct Node {
  std::vector<std::pair<int, double>> fixings;  // (binary var, 0.0 or 1.0)
  std::shared_ptr<const std::vector<int>> active_rows;  // sorted pool ids
  std::shared_ptr<const LpBasis> warm_basis;
  int basis_owner = -1;
  double bound;                                 // parent LP bound (lower)
  int depth = 0;

  double frontier_bound() const { return bound; }
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    if (a.bound != b.bound) return a.bound > b.bound;  // best (lowest) first
    return a.depth < b.depth;  // deeper first as tie-break (dive)
  }
};

/// Search-global state: the compiled instance (immutable once built), the
/// shared frontier, and the coordinator carrying incumbent/deadline/stop.
struct SearchShared {
  const MilpModel& model;
  const LpModel& core;
  const std::vector<MilpModel::CompiledRow>& compiled;
  size_t num_indicators;
  const std::vector<int>& binaries;
  const BnbOptions& options;
  const PrimalHeuristic& heuristic;
  int num_workers;
  SearchCoordinator coordinator;
  ShardedFrontier<Node, NodeOrder> frontier;
  /// Global node counter (max_nodes enforcement + final stats).
  std::atomic<int64_t> nodes_explored{0};
  std::atomic<int64_t> numerical_drops{0};
};

/// One worker's mutable state: its private warm engine plus the delta
/// bookkeeping that expresses each popped node against that engine, and
/// private stats merged after the join. Nothing here is shared.
struct WorkerState {
  int id = 0;
  std::unique_ptr<IncrementalLp> inc;
  std::vector<int> pool_to_row;   // pool idx -> engine row id (-1 = absent)
  std::vector<int> inc_active;    // sorted pool ids active in the engine
  std::vector<std::pair<int, double>> applied_fixings;
  int64_t lp_iterations = 0;
  int64_t lazy_rounds = 0;
  int64_t fallback_solves = 0;
};

constexpr double kViolationTol = 1e-7;
constexpr int kMaxLazyRounds = 100;

/// RANKHOW_XCHECK_LP=1 cross-checks every warm node LP against a cold
/// SimplexSolver solve of the identical model and reports divergences to
/// stderr — the debug harness that caught the warm engine's false
/// infeasibility verdicts (see lp/incremental.cc's re-confirmation note).
/// Keep it: it turns "the search went wrong somewhere" into "this node's
/// LP disagrees".
const bool kCrossCheckLp = std::getenv("RANKHOW_XCHECK_LP") != nullptr;

/// Explores one node: delta-syncs the worker's engine (or assembles the
/// legacy cold LP), runs the lazy separation loop, offers incumbents
/// through the coordinator, and pushes children back onto the frontier.
void ProcessNode(SearchShared& sh, WorkerState& ws, Node node) {
  const BnbOptions& options = sh.options;
  const Deadline& deadline = sh.coordinator.deadline();

  auto tighten = [&](double bound) {
    return options.objective_is_integral ? std::ceil(bound - 1e-6) : bound;
  };

  // Activates pool row `idx` in this worker's engine, materializing it on
  // first use (engine row ids are therefore worker-local).
  auto engine_enable_row = [&](int idx) {
    if (ws.pool_to_row[idx] < 0) {
      ws.pool_to_row[idx] = ws.inc->AddRow(
          sh.compiled[idx].expr, sh.compiled[idx].op, sh.compiled[idx].rhs);
    } else {
      ws.inc->SetRowActive(ws.pool_to_row[idx], true);
    }
  };

  // Branches both ways on `var` from `node`, carrying `bound`, `active`,
  // and the basis this node's LP ended on (both children resolve from it).
  auto branch = [&](int var, double first_value, double bound,
                    std::shared_ptr<const std::vector<int>> active,
                    std::shared_ptr<const LpBasis> basis, int basis_owner) {
    for (double value : {first_value, 1.0 - first_value}) {
      Node child;
      child.fixings = node.fixings;
      child.fixings.emplace_back(var, value);
      child.active_rows = active;
      child.warm_basis = basis;
      child.basis_owner = basis_owner;
      child.bound = bound;
      child.depth = node.depth + 1;
      sh.frontier.Push(std::move(child));
    }
  };

  std::shared_ptr<const std::vector<int>> active = node.active_rows;
  bool node_warm = ws.inc != nullptr;
  LpModel relaxation;  // cold path / fallback only

  // Assembles the legacy per-node LP copy: core + fixings + active rows,
  // unfixed binaries relaxed to an open upper bound (see the pool in
  // Solve).
  auto assemble_cold = [&]() {
    relaxation = sh.core;
    for (int var : sh.binaries) {
      relaxation.mutable_variable(var).upper = kInfinity;
    }
    for (const auto& [var, value] : node.fixings) {
      LpVariable& v = relaxation.mutable_variable(var);
      v.lower = value;
      v.upper = value;
    }
    for (int idx : *active) {
      relaxation.AddConstraint(LinearExpr(sh.compiled[idx].expr),
                               sh.compiled[idx].op, sh.compiled[idx].rhs,
                               "lazy");
    }
  };

  if (node_warm) {
    // Express this node as a delta against the engine: undo the previous
    // node's fixings, apply ours, and sync the active-row subset (both
    // sides sorted; rows missing from the engine are materialized).
    for (const auto& [var, value] : ws.applied_fixings) {
      (void)value;
      const LpVariable& v = sh.core.variable(var);
      ws.inc->SetVariableBounds(var, v.lower, v.upper);
    }
    for (const auto& [var, value] : node.fixings) {
      ws.inc->SetVariableBounds(var, value, value);
    }
    ws.applied_fixings = node.fixings;
    const std::vector<int>& want = *active;
    size_t a = 0, b = 0;
    while (a < ws.inc_active.size() || b < want.size()) {
      if (b >= want.size() ||
          (a < ws.inc_active.size() && ws.inc_active[a] < want[b])) {
        ws.inc->SetRowActive(ws.pool_to_row[ws.inc_active[a]], false);
        ++a;
      } else if (a >= ws.inc_active.size() || ws.inc_active[a] > want[b]) {
        engine_enable_row(want[b]);
        ++b;
      } else {
        ++a;
        ++b;
      }
    }
    ws.inc_active = want;
  } else {
    assemble_cold();
  }

  // Lazy separation loop: solve, add violated indicator rows, re-solve.
  // Every intermediate LP value is already a valid lower bound (a subset
  // of rows only relaxes further), so pruning can fire mid-loop.
  Result<LpSolution> lp = Status::Internal("lazy loop never ran");
  bool clean = false;     // no violated indicator rows at lp solution
  bool pruned = false;
  bool lp_failed = false;
  bool out_of_time = false;
  double bound = node.bound;
  for (int round = 0; round < kMaxLazyRounds; ++round) {
    // Re-budget every round with the remaining global time: one node can
    // run many separation rounds, and each re-solve must fit what is left
    // of time_limit_seconds (not what was left when the node started).
    if (deadline.Expired()) {
      out_of_time = true;
      break;
    }
    const double remaining = deadline.RemainingOrZero();
    if (node_warm) {
      // First round resolves from the parent's basis — when that basis
      // came from *this worker's* engine; bases from sibling engines index
      // different lazy-row materializations, so they are skipped and the
      // engine's own current basis serves instead. Later rounds reuse the
      // basis the previous round ended on (ideal after row adds).
      const LpBasis* hint = round == 0 && node.warm_basis &&
                                    node.basis_owner == ws.id
                                ? node.warm_basis.get()
                                : nullptr;
      lp = ws.inc->Solve(hint, remaining);
      if (kCrossCheckLp) {
        // The warm engine keeps binaries at native [0,1]; mirror that here
        // (unlike assemble_cold's relaxed bounds) so the models match.
        LpModel xm = sh.core;
        for (const auto& [var, value] : node.fixings) {
          LpVariable& v = xm.mutable_variable(var);
          v.lower = value;
          v.upper = value;
        }
        for (int idx : *active) {
          xm.AddConstraint(LinearExpr(sh.compiled[idx].expr),
                           sh.compiled[idx].op, sh.compiled[idx].rhs,
                           "lazy");
        }
        SimplexSolver xs(options.lp_options);
        auto xlp = xs.Solve(xm);
        if (lp.ok() && xlp.ok() &&
            std::abs(lp->objective - xlp->objective) > 1e-5) {
          std::fprintf(stderr,
                       "XCHECK OBJ depth=%d fixings=%zu rows=%zu "
                       "warm=%.9f cold=%.9f hint=%d\n",
                       node.depth, node.fixings.size(), active->size(),
                       lp->objective, xlp->objective, hint != nullptr);
        } else if (lp.ok() != xlp.ok()) {
          std::fprintf(stderr,
                       "XCHECK STATUS depth=%d fixings=%zu rows=%zu "
                       "warm=%s cold=%s hint=%d\n",
                       node.depth, node.fixings.size(), active->size(),
                       lp.ok() ? "ok" : lp.status().ToString().c_str(),
                       xlp.ok() ? "ok" : xlp.status().ToString().c_str(),
                       hint != nullptr);
        }
      }
      const bool recoverable =
          !lp.ok() && lp.status().code() != StatusCode::kInfeasible &&
          !(lp.status().code() == StatusCode::kResourceExhausted &&
            deadline.Expired());
      if (recoverable) {
        // Numerical trouble in the warm engine: reroute this node to the
        // cold oracle (the engine itself stays consistent for the next
        // node — its tableau is rebuilt from original rows on demand).
        ++ws.fallback_solves;
        node_warm = false;
        assemble_cold();
      }
    }
    if (!node_warm) {
      SimplexOptions lp_options = options.lp_options;
      if (deadline.HasBudget()) {
        lp_options.deadline_seconds =
            lp_options.deadline_seconds > 0
                ? std::min(lp_options.deadline_seconds, remaining)
                : remaining;
      }
      SimplexSolver lp_solver(lp_options);
      lp = lp_solver.Solve(relaxation);
    }
    if (!lp.ok()) {
      lp_failed = true;
      break;
    }
    ws.lp_iterations += lp->iterations;
    bound = std::max(bound, tighten(lp->objective));
    if (bound >= sh.coordinator.best_objective() - options.abs_gap) {
      pruned = true;  // subset bound already kills the node
      break;
    }
    std::vector<int> violated;
    for (size_t i = 0; i < sh.compiled.size(); ++i) {
      double lhs = sh.compiled[i].expr.Evaluate(lp->values);
      double v = sh.compiled[i].op == RelOp::kGe
                     ? sh.compiled[i].rhs - lhs
                     : lhs - sh.compiled[i].rhs;
      if (v > kViolationTol) violated.push_back(static_cast<int>(i));
    }
    if (violated.empty()) {
      clean = true;
      break;
    }
    // A row can be *active* yet re-reported here: the violation scan uses
    // an absolute tolerance while the LP certifies rows magnitude-aware.
    // Dedupe — the active-row sets must stay strictly sorted-unique for
    // the engine's two-pointer delta sync.
    auto grown = std::make_shared<std::vector<int>>(*active);
    grown->insert(grown->end(), violated.begin(), violated.end());
    std::sort(grown->begin(), grown->end());
    grown->erase(std::unique(grown->begin(), grown->end()), grown->end());
    if (node_warm) {
      for (int idx : violated) engine_enable_row(idx);
      ws.inc_active = *grown;
    } else {
      for (int idx : violated) {
        relaxation.AddConstraint(LinearExpr(sh.compiled[idx].expr),
                                 sh.compiled[idx].op, sh.compiled[idx].rhs,
                                 "lazy");
      }
    }
    active = std::move(grown);
    ++ws.lazy_rounds;
  }

  // The basis this node's LP ended on — the children's warm start. On the
  // cold/fallback path the parent's basis is passed through unchanged.
  auto export_basis =
      [&]() -> std::pair<std::shared_ptr<const LpBasis>, int> {
    if (node_warm && lp.ok()) {
      return {std::make_shared<const LpBasis>(ws.inc->ExportBasis()), ws.id};
    }
    return {node.warm_basis, node.basis_owner};
  };

  if (out_of_time) {
    // Global budget ran out between separation rounds: the node is not
    // fully explored; put it back so the final bound accounting sees it,
    // and tell every worker to wind down.
    sh.frontier.Push(std::move(node));
    sh.coordinator.RequestLimitStop();
    sh.frontier.RequestStop();
    return;
  }
  if (pruned) return;
  if (lp_failed) {
    if (lp.status().code() == StatusCode::kInfeasible) return;  // prune
    if (lp.status().code() == StatusCode::kResourceExhausted &&
        deadline.Expired()) {
      // Global budget ran out mid-LP: the node is unexplored, put it back
      // so the final bound accounting sees it.
      sh.frontier.Push(std::move(node));
      sh.coordinator.RequestLimitStop();
      sh.frontier.RequestStop();
      return;
    }
    // Numerical trouble (spurious unboundedness, iteration stall): we
    // cannot bound this node, but dropping it would be unsound. Branch on
    // the first unfixed binary without tightening — the children are more
    // constrained and typically solve cleanly; a fully fixed node that
    // still fails is genuinely broken.
    int branch_var = -1;
    for (int var : sh.binaries) {
      bool fixed = false;
      for (const auto& [fv, value] : node.fixings) {
        (void)value;
        if (fv == var) {
          fixed = true;
          break;
        }
      }
      if (!fixed) {
        branch_var = var;
        break;
      }
    }
    if (branch_var < 0) {
      // Fully fixed and still failing: drop the node but record it — the
      // final optimality claim is downgraded in Solve.
      sh.numerical_drops.fetch_add(1, std::memory_order_relaxed);
      RH_LOG(Warning) << "dropping fully-fixed node after LP failure: "
                      << lp.status().ToString();
      return;
    }
    branch(branch_var, 0.0, node.bound, active, node.warm_basis,
           node.basis_owner);
    return;
  }

  // Primal heuristic: let the caller turn this fractional point into a
  // true feasible solution (RankHow: evaluate the ranking error of w).
  if (sh.heuristic) {
    auto candidate = sh.heuristic(lp->values);
    if (candidate.has_value()) {
      sh.coordinator.OfferIncumbent(candidate->objective, candidate->values);
    }
    if (bound >= sh.coordinator.best_objective() - options.abs_gap) return;
  }

  // Find the most fractional binary.
  int branch_var = -1;
  double branch_score = options.int_tol;
  for (int var : sh.binaries) {
    double v = lp->values[var];
    double frac = std::min(v, 1.0 - v);
    if (frac > branch_score) {
      branch_score = frac;
      branch_var = var;
    }
  }

  if (branch_var < 0 && clean) {
    // Integral and no violated indicator rows: feasible for the full
    // relaxation, so this is a true incumbent. IsFeasible is a debug-only
    // invariant check.
    if (lp->objective <
        sh.coordinator.best_objective() - options.abs_gap) {
      RH_DCHECK(sh.model.IsFeasible(lp->values, 1e-4))
          << "integral LP point violates indicator semantics (bad big-M?)";
      sh.coordinator.OfferIncumbent(lp->objective, lp->values);
    }
    return;
  }
  if (branch_var < 0) {
    // Integral but the lazy loop hit its round cap with violations left:
    // force progress by branching on the binary of the most violated
    // indicator row. (Cannot accept the point; cannot prune the node.)
    double worst = kViolationTol;
    for (size_t i = 0; i < sh.num_indicators; ++i) {
      double lhs = sh.compiled[i].expr.Evaluate(lp->values);
      double v = sh.compiled[i].op == RelOp::kGe
                     ? sh.compiled[i].rhs - lhs
                     : lhs - sh.compiled[i].rhs;
      if (v > worst) {
        worst = v;
        branch_var = sh.model.indicators()[i].binary_var;
      }
    }
    if (branch_var < 0) return;  // cannot happen: !clean means violations
    bool already_fixed = false;
    for (const auto& [fv, value] : node.fixings) {
      (void)value;
      if (fv == branch_var) already_fixed = true;
    }
    if (already_fixed) {
      sh.numerical_drops.fetch_add(1, std::memory_order_relaxed);
      return;  // irrecoverable; downgrade the proof
    }
  }

  // Branch. Explore the side the LP leans toward first (slightly better
  // bounds in practice); both children inherit this node's bound, its
  // lazily-grown row set, and the basis its LP ended on.
  double leaning = lp->values[branch_var] >= 0.5 ? 1.0 : 0.0;
  auto [basis, basis_owner] = export_basis();
  branch(branch_var, leaning, bound, active, std::move(basis), basis_owner);
}

/// One worker's search loop: pop → prune-or-process → repeat, until the
/// frontier reports exhaustion or a stop. The node cap and deadline are
/// enforced here so every worker winds down within one node of the limit.
void RunWorker(SearchShared& sh, WorkerState& ws) {
  const BnbOptions& options = sh.options;
  if (options.use_warm_start && ws.inc == nullptr) {
    // The warm engine (one per worker): a persistent compiled instance
    // holding the core rows plus every pool row this worker ever
    // separated. Nodes are expressed as deltas against it — bound fixings
    // and the active subset of materialized pool rows (deactivated rows
    // keep their tableau slot with a freed slack, so undo is O(1) per
    // row).
    ws.inc = std::make_unique<IncrementalLp>(sh.core, options.lp_options);
    ws.pool_to_row.assign(sh.compiled.size(), -1);
  }
  while (!sh.coordinator.StopRequested()) {
    if (sh.coordinator.deadline().Expired() ||
        sh.coordinator.ExternalCancelRequested()) {
      sh.coordinator.RequestLimitStop();
      sh.frontier.RequestStop();
      break;
    }
    std::optional<Node> node = sh.frontier.Pop();
    if (!node.has_value()) break;  // exhausted or stopped
    if (options.max_nodes > 0 &&
        sh.nodes_explored.load(std::memory_order_relaxed) >=
            options.max_nodes) {
      sh.frontier.Push(std::move(*node));
      sh.frontier.Done();
      sh.coordinator.RequestLimitStop();
      sh.frontier.RequestStop();
      break;
    }
    if (node->bound >=
        sh.coordinator.best_objective() - options.abs_gap) {
      // Best-first: this subtree cannot improve the incumbent, so discard
      // it. With a single worker the popped node IS the global frontier
      // minimum, so everything left is equally prunable and the search is
      // over — the serial O(1) exit at proven optimality. With several
      // workers that inference is unsound (best-of-tops pops are
      // approximate and a sibling mid-node may still push better-bounded
      // children), so siblings drain their shards cooperatively instead.
      sh.frontier.Done();
      if (sh.num_workers == 1) {
        sh.frontier.RequestStop();  // completion — not a limit stop
        break;
      }
      continue;
    }
    sh.nodes_explored.fetch_add(1, std::memory_order_relaxed);
    ProcessNode(sh, ws, std::move(*node));
    sh.frontier.Done();
  }
}

}  // namespace

Result<BnbResult> BranchAndBound::Solve(const MilpModel& model) const {
  if (model.lp().sense() != ObjectiveSense::kMinimize) {
    return Status::Invalid(
        "BranchAndBound requires a minimization objective; negate the "
        "objective expression for maximization");
  }
  // Lazy row generation: node LPs start from the core LP (no indicator
  // rows) plus the rows inherited from the parent, and pull in further
  // big-M rows only when the LP iterate violates them. On Equation-(2)
  // instances the vast majority of the k·n indicator rows never bind, so
  // this shrinks node LPs by orders of magnitude.
  const LpModel& core = model.lp();
  const size_t num_indicators = model.indicators().size();
  // Separation pool: compiled indicator rows first (indices < num_indicators
  // map back to their binary for violation branching), then lazy cuts.
  std::vector<MilpModel::CompiledRow> compiled;
  compiled.reserve(num_indicators + model.lazy_cuts().size());
  for (size_t i = 0; i < num_indicators; ++i) {
    RH_ASSIGN_OR_RETURN(MilpModel::CompiledRow row, model.CompileIndicator(i));
    compiled.push_back(std::move(row));
  }
  for (const MilpModel::CompiledRow& cut : model.lazy_cuts()) {
    compiled.push_back(cut);
  }
  // Binary upper bounds. The legacy cold path relaxes unfixed binaries to
  // [0, ∞) — the dense-tableau SimplexSolver compiles every finite upper
  // bound into a row, so thousands of mostly slack "δ <= 1" rows would
  // dominate node LP cost — and these pool rows pull the bound back in only
  // where the LP pushes past it. The warm engine's bounded-variable simplex
  // enforces bounds natively, so under it the binaries keep their [0, 1]
  // bounds and these rows simply never separate. Either way intermediate LP
  // values stay valid lower bounds and "clean" points satisfy every bound.
  for (int var : model.binary_vars()) {
    compiled.push_back(
        MilpModel::CompiledRow{LinearExpr::Term(var, 1.0), RelOp::kLe, 1.0});
  }

  const int num_workers =
      ThreadPool::ResolveThreadCount(options_.num_threads);
  WallTimer timer;
  SearchShared shared{model,
                      core,
                      compiled,
                      num_indicators,
                      model.binary_vars(),
                      options_,
                      heuristic_,
                      num_workers,
                      SearchCoordinator(options_.time_limit_seconds,
                                        options_.abs_gap, options_.cancel),
                      ShardedFrontier<Node, NodeOrder>(num_workers),
                      {},
                      {}};
  if (std::isfinite(options_.initial_incumbent)) {
    shared.coordinator.SeedIncumbent(options_.initial_incumbent,
                                     options_.initial_values);
  } else {
    shared.coordinator.SeedIncumbent(options_.initial_incumbent, {});
  }

  {
    auto root_active = std::make_shared<std::vector<int>>();
    if (!options_.lazy_separation) {
      // Full relaxation from the start: every pool row in every node LP.
      root_active->resize(compiled.size());
      for (size_t i = 0; i < compiled.size(); ++i) (*root_active)[i] = i;
    }
    Node root;
    root.active_rows = std::move(root_active);
    // Children inherit max(parent bound, LP bound), so seeding the root
    // propagates the external bound to the entire tree.
    root.bound = options_.external_lower_bound;
    shared.frontier.Push(std::move(root));
  }

  std::vector<WorkerState> workers(num_workers);
  for (int i = 0; i < num_workers; ++i) workers[i].id = i;
  if (num_workers == 1) {
    RunWorker(shared, workers[0]);
  } else {
    ThreadPool pool(num_workers - 1);
    TaskGroup group(&pool);
    for (int i = 1; i < num_workers; ++i) {
      group.Spawn([&shared, &workers, i] { RunWorker(shared, workers[i]); });
    }
    RunWorker(shared, workers[0]);
    group.Wait();
  }

  BnbResult best;
  best.objective = shared.coordinator.best_objective();
  best.values = shared.coordinator.incumbent_values();
  BnbStats& stats = best.stats;
  stats.nodes_explored = shared.nodes_explored.load();
  stats.incumbent_updates = shared.coordinator.incumbent_updates();
  stats.numerical_drops = shared.numerical_drops.load();
  for (const WorkerState& ws : workers) {
    stats.lp_iterations += ws.lp_iterations;
    stats.lazy_rounds += ws.lazy_rounds;
    stats.lp_fallback_solves += ws.fallback_solves;
    if (ws.inc != nullptr) {
      const IncrementalLpStats& ls = ws.inc->stats();
      stats.lp_warm_solves += ls.warm_solves;
      stats.lp_cold_solves += ls.cold_solves;
      stats.lp_primal_pivots += ls.primal_pivots;
      stats.lp_dual_pivots += ls.dual_pivots;
      stats.lp_repair_pivots += ls.repair_pivots;
      stats.lp_import_pivots += ls.import_pivots;
      stats.lp_rebuilds += ls.rebuilds;
    }
  }
  stats.seconds = timer.ElapsedSeconds();

  const bool limits_hit = shared.coordinator.limit_stop();
  // The global lower bound: +inf once the tree is exhausted, else the
  // weakest bound among unexplored subtrees (stopping workers re-push
  // their unfinished nodes, so the frontier holds every one of them).
  double global_bound = kInfinity;
  if (limits_hit) {
    global_bound = shared.frontier.MinBound();
    if (!std::isfinite(global_bound)) global_bound = best.objective;
    if (!std::isfinite(best.objective)) {
      return Status::ResourceExhausted(
          "branch-and-bound limits reached before finding a feasible "
          "solution");
    }
  } else {
    // Tree exhausted: the incumbent (if any) is exactly optimal (every
    // remaining node was either explored or popped with a bound at or
    // above the final incumbent).
    if (!std::isfinite(best.objective)) {
      return Status::Infeasible("no feasible MILP assignment");
    }
    global_bound = best.objective;
  }
  best.best_bound = std::min(global_bound, best.objective);
  best.proven_optimal = global_bound >= best.objective - options_.abs_gap &&
                        stats.numerical_drops == 0;
  return best;
}

}  // namespace rankhow
