#include "milp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "util/logging.h"

namespace rankhow {

namespace {

/// A subproblem: bound fixings applied on top of the root core LP, plus the
/// set of indicator big-M rows its ancestors found binding (lazily grown —
/// children start from the parent's set instead of rediscovering it), plus
/// the basis its parent's LP ended on (the warm start that lets the shared
/// IncrementalLp *resolve* this node in a few dual pivots instead of
/// re-solving it from scratch).
struct Node {
  std::vector<std::pair<int, double>> fixings;  // (binary var, 0.0 or 1.0)
  std::shared_ptr<const std::vector<int>> active_rows;  // sorted pool ids
  std::shared_ptr<const LpBasis> warm_basis;
  double bound;                                 // parent LP bound (lower)
  int depth = 0;
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    if (a.bound != b.bound) return a.bound > b.bound;  // best (lowest) first
    return a.depth < b.depth;  // deeper first as tie-break (dive)
  }
};

}  // namespace

Result<BnbResult> BranchAndBound::Solve(const MilpModel& model) const {
  if (model.lp().sense() != ObjectiveSense::kMinimize) {
    return Status::Invalid(
        "BranchAndBound requires a minimization objective; negate the "
        "objective expression for maximization");
  }
  // Lazy row generation: node LPs start from the core LP (no indicator
  // rows) plus the rows inherited from the parent, and pull in further
  // big-M rows only when the LP iterate violates them. On Equation-(2)
  // instances the vast majority of the k·n indicator rows never bind, so
  // this shrinks node LPs by orders of magnitude.
  const LpModel& core = model.lp();
  const size_t num_indicators = model.indicators().size();
  // Separation pool: compiled indicator rows first (indices < num_indicators
  // map back to their binary for violation branching), then lazy cuts.
  std::vector<MilpModel::CompiledRow> compiled;
  compiled.reserve(num_indicators + model.lazy_cuts().size());
  for (size_t i = 0; i < num_indicators; ++i) {
    RH_ASSIGN_OR_RETURN(MilpModel::CompiledRow row, model.CompileIndicator(i));
    compiled.push_back(std::move(row));
  }
  for (const MilpModel::CompiledRow& cut : model.lazy_cuts()) {
    compiled.push_back(cut);
  }
  // Binary upper bounds. The legacy cold path relaxes unfixed binaries to
  // [0, ∞) — the dense-tableau SimplexSolver compiles every finite upper
  // bound into a row, so thousands of mostly slack "δ <= 1" rows would
  // dominate node LP cost — and these pool rows pull the bound back in only
  // where the LP pushes past it. The warm engine's bounded-variable simplex
  // enforces bounds natively, so under it the binaries keep their [0, 1]
  // bounds and these rows simply never separate. Either way intermediate LP
  // values stay valid lower bounds and "clean" points satisfy every bound.
  for (int var : model.binary_vars()) {
    compiled.push_back(
        MilpModel::CompiledRow{LinearExpr::Term(var, 1.0), RelOp::kLe, 1.0});
  }
  const size_t num_rows = compiled.size();
  const std::vector<int>& binaries = model.binary_vars();
  Deadline deadline(options_.time_limit_seconds);
  constexpr double kViolationTol = 1e-7;
  constexpr int kMaxLazyRounds = 100;

  BnbResult best;
  best.objective = options_.initial_incumbent;
  best.values = options_.initial_values;
  BnbStats& stats = best.stats;
  WallTimer timer;

  auto tighten = [&](double bound) {
    return options_.objective_is_integral ? std::ceil(bound - 1e-6) : bound;
  };

  // The warm engine (one per tree): a persistent compiled instance holding
  // the core rows plus every pool row ever separated. Nodes are expressed
  // as deltas against it — bound fixings and the active subset of
  // materialized pool rows (deactivated rows keep their tableau slot with a
  // freed slack, so undo is O(1) per row).
  std::unique_ptr<IncrementalLp> inc;
  std::vector<int> pool_to_row;   // pool idx -> engine row id (-1 = absent)
  std::vector<int> inc_active;    // sorted pool ids active in the engine
  std::vector<std::pair<int, double>> applied_fixings;
  if (options_.use_warm_start) {
    inc = std::make_unique<IncrementalLp>(core, options_.lp_options);
    pool_to_row.assign(num_rows, -1);
  }
  int64_t fallback_solves = 0;

  // Activates pool row `idx` in the engine, materializing it on first use.
  auto engine_enable_row = [&](int idx) {
    if (pool_to_row[idx] < 0) {
      pool_to_row[idx] =
          inc->AddRow(compiled[idx].expr, compiled[idx].op, compiled[idx].rhs);
    } else {
      inc->SetRowActive(pool_to_row[idx], true);
    }
  };

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  {
    auto root_active = std::make_shared<std::vector<int>>();
    if (!options_.lazy_separation) {
      // Full relaxation from the start: every pool row in every node LP.
      root_active->resize(num_rows);
      for (size_t i = 0; i < num_rows; ++i) (*root_active)[i] = i;
    }
    open.push(Node{{}, std::move(root_active), nullptr, -kInfinity, 0});
  }
  // The global lower bound is the smallest bound among unexplored subtrees
  // (the queue is ordered by bound, so that is open.top()).
  double global_bound = kInfinity;  // +inf once the tree is exhausted
  bool limits_hit = false;

  // Branches both ways on `var` from `node`, carrying `bound`, `active`,
  // and the basis this node's LP ended on (both children resolve from it).
  auto branch = [&](const Node& node, int var, double first_value,
                    double bound,
                    std::shared_ptr<const std::vector<int>> active,
                    std::shared_ptr<const LpBasis> basis) {
    for (double value : {first_value, 1.0 - first_value}) {
      Node child;
      child.fixings = node.fixings;
      child.fixings.emplace_back(var, value);
      child.active_rows = active;
      child.warm_basis = basis;
      child.bound = bound;
      child.depth = node.depth + 1;
      open.push(std::move(child));
    }
  };

  while (!open.empty()) {
    if (options_.max_nodes > 0 && stats.nodes_explored >= options_.max_nodes) {
      limits_hit = true;
      break;
    }
    if (deadline.Expired()) {
      limits_hit = true;
      break;
    }
    Node node = open.top();
    open.pop();
    if (node.bound >= best.objective - options_.abs_gap) {
      // All remaining nodes are at least as bad: incumbent is optimal.
      global_bound = node.bound;
      limits_hit = false;
      break;
    }
    ++stats.nodes_explored;

    std::shared_ptr<const std::vector<int>> active = node.active_rows;
    bool node_warm = inc != nullptr;
    LpModel relaxation;  // cold path / fallback only

    // Assembles the legacy per-node LP copy: core + fixings + active rows,
    // unfixed binaries relaxed to an open upper bound (see the pool above).
    auto assemble_cold = [&]() {
      relaxation = core;
      for (int var : binaries) {
        relaxation.mutable_variable(var).upper = kInfinity;
      }
      for (const auto& [var, value] : node.fixings) {
        LpVariable& v = relaxation.mutable_variable(var);
        v.lower = value;
        v.upper = value;
      }
      for (int idx : *active) {
        relaxation.AddConstraint(LinearExpr(compiled[idx].expr),
                                 compiled[idx].op, compiled[idx].rhs, "lazy");
      }
    };

    if (node_warm) {
      // Express this node as a delta against the engine: undo the previous
      // node's fixings, apply ours, and sync the active-row subset (both
      // sides sorted; rows missing from the engine are materialized).
      for (const auto& [var, value] : applied_fixings) {
        (void)value;
        const LpVariable& v = core.variable(var);
        inc->SetVariableBounds(var, v.lower, v.upper);
      }
      for (const auto& [var, value] : node.fixings) {
        inc->SetVariableBounds(var, value, value);
      }
      applied_fixings = node.fixings;
      const std::vector<int>& want = *active;
      size_t a = 0, b = 0;
      while (a < inc_active.size() || b < want.size()) {
        if (b >= want.size() ||
            (a < inc_active.size() && inc_active[a] < want[b])) {
          inc->SetRowActive(pool_to_row[inc_active[a]], false);
          ++a;
        } else if (a >= inc_active.size() || inc_active[a] > want[b]) {
          engine_enable_row(want[b]);
          ++b;
        } else {
          ++a;
          ++b;
        }
      }
      inc_active = want;
    } else {
      assemble_cold();
    }

    // Lazy separation loop: solve, add violated indicator rows, re-solve.
    // Every intermediate LP value is already a valid lower bound (a subset
    // of rows only relaxes further), so pruning can fire mid-loop.
    Result<LpSolution> lp = Status::Internal("lazy loop never ran");
    bool clean = false;     // no violated indicator rows at lp solution
    bool pruned = false;
    bool lp_failed = false;
    bool out_of_time = false;
    double bound = node.bound;
    for (int round = 0; round < kMaxLazyRounds; ++round) {
      // Re-budget every round with the remaining global time: one node can
      // run many separation rounds, and each re-solve must fit what is left
      // of time_limit_seconds (not what was left when the node started).
      if (deadline.Expired()) {
        out_of_time = true;
        break;
      }
      const double remaining =
          deadline.HasBudget() ? deadline.RemainingSeconds() : 0;
      if (node_warm) {
        // First round resolves from the parent's basis; later rounds reuse
        // the basis the previous round ended on (ideal after row adds).
        const LpBasis* hint =
            round == 0 && node.warm_basis ? node.warm_basis.get() : nullptr;
        lp = inc->Solve(hint, remaining);
        const bool recoverable =
            !lp.ok() && lp.status().code() != StatusCode::kInfeasible &&
            !(lp.status().code() == StatusCode::kResourceExhausted &&
              deadline.Expired());
        if (recoverable) {
          // Numerical trouble in the warm engine: reroute this node to the
          // cold oracle (the engine itself stays consistent for the next
          // node — its tableau is rebuilt from original rows on demand).
          ++fallback_solves;
          node_warm = false;
          assemble_cold();
        }
      }
      if (!node_warm) {
        SimplexOptions lp_options = options_.lp_options;
        if (deadline.HasBudget()) {
          lp_options.deadline_seconds =
              lp_options.deadline_seconds > 0
                  ? std::min(lp_options.deadline_seconds, remaining)
                  : remaining;
        }
        SimplexSolver lp_solver(lp_options);
        lp = lp_solver.Solve(relaxation);
      }
      if (!lp.ok()) {
        lp_failed = true;
        break;
      }
      stats.lp_iterations += lp->iterations;
      bound = std::max(bound, tighten(lp->objective));
      if (bound >= best.objective - options_.abs_gap) {
        pruned = true;  // subset bound already kills the node
        break;
      }
      std::vector<int> violated;
      for (size_t i = 0; i < num_rows; ++i) {
        double lhs = compiled[i].expr.Evaluate(lp->values);
        double v = compiled[i].op == RelOp::kGe ? compiled[i].rhs - lhs
                                                : lhs - compiled[i].rhs;
        if (v > kViolationTol) violated.push_back(static_cast<int>(i));
      }
      if (violated.empty()) {
        clean = true;
        break;
      }
      // A row can be *active yet re-reported here: the violation scan uses
      // an absolute tolerance while the LP certifies rows magnitude-aware.
      // Dedupe — the active-row sets must stay strictly sorted-unique for
      // the engine's two-pointer delta sync.
      auto grown = std::make_shared<std::vector<int>>(*active);
      grown->insert(grown->end(), violated.begin(), violated.end());
      std::sort(grown->begin(), grown->end());
      grown->erase(std::unique(grown->begin(), grown->end()), grown->end());
      if (node_warm) {
        for (int idx : violated) engine_enable_row(idx);
        inc_active = *grown;
      } else {
        for (int idx : violated) {
          relaxation.AddConstraint(LinearExpr(compiled[idx].expr),
                                   compiled[idx].op, compiled[idx].rhs,
                                   "lazy");
        }
      }
      active = std::move(grown);
      ++stats.lazy_rounds;
    }

    // The basis this node's LP ended on — the children's warm start. On the
    // cold/fallback path the parent's basis is passed through unchanged.
    auto export_basis = [&]() -> std::shared_ptr<const LpBasis> {
      if (node_warm && lp.ok()) {
        return std::make_shared<const LpBasis>(inc->ExportBasis());
      }
      return node.warm_basis;
    };

    if (out_of_time) {
      // Global budget ran out between separation rounds: the node is not
      // fully explored; put it back so the final bound accounting sees it.
      open.push(std::move(node));
      limits_hit = true;
      break;
    }
    if (pruned) continue;
    if (lp_failed) {
      if (lp.status().code() == StatusCode::kInfeasible) continue;  // prune
      if (lp.status().code() == StatusCode::kResourceExhausted &&
          deadline.Expired()) {
        // Global budget ran out mid-LP: the node is unexplored, put it back
        // so the final bound accounting sees it.
        open.push(std::move(node));
        limits_hit = true;
        break;
      }
      // Numerical trouble (spurious unboundedness, iteration stall): we
      // cannot bound this node, but dropping it would be unsound. Branch on
      // the first unfixed binary without tightening — the children are more
      // constrained and typically solve cleanly; a fully fixed node that
      // still fails is genuinely broken.
      int branch_var = -1;
      for (int var : binaries) {
        bool fixed = false;
        for (const auto& [fv, value] : node.fixings) {
          (void)value;
          if (fv == var) {
            fixed = true;
            break;
          }
        }
        if (!fixed) {
          branch_var = var;
          break;
        }
      }
      if (branch_var < 0) {
        // Fully fixed and still failing: drop the node but record it — the
        // final optimality claim is downgraded below.
        ++stats.numerical_drops;
        RH_LOG(Warning) << "dropping fully-fixed node after LP failure: "
                        << lp.status().ToString();
        continue;
      }
      branch(node, branch_var, 0.0, node.bound, active, node.warm_basis);
      continue;
    }

    // Primal heuristic: let the caller turn this fractional point into a
    // true feasible solution (RankHow: evaluate the ranking error of w).
    if (heuristic_) {
      auto candidate = heuristic_(lp->values);
      if (candidate.has_value() &&
          candidate->objective < best.objective - options_.abs_gap) {
        best.objective = candidate->objective;
        best.values = candidate->values;
        ++stats.incumbent_updates;
      }
      if (bound >= best.objective - options_.abs_gap) continue;
    }

    // Find the most fractional binary.
    int branch_var = -1;
    double branch_score = options_.int_tol;
    for (int var : binaries) {
      double v = lp->values[var];
      double frac = std::min(v, 1.0 - v);
      if (frac > branch_score) {
        branch_score = frac;
        branch_var = var;
      }
    }

    if (branch_var < 0 && clean) {
      // Integral and no violated indicator rows: feasible for the full
      // relaxation, so this is a true incumbent. IsFeasible is a debug-only
      // invariant check.
      if (lp->objective < best.objective - options_.abs_gap) {
        RH_DCHECK(model.IsFeasible(lp->values, 1e-4))
            << "integral LP point violates indicator semantics (bad big-M?)";
        best.objective = lp->objective;
        best.values = lp->values;
        ++stats.incumbent_updates;
      }
      continue;
    }
    if (branch_var < 0) {
      // Integral but the lazy loop hit its round cap with violations left:
      // force progress by branching on the binary of the most violated
      // indicator row. (Cannot accept the point; cannot prune the node.)
      double worst = kViolationTol;
      for (size_t i = 0; i < num_indicators; ++i) {
        double lhs = compiled[i].expr.Evaluate(lp->values);
        double v = compiled[i].op == RelOp::kGe ? compiled[i].rhs - lhs
                                                : lhs - compiled[i].rhs;
        if (v > worst) {
          worst = v;
          branch_var = model.indicators()[i].binary_var;
        }
      }
      if (branch_var < 0) continue;  // cannot happen: !clean means violations
      bool already_fixed = false;
      for (const auto& [fv, value] : node.fixings) {
        (void)value;
        if (fv == branch_var) already_fixed = true;
      }
      if (already_fixed) {
        ++stats.numerical_drops;  // irrecoverable; downgrade the proof
        continue;
      }
    }

    // Branch. Explore the side the LP leans toward first (slightly better
    // bounds in practice); both children inherit this node's bound, its
    // lazily-grown row set, and the basis its LP ended on.
    double leaning = lp->values[branch_var] >= 0.5 ? 1.0 : 0.0;
    branch(node, branch_var, leaning, bound, active, export_basis());
  }

  stats.seconds = timer.ElapsedSeconds();
  if (inc != nullptr) {
    const IncrementalLpStats& ls = inc->stats();
    stats.lp_warm_solves = ls.warm_solves;
    stats.lp_cold_solves = ls.cold_solves;
    stats.lp_primal_pivots = ls.primal_pivots;
    stats.lp_dual_pivots = ls.dual_pivots;
    stats.lp_repair_pivots = ls.repair_pivots;
    stats.lp_import_pivots = ls.import_pivots;
    stats.lp_rebuilds = ls.rebuilds;
  }
  stats.lp_fallback_solves = fallback_solves;
  if (limits_hit) {
    // Unexplored subtrees remain; the weakest of their bounds limits what we
    // can claim.
    global_bound = open.empty() ? best.objective : open.top().bound;
    if (!std::isfinite(best.objective)) {
      return Status::ResourceExhausted(
          "branch-and-bound limits reached before finding a feasible "
          "solution");
    }
  } else if (open.empty()) {
    // Tree exhausted: the incumbent (if any) is exactly optimal.
    if (!std::isfinite(best.objective)) {
      return Status::Infeasible("no feasible MILP assignment");
    }
    global_bound = best.objective;
  }
  best.best_bound = std::min(global_bound, best.objective);
  best.proven_optimal = global_bound >= best.objective - options_.abs_gap &&
                        stats.numerical_drops == 0;
  return best;
}

}  // namespace rankhow
