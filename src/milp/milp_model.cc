#include "milp/milp_model.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace rankhow {

int MilpModel::AddBinaryVariable(std::string name) {
  int var = lp_.AddVariable(0.0, 1.0, std::move(name));
  binary_vars_.push_back(var);
  return var;
}

void MilpModel::MarkBinary(int var) {
  RH_CHECK(var >= 0 && var < lp_.num_variables());
  const LpVariable& v = lp_.variable(var);
  RH_CHECK(v.lower >= 0.0 && v.upper <= 1.0)
      << "binary variable must have bounds within [0,1]";
  binary_vars_.push_back(var);
}

void MilpModel::AddIndicator(IndicatorConstraint indicator) {
  RH_CHECK(indicator.binary_var >= 0 &&
           indicator.binary_var < lp_.num_variables());
  RH_CHECK(indicator.op != RelOp::kEq)
      << "indicator constraints support <= and >= only";
  indicators_.push_back(std::move(indicator));
}

namespace {

/// Interval bound of an expression over the variables' box bounds.
/// Returns false when unbounded in the needed direction.
bool ExprRange(const LpModel& lp, const LinearExpr& expr, double* min_out,
               double* max_out) {
  double lo = expr.constant();
  double hi = expr.constant();
  for (const auto& [var, coeff] : expr.terms()) {
    const LpVariable& v = lp.variable(var);
    double a = coeff > 0 ? v.lower : v.upper;
    double b = coeff > 0 ? v.upper : v.lower;
    lo += coeff * a;
    hi += coeff * b;
  }
  *min_out = lo;
  *max_out = hi;
  return std::isfinite(lo) && std::isfinite(hi);
}

}  // namespace

Result<MilpModel::CompiledRow> MilpModel::CompileIndicator(size_t i) const {
  RH_CHECK(i < indicators_.size());
  const IndicatorConstraint& ind = indicators_[i];
  double m = ind.big_m;
  if (m <= 0) {
    double lo = 0;
    double hi = 0;
    if (!ExprRange(lp_, ind.expr, &lo, &hi)) {
      return Status::Invalid(StrFormat(
          "cannot derive big-M for indicator %zu: unbounded expression", i));
    }
    m = ind.op == RelOp::kGe ? ind.rhs - lo : hi - ind.rhs;
    m = std::max(m, 0.0) + 1.0;  // slack for numerical safety
  }
  // δ = active ⇒ expr >= rhs  compiles to  expr + M·(active? (1−δ) : δ) >= rhs
  // δ = active ⇒ expr <= rhs  compiles to  expr − M·(active? (1−δ) : δ) <= rhs
  CompiledRow row;
  row.expr = ind.expr;
  row.op = ind.op;
  row.rhs = ind.rhs;
  double sign = ind.op == RelOp::kGe ? 1.0 : -1.0;
  if (ind.active_value) {
    // expr + sign*M*(1-δ) {>=,<=} rhs  →  expr − sign·M·δ {>=,<=} rhs − sign·M
    row.expr += LinearExpr::Term(ind.binary_var, -sign * m);
    row.rhs -= sign * m;
  } else {
    // expr + sign*M*δ {>=,<=} rhs
    row.expr += LinearExpr::Term(ind.binary_var, sign * m);
  }
  return row;
}

Result<double> MilpModel::IndicatorRowViolation(
    size_t i, const std::vector<double>& x) const {
  RH_ASSIGN_OR_RETURN(CompiledRow row, CompileIndicator(i));
  double lhs = row.expr.Evaluate(x);
  return row.op == RelOp::kGe ? row.rhs - lhs : lhs - row.rhs;
}

void MilpModel::AddLazyCut(LinearExpr expr, RelOp op, double rhs) {
  RH_CHECK(op != RelOp::kEq) << "lazy cuts support <= and >= only";
  lazy_cuts_.push_back(CompiledRow{std::move(expr), op, rhs});
}

Result<LpModel> MilpModel::BuildRelaxation() const {
  LpModel relaxed = lp_;
  for (size_t i = 0; i < indicators_.size(); ++i) {
    RH_ASSIGN_OR_RETURN(CompiledRow row, CompileIndicator(i));
    relaxed.AddConstraint(std::move(row.expr), row.op, row.rhs,
                          StrFormat("ind%zu", i));
  }
  for (size_t i = 0; i < lazy_cuts_.size(); ++i) {
    relaxed.AddConstraint(LinearExpr(lazy_cuts_[i].expr), lazy_cuts_[i].op,
                          lazy_cuts_[i].rhs, StrFormat("cut%zu", i));
  }
  return relaxed;
}

bool MilpModel::IsFeasible(const std::vector<double>& x, double tol) const {
  if (!lp_.IsFeasible(x, tol)) return false;
  for (int var : binary_vars_) {
    double v = x[var];
    if (std::abs(v - std::round(v)) > tol) return false;
  }
  for (const IndicatorConstraint& ind : indicators_) {
    bool active =
        std::abs(x[ind.binary_var] - (ind.active_value ? 1.0 : 0.0)) <= tol;
    if (!active) continue;
    double lhs = ind.expr.Evaluate(x);
    if (ind.op == RelOp::kGe && lhs < ind.rhs - tol) return false;
    if (ind.op == RelOp::kLe && lhs > ind.rhs + tol) return false;
  }
  for (const CompiledRow& cut : lazy_cuts_) {
    double lhs = cut.expr.Evaluate(x);
    if (cut.op == RelOp::kGe && lhs < cut.rhs - tol) return false;
    if (cut.op == RelOp::kLe && lhs > cut.rhs + tol) return false;
  }
  return true;
}

}  // namespace rankhow
