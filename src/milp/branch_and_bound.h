#ifndef RANKHOW_MILP_BRANCH_AND_BOUND_H_
#define RANKHOW_MILP_BRANCH_AND_BOUND_H_

/// \file branch_and_bound.h
/// A best-first branch-and-bound MILP solver over MilpModel. This is the
/// "holistic solver" the paper's Section III-B argues for: LP-relaxation
/// lower bounds, most-fractional branching, and — crucially — a global
/// incumbent that lets results from one part of the search space prune
/// others (the cross-branch information passing the PTIME TREE algorithm
/// lacks). RankHow plugs in a primal heuristic that converts any node's
/// fractional weight vector into a true feasible ranking error, which keeps
/// the incumbent tight from the first node on.

#include <atomic>
#include <functional>
#include <optional>
#include <vector>

#include "lp/incremental.h"
#include "lp/simplex.h"
#include "milp/milp_model.h"
#include "util/status.h"
#include "util/timer.h"

namespace rankhow {

/// A candidate solution proposed by a primal heuristic: a *true feasible*
/// objective value and the assignment achieving it.
struct PrimalCandidate {
  double objective;
  std::vector<double> values;
};

/// Callback invoked on each node's LP-relaxation solution. Returning a
/// candidate updates the incumbent when it improves. The candidate's
/// objective MUST be attainable by a genuinely feasible solution (it is
/// used to prune). With num_threads > 1 the callback is invoked
/// concurrently from several workers, so it must be thread-safe (pure
/// functions of lp_values, like RankHow's true-error evaluation, are).
using PrimalHeuristic = std::function<std::optional<PrimalCandidate>(
    const std::vector<double>& lp_values)>;

struct BnbOptions {
  /// Wall-clock budget; 0 = unlimited.
  double time_limit_seconds = 0;
  /// Node cap; 0 = unlimited.
  int64_t max_nodes = 0;
  /// Integrality tolerance for binaries.
  double int_tol = 1e-6;
  /// When true, LP bounds are tightened to ceil(bound - tol). Position-based
  /// ranking error is integral, so RankHow always sets this.
  bool objective_is_integral = false;
  /// Terminate once incumbent − bound <= abs_gap.
  double abs_gap = 1e-9;
  /// Lazy row generation (default): node LPs start from the core LP and
  /// pull in indicator big-M rows, strengthening cuts, and binary upper
  /// bounds only when an LP iterate violates them. Disabling puts every row
  /// in every node LP — the classical full relaxation (ablation A-lazy).
  bool lazy_separation = true;
  /// Warm-start incumbent objective (e.g. from a seed heuristic);
  /// +inf = none.
  double initial_incumbent = kInfinity;
  /// Assignment matching initial_incumbent (may be empty).
  std::vector<double> initial_values;
  /// Externally proven lower bound on the optimum; -inf = none. Seeds the
  /// root node's bound, so every node bound is lifted to at least this
  /// value — when the initial incumbent already meets it, the tree closes
  /// at the root with zero nodes explored. SolveSession passes the previous
  /// solve's proven optimum here after a constraints-only tightening edit
  /// (the feasible set shrank and the objective is unchanged, so the old
  /// optimum cannot be undercut). Soundness is the caller's obligation: a
  /// value above the true optimum makes the search "prove" a wrong bound.
  double external_lower_bound = -kInfinity;
  /// Node LPs via one shared IncrementalLp per tree (default): per-node
  /// deltas (bound flips + active lazy-row set) are applied to a persistent
  /// tableau and re-optimized dually from the parent basis, instead of
  /// copying the core LpModel and cold-starting two-phase simplex at every
  /// node. Disabling restores the legacy cold path (the cross-check oracle;
  /// also the per-node fallback after numerical trouble).
  bool use_warm_start = true;
  /// Parallel tree search: workers pull nodes from a sharded best-first
  /// frontier, each owning a private warm IncrementalLp (bases are only
  /// reused by the worker that exported them — tableaus materialize lazy
  /// rows in first-use order, so row ids are engine-local), and publish
  /// incumbents through a shared SearchCoordinator. 1 = the classic serial
  /// search (and bit-identical to it), 0 = all hardware threads. The proven
  /// optimum is thread-count independent; node/pivot counts are not.
  int num_threads = 1;
  /// Cooperative external cancellation (see SearchCoordinator): workers
  /// poll this alongside the deadline and wind down within one node,
  /// reporting the result as budget-limited. nullptr = never cancelled.
  /// The flag must outlive the solve.
  const std::atomic<bool>* cancel = nullptr;
  SimplexOptions lp_options;
};

struct BnbStats {
  int64_t nodes_explored = 0;
  /// Total simplex pivots across all node LP solves (both engines). This is
  /// the figure of merit for the warm-start machinery: with use_warm_start,
  /// bench_fig3jkl_scalability and bench_micro compare it against the
  /// cold-start path.
  int64_t lp_iterations = 0;
  int64_t incumbent_updates = 0;
  /// Lazy-separation rounds that added violated indicator rows (see
  /// branch_and_bound.cc's row generation).
  int64_t lazy_rounds = 0;
  /// Fully-fixed nodes dropped after unrecoverable LP failures; any drop
  /// downgrades proven_optimal (see branch_and_bound.cc).
  int64_t numerical_drops = 0;
  // ---- warm-start accounting (zero when use_warm_start is off) ----
  /// Node LP solves that reused the persistent tableau / a parent basis.
  int64_t lp_warm_solves = 0;
  /// Solves from a fresh factorization (first node + numerical rebuilds).
  int64_t lp_cold_solves = 0;
  /// Pivot breakdown of lp_iterations on the warm engine.
  int64_t lp_primal_pivots = 0;
  int64_t lp_dual_pivots = 0;
  int64_t lp_repair_pivots = 0;
  int64_t lp_import_pivots = 0;
  /// Tableau rebuilds forced by post-solve checks / infeasibility re-checks.
  int64_t lp_rebuilds = 0;
  /// Nodes rerouted to the legacy SimplexSolver path after the warm engine
  /// reported numerical trouble.
  int64_t lp_fallback_solves = 0;
  double seconds = 0;
};

struct BnbResult {
  /// Best assignment found (size = model variables; empty if none).
  std::vector<double> values;
  /// Its objective.
  double objective = kInfinity;
  /// Proven global lower bound (minimization).
  double best_bound = -kInfinity;
  /// True iff objective == best_bound within abs_gap and search completed.
  bool proven_optimal = false;
  BnbStats stats;
};

/// Branch-and-bound solver. Minimizes the model's LP objective subject to
/// integrality of the declared binaries and the indicator semantics.
///
/// Errors: kInfeasible (no feasible assignment exists), kResourceExhausted
/// (limits hit with no incumbent), other codes propagate from the LP layer.
/// Hitting a limit *with* an incumbent is not an error: the result has
/// proven_optimal == false.
class BranchAndBound {
 public:
  explicit BranchAndBound(BnbOptions options = BnbOptions())
      : options_(std::move(options)) {}

  /// Optional primal heuristic consulted at every node.
  void SetPrimalHeuristic(PrimalHeuristic heuristic) {
    heuristic_ = std::move(heuristic);
  }

  Result<BnbResult> Solve(const MilpModel& model) const;

 private:
  BnbOptions options_;
  PrimalHeuristic heuristic_;
};

}  // namespace rankhow

#endif  // RANKHOW_MILP_BRANCH_AND_BOUND_H_
