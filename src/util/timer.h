#ifndef RANKHOW_UTIL_TIMER_H_
#define RANKHOW_UTIL_TIMER_H_

/// \file timer.h
/// Wall-clock timing and deadline helpers used by the solvers' time budgets.

#include <chrono>

namespace rankhow {

/// Monotonic wall-clock stopwatch, started at construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A soft deadline: `Expired()` becomes true `budget_seconds` after
/// construction. A non-positive budget means "no deadline".
class Deadline {
 public:
  explicit Deadline(double budget_seconds) : budget_(budget_seconds) {}

  bool HasBudget() const { return budget_ > 0; }
  bool Expired() const {
    return HasBudget() && timer_.ElapsedSeconds() >= budget_;
  }
  double RemainingSeconds() const {
    if (!HasBudget()) return 1e18;
    double rem = budget_ - timer_.ElapsedSeconds();
    return rem > 0 ? rem : 0;
  }
  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

 private:
  double budget_;
  WallTimer timer_;
};

}  // namespace rankhow

#endif  // RANKHOW_UTIL_TIMER_H_
