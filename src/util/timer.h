#ifndef RANKHOW_UTIL_TIMER_H_
#define RANKHOW_UTIL_TIMER_H_

/// \file timer.h
/// Wall-clock timing and deadline helpers used by the solvers' time budgets.

#include <algorithm>
#include <chrono>
#include <optional>

namespace rankhow {

/// Monotonic wall-clock stopwatch, started at construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A soft deadline: `Expired()` becomes true `budget_seconds` after
/// construction. A non-positive budget means "no deadline".
class Deadline {
 public:
  explicit Deadline(double budget_seconds) : budget_(budget_seconds) {}

  bool HasBudget() const { return budget_ > 0; }
  bool Expired() const {
    return HasBudget() && timer_.ElapsedSeconds() >= budget_;
  }
  /// Remaining budget, or nullopt for an unlimited deadline. "No deadline"
  /// used to be a 1e18 sentinel that callers had to remember never to feed
  /// into budget arithmetic; the optional makes forgetting a type error.
  std::optional<double> Remaining() const {
    if (!HasBudget()) return std::nullopt;
    double rem = budget_ - timer_.ElapsedSeconds();
    return rem > 0 ? rem : 0;
  }
  /// Remaining budget under the solver convention "0 = no deadline" (what
  /// SimplexOptions::deadline_seconds and IncrementalLp::Solve expect).
  /// A LIVE deadline never maps to the 0 sentinel: an exactly-exhausted
  /// budget comes back as a microsecond, so the downstream solver returns
  /// kResourceExhausted promptly instead of running unlimited — the exact
  /// confusion this type replaced the old 1e18 sentinel to prevent.
  double RemainingOrZero() const {
    if (!HasBudget()) return 0;
    return std::max(*Remaining(), 1e-6);
  }
  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

 private:
  double budget_;
  WallTimer timer_;
};

}  // namespace rankhow

#endif  // RANKHOW_UTIL_TIMER_H_
