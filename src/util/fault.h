#ifndef RANKHOW_UTIL_FAULT_H_
#define RANKHOW_UTIL_FAULT_H_

/// \file fault.h
/// The fault-injection harness behind the chaos suite (tests/chaos/): a
/// process-global registry of named injection points that production code
/// consults at the few places where failures are interesting — journal
/// fsync/rotate, the strand executor, the socket write path — and that
/// tests (or the RANKHOW_FAULTS environment variable, for spawned server
/// processes) arm to force those failures deterministically.
///
/// Injection points are plain string names (constants below). An unarmed
/// injector costs one relaxed atomic load per check — the fast path never
/// takes the lock — so the hooks stay in release builds and the chaos
/// suite exercises the exact binaries production runs.
///
/// Arming semantics: Arm(point, n, count) makes the point *fire* on its
/// n-th Hit() and for `count-1` further hits (count = -1 fires forever).
/// Parameter-style points (delays, byte budgets) read the armed value
/// without consuming it via Param()/ConsumeBudget().
///
/// Environment syntax (parsed once, on first Global() use):
///   RANKHOW_FAULTS="crash-after-journal-append=3,journal-fsync-fail=1:-1"
/// i.e. comma-separated `point=N[:COUNT]` entries.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace rankhow {

namespace faults {
/// Journal: the next fsync (or rotate rename) reports failure; the writer's
/// bounded backoff and journal-off degradation paths run for real.
inline constexpr char kJournalFsyncFail[] = "journal-fsync-fail";
inline constexpr char kJournalRotateFail[] = "journal-rotate-fail";
/// Journal: SIGKILL the process immediately before/after the record write
/// lands — the two sides of the crash-recovery contract (a command acked
/// is journaled; a command journaled-but-unacked replays harmlessly).
inline constexpr char kCrashBeforeJournalAppend[] =
    "crash-before-journal-append";
inline constexpr char kCrashAfterJournalAppend[] =
    "crash-after-journal-append";
/// Strand executor: sleep this many milliseconds before each command runs
/// (a parameter point — widens race/shedding windows deterministically).
inline constexpr char kStrandDelayMs[] = "strand-delay-ms";
/// Socket write path: hard-drop the connection after this many bytes have
/// been sent (a budget point — simulates a peer vanishing mid-response).
inline constexpr char kConnDropAfterBytes[] = "conn-drop-after-bytes";
}  // namespace faults

class FaultInjector {
 public:
  /// The process-global injector. First use parses RANKHOW_FAULTS.
  static FaultInjector& Global();

  /// Arms `point` to fire on its n-th Hit (n >= 1) and for count-1 further
  /// hits (count = -1: forever). For Param/ConsumeBudget points, `n` is the
  /// parameter value.
  void Arm(const std::string& point, int64_t n, int64_t count = 1);
  void Disarm(const std::string& point);
  /// Disarms everything (tests call this between cases).
  void Reset();

  /// Trigger-point check: true when `point` is armed and this hit crossed
  /// the arming threshold. Consumes one firing from the count.
  bool Hit(const std::string& point);

  /// Parameter-point read: the armed value (0 when unarmed). Never
  /// consumes.
  int64_t Param(const std::string& point);

  /// Budget-point check: subtracts `amount` from the armed budget and
  /// returns true on the call that crosses it (then stays exhausted until
  /// disarmed). False when unarmed.
  bool ConsumeBudget(const std::string& point, int64_t amount);

  /// Crash-point: if Hit(point) fires, SIGKILL this process — the genuine
  /// no-destructors, no-flush death the recovery path must survive.
  void MaybeCrash(const std::string& point);

 private:
  FaultInjector();

  struct Point {
    int64_t threshold = 1;  // fire on this hit (1-based) / param / budget
    int64_t count = 1;      // firings remaining after threshold (-1 = inf)
    int64_t hits = 0;       // Hit() calls so far
    int64_t consumed = 0;   // ConsumeBudget total
    bool exhausted = false;
  };

  /// Armed-point count; == 0 lets every check return without locking.
  std::atomic<int> armed_{0};
  std::mutex mu_;
  std::map<std::string, Point> points_;
};

}  // namespace rankhow

#endif  // RANKHOW_UTIL_FAULT_H_
