#ifndef RANKHOW_UTIL_RANDOM_H_
#define RANKHOW_UTIL_RANDOM_H_

/// \file random.h
/// Deterministic pseudo-random generation (xoshiro256++ seeded via
/// splitmix64). Every stochastic component in the library takes an explicit
/// seed so all experiments are bit-for-bit reproducible.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rankhow {

/// xoshiro256++ generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }
  uint64_t operator()() { return Next(); }

  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box–Muller.
  double NextGaussian();

  /// Normal with the given mean / standard deviation.
  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Exponential with the given rate (mean 1/rate).
  double NextExponential(double rate);

  /// A point uniformly distributed on the standard (m-1)-simplex
  /// {w >= 0, sum w = 1}: i.i.d. Exp(1) draws normalized (Dirichlet(1,..,1)).
  std::vector<double> NextSimplexPoint(int m);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextBelow(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent generator (for parallel sub-streams). Unlike
  /// SplitStream, this consumes one draw from *this, so the parent's
  /// subsequent output changes.
  Rng Fork();

  /// Advances this generator by 2^128 steps (the canonical xoshiro256++
  /// jump polynomial): the state lands where 2^128 Next() calls would have
  /// left it, so streams separated by jumps never overlap in practice.
  void Jump();

  /// The `worker_id`-th member of a disjoint deterministic stream family:
  /// a copy of *this advanced by (worker_id + 1) jumps. The parent is not
  /// consumed, every worker's stream is disjoint from the parent's next
  /// 2^128 draws and from every sibling's, and the mapping is a pure
  /// function of (parent state, worker_id) — the property the SYM-GD
  /// portfolio and any per-worker randomness rely on for bit-reproducible
  /// parallel runs.
  Rng SplitStream(int worker_id) const;

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0;
};

}  // namespace rankhow

#endif  // RANKHOW_UTIL_RANDOM_H_
