#ifndef RANKHOW_UTIL_STRING_UTIL_H_
#define RANKHOW_UTIL_STRING_UTIL_H_

/// \file string_util.h
/// Small string helpers shared by CSV I/O, harness flag parsing, and
/// human-readable formatting of scoring functions.

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace rankhow {

/// Splits on `sep`, keeping empty fields ("a,,b" -> {"a", "", "b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

/// Parses a double; fails on trailing garbage.
Result<double> ParseDouble(std::string_view s);

/// Parses a signed 64-bit integer; fails on trailing garbage.
Result<int64_t> ParseInt(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double compactly ("0.14", "1e-05") for tables/functions.
std::string FormatDouble(double v, int precision = 6);

/// Joins items with a separator.
std::string Join(const std::vector<std::string>& items, std::string_view sep);

/// Very small command-line flag parser for harnesses/examples.
///
/// Understands `--name=value` and `--name value`. Unknown flags are fatal
/// (typo safety); positional arguments are rejected.
class FlagParser {
 public:
  FlagParser(int argc, char** argv);

  /// Registers a flag and returns its value (or the default). `help` is shown
  /// by --help output.
  double GetDouble(const std::string& name, double default_value,
                   const std::string& help);
  int64_t GetInt(const std::string& name, int64_t default_value,
                 const std::string& help);
  bool GetBool(const std::string& name, bool default_value,
               const std::string& help);
  std::string GetString(const std::string& name,
                        const std::string& default_value,
                        const std::string& help);

  /// Call after all Get* registrations: handles --help and rejects unknown
  /// flags. Returns false if the program should exit (help was printed).
  bool Finish();

 private:
  struct Entry {
    std::string value;
    bool used = false;
  };
  std::string program_;
  std::vector<std::pair<std::string, Entry>> flags_;
  std::vector<std::string> help_lines_;
  bool help_requested_ = false;

  Entry* Find(const std::string& name);
};

}  // namespace rankhow

#endif  // RANKHOW_UTIL_STRING_UTIL_H_
