#ifndef RANKHOW_UTIL_LOGGING_H_
#define RANKHOW_UTIL_LOGGING_H_

/// \file logging.h
/// Minimal leveled logging plus check macros. Logging goes to stderr so that
/// harness table output on stdout stays machine-readable.

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace rankhow {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default: kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define RH_LOG(level)                                            \
  ::rankhow::internal::LogMessage(::rankhow::LogLevel::k##level, \
                                  __FILE__, __LINE__)

/// Aborts with a message when `condition` is false. Always on: guards
/// caller-visible invariants whose violation would corrupt results.
#define RH_CHECK(condition)                                             \
  if (!(condition))                                                     \
  ::rankhow::internal::FatalMessage(__FILE__, __LINE__, #condition)

#ifdef NDEBUG
#define RH_DCHECK(condition) \
  if (false) ::rankhow::internal::FatalMessage(__FILE__, __LINE__, #condition)
#else
#define RH_DCHECK(condition) RH_CHECK(condition)
#endif

}  // namespace rankhow

#endif  // RANKHOW_UTIL_LOGGING_H_
