#include "util/table_printer.h"

#include <algorithm>
#include <fstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace rankhow {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  RH_CHECK(row.size() == header_.size())
      << "row arity " << row.size() << " != header arity " << header_.size();
  rows_.push_back(std::move(row));
}

void TablePrinter::AddNumericRow(const std::vector<double>& row) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(FormatDouble(v, 4));
  AddRow(std::move(cells));
}

std::string TablePrinter::ToText() const {
  std::vector<size_t> width(header_.size());
  for (size_t j = 0; j < header_.size(); ++j) width[j] = header_[j].size();
  for (const auto& row : rows_) {
    for (size_t j = 0; j < row.size(); ++j) {
      width[j] = std::max(width[j], row[j].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t j = 0; j < row.size(); ++j) {
      if (j > 0) line += "  ";
      line += row[j];
      line.append(width[j] - row[j].size(), ' ');
    }
    // Strip trailing padding.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t j = 0; j < width.size(); ++j) total += width[j] + (j ? 2 : 0);
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

namespace {
std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string TablePrinter::ToCsv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t j = 0; j < row.size(); ++j) {
      if (j > 0) out += ',';
      out += CsvEscape(row[j]);
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

Status TablePrinter::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::IoError("cannot open for write: " + path);
  f << ToCsv();
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace rankhow
