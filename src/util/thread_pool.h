#ifndef RANKHOW_UTIL_THREAD_POOL_H_
#define RANKHOW_UTIL_THREAD_POOL_H_

/// \file thread_pool.h
/// A fixed-size worker pool plus cancellable task groups — the execution
/// substrate of the parallel search engine (see DESIGN.md "Parallel search
/// architecture"). Deliberately minimal: tasks are plain closures, there is
/// no futures machinery, and cancellation is cooperative (a task group
/// exposes a flag that long-running tasks poll). The exact searches build
/// their own higher-level structure (worker contexts, sharded frontiers,
/// incumbent coordination) in core/search_coordinator.h on top of this.

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rankhow {

/// Fixed-size pool of worker threads draining a FIFO task queue. Threads
/// are started in the constructor and joined in the destructor; submitting
/// after shutdown began is a programming error (checked).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (must be >= 1; use ResolveThreadCount to
  /// map a user-facing "0 = all cores" request to a concrete count).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Enqueues a task. Tasks must not block waiting for tasks queued after
  /// them (the pool has a fixed number of threads and no work stealing).
  void Submit(std::function<void()> task);

  /// Maps the user-facing thread-count convention onto a concrete worker
  /// count: 0 (or negative) = std::thread::hardware_concurrency (at least
  /// 1), anything else is taken literally.
  static int ResolveThreadCount(int requested);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

/// A batch of related tasks submitted to one pool: tracks completion so the
/// owner can block until every task finished, and carries a shared
/// cancellation flag that cooperative tasks poll via `cancelled()`. The
/// destructor cancels and waits, so a group never outlives its tasks.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() {
    Cancel();
    Wait();
  }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits `fn` to the pool and counts it as pending until it returns.
  void Spawn(std::function<void()> fn);

  /// Requests cooperative cancellation: `cancelled()` flips to true; tasks
  /// already running keep running until they poll it.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancelled_.load(std::memory_order_relaxed); }

  /// Blocks until every spawned task returned (regardless of cancellation).
  void Wait();

 private:
  ThreadPool* pool_;
  std::atomic<bool> cancelled_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  int pending_ = 0;
};

}  // namespace rankhow

#endif  // RANKHOW_UTIL_THREAD_POOL_H_
