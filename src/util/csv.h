#ifndef RANKHOW_UTIL_CSV_H_
#define RANKHOW_UTIL_CSV_H_

/// \file csv.h
/// Minimal CSV reading used to load externally provided datasets (the
/// library ships simulators, but users can point the same API at real data).

#include <string>
#include <vector>

#include "util/status.h"

namespace rankhow {

/// A parsed CSV file: a header row and data rows of equal arity.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text. Supports quoted fields with embedded commas/quotes and
/// both \n and \r\n line endings. All rows must match the header arity.
Result<CsvTable> ParseCsv(const std::string& text);

/// Reads and parses a CSV file from disk.
Result<CsvTable> ReadCsvFile(const std::string& path);

}  // namespace rankhow

#endif  // RANKHOW_UTIL_CSV_H_
