#include "util/histogram.h"

#include <functional>
#include <thread>

#include "util/string_util.h"

namespace rankhow {

namespace {

/// Bucket index for a microsecond sample: floor(log2(usec)), clamped.
int BucketOf(uint64_t usec) {
  if (usec < 2) return 0;
  int b = 63 - __builtin_clzll(usec);
  return b < HistogramSnapshot::kBuckets ? b
                                         : HistogramSnapshot::kBuckets - 1;
}

/// The calling thread's shard index. A hashed thread id is stable for the
/// thread's lifetime, so each recorder keeps hitting the same shard.
int ShardOf() {
  static thread_local const int shard = static_cast<int>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      LatencyHistogram::kShards);
  return shard;
}

}  // namespace

double HistogramSnapshot::QuantileUsec(double q) const {
  if (count == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t rank = static_cast<uint64_t>(q * (count - 1));
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] > rank) {
      // Interpolate inside [2^b, 2^(b+1)) by the rank's position in it.
      double lo = b == 0 ? 0.0 : static_cast<double>(1ull << b);
      double hi = static_cast<double>(1ull << (b + 1));
      double frac = static_cast<double>(rank - seen) / buckets[b];
      double est = lo + frac * (hi - lo);
      return est > max_usec ? static_cast<double>(max_usec) : est;
    }
    seen += buckets[b];
  }
  return static_cast<double>(max_usec);
}

void LatencyHistogram::Record(uint64_t usec) {
  Shard& shard = shards_[ShardOf()];
  shard.buckets[BucketOf(usec)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum_usec.fetch_add(usec, std::memory_order_relaxed);
  uint64_t seen = shard.max_usec.load(std::memory_order_relaxed);
  while (usec > seen && !shard.max_usec.compare_exchange_weak(
                            seen, usec, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot out;
  for (const Shard& shard : shards_) {
    for (int b = 0; b < kBuckets; ++b) {
      out.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    out.count += shard.count.load(std::memory_order_relaxed);
    out.sum_usec += shard.sum_usec.load(std::memory_order_relaxed);
    uint64_t m = shard.max_usec.load(std::memory_order_relaxed);
    if (m > out.max_usec) out.max_usec = m;
  }
  return out;
}

const char* WireVerbName(WireVerb verb) {
  switch (verb) {
    case WireVerb::kOpen: return "open";
    case WireVerb::kClose: return "close";
    case WireVerb::kStats: return "stats";
    case WireVerb::kMetrics: return "metrics";
    case WireVerb::kDeadline: return "deadline";
    case WireVerb::kFrame: return "frame";
    case WireVerb::kQuit: return "quit";
    case WireVerb::kEdit: return "edit";
    case WireVerb::kSolve: return "solve";
  }
  return "?";
}

void ServerMetrics::RaisePeak(std::atomic<int64_t>& peak, int64_t value) {
  int64_t seen = peak.load(std::memory_order_relaxed);
  while (value > seen && !peak.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

std::string ServerMetrics::RenderWireLine() const {
  std::string out = StrFormat(
      "connections=%lld connections_peak=%lld connections_total=%lld "
      "frames_binary=%lld backpressure_closes=%lld idle_closes=%lld "
      "eof_closes=%lld writes_queued_peak=%lld writes_retried=%lld "
      "protocol_errors=%lld",
      static_cast<long long>(connections_current.load()),
      static_cast<long long>(connections_peak.load()),
      static_cast<long long>(connections_total.load()),
      static_cast<long long>(frames_binary.load()),
      static_cast<long long>(backpressure_closes.load()),
      static_cast<long long>(idle_closes.load()),
      static_cast<long long>(eof_closes.load()),
      static_cast<long long>(writes_queued_peak.load()),
      static_cast<long long>(writes_retried.load()),
      static_cast<long long>(protocol_errors.load()));
  for (int v = 0; v < kNumWireVerbs; ++v) {
    HistogramSnapshot snap = per_verb[v].Snapshot();
    if (snap.count == 0) continue;
    const char* name = WireVerbName(static_cast<WireVerb>(v));
    out += StrFormat(
        " %s.count=%llu %s.mean_us=%.0f %s.p50_us=%.0f %s.p99_us=%.0f "
        "%s.max_us=%llu",
        name, static_cast<unsigned long long>(snap.count), name,
        snap.MeanUsec(), name, snap.QuantileUsec(0.5), name,
        snap.QuantileUsec(0.99), name,
        static_cast<unsigned long long>(snap.max_usec));
  }
  return out;
}

std::string ServerMetrics::RenderStatsFields() const {
  return StrFormat(
      "connections=%lld frames_binary=%lld backpressure_closes=%lld "
      "writes_queued_peak=%lld writes_retried=%lld aborted_idle=%lld "
      "aborted_backpressure=%lld aborted_eof=%lld",
      static_cast<long long>(connections_current.load()),
      static_cast<long long>(frames_binary.load()),
      static_cast<long long>(backpressure_closes.load()),
      static_cast<long long>(writes_queued_peak.load()),
      static_cast<long long>(writes_retried.load()),
      static_cast<long long>(idle_closes.load()),
      static_cast<long long>(backpressure_closes.load()),
      static_cast<long long>(eof_closes.load()));
}

}  // namespace rankhow
