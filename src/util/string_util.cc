#include "util/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "util/logging.h"

namespace rankhow {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::Invalid("empty number");
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::Invalid("cannot parse double: '" + buf + "'");
  }
  return v;
}

Result<int64_t> ParseInt(std::string_view s) {
  std::string buf(Trim(s));
  if (buf.empty()) return Status::Invalid("empty integer");
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) {
    return Status::Invalid("cannot parse int: '" + buf + "'");
  }
  return static_cast<int64_t>(v);
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? needed : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double v, int precision) {
  std::string s = StrFormat("%.*g", precision, v);
  return s;
}

std::string Join(const std::vector<std::string>& items,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

FlagParser::FlagParser(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "prog";
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (!StartsWith(arg, "--")) {
      std::cerr << "Unexpected positional argument: " << arg << "\n";
      std::exit(2);
    }
    arg.remove_prefix(2);
    size_t eq = arg.find('=');
    std::string name;
    Entry entry;
    if (eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      entry.value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
      if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        entry.value = argv[++i];
      } else {
        entry.value = "true";  // bare boolean flag
      }
    }
    flags_.emplace_back(name, entry);
  }
}

FlagParser::Entry* FlagParser::Find(const std::string& name) {
  for (auto& [n, e] : flags_) {
    if (n == name) return &e;
  }
  return nullptr;
}

double FlagParser::GetDouble(const std::string& name, double default_value,
                             const std::string& help) {
  help_lines_.push_back(StrFormat("  --%s (default %s): %s", name.c_str(),
                                  FormatDouble(default_value).c_str(),
                                  help.c_str()));
  Entry* e = Find(name);
  if (e == nullptr) return default_value;
  e->used = true;
  auto r = ParseDouble(e->value);
  RH_CHECK(r.ok()) << "bad value for --" << name << ": " << e->value;
  return *r;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t default_value,
                           const std::string& help) {
  help_lines_.push_back(StrFormat("  --%s (default %lld): %s", name.c_str(),
                                  static_cast<long long>(default_value),
                                  help.c_str()));
  Entry* e = Find(name);
  if (e == nullptr) return default_value;
  e->used = true;
  auto r = ParseInt(e->value);
  RH_CHECK(r.ok()) << "bad value for --" << name << ": " << e->value;
  return *r;
}

bool FlagParser::GetBool(const std::string& name, bool default_value,
                         const std::string& help) {
  help_lines_.push_back(StrFormat("  --%s (default %s): %s", name.c_str(),
                                  default_value ? "true" : "false",
                                  help.c_str()));
  Entry* e = Find(name);
  if (e == nullptr) return default_value;
  e->used = true;
  std::string v = e->value;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value,
                                  const std::string& help) {
  help_lines_.push_back(StrFormat("  --%s (default '%s'): %s", name.c_str(),
                                  default_value.c_str(), help.c_str()));
  Entry* e = Find(name);
  if (e == nullptr) return default_value;
  e->used = true;
  return e->value;
}

bool FlagParser::Finish() {
  if (help_requested_) {
    std::cerr << "Usage: " << program_ << " [flags]\n";
    for (const auto& line : help_lines_) std::cerr << line << "\n";
    return false;
  }
  for (const auto& [name, e] : flags_) {
    if (!e.used) {
      std::cerr << "Unknown flag --" << name << " (see --help)\n";
      std::exit(2);
    }
  }
  return true;
}

}  // namespace rankhow
