#include "util/thread_pool.h"

#include "util/logging.h"

namespace rankhow {

ThreadPool::ThreadPool(int num_threads) {
  RH_CHECK(num_threads >= 1) << "ThreadPool needs at least one worker";
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    RH_CHECK(!shutdown_) << "Submit after ThreadPool shutdown";
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

int ThreadPool::ResolveThreadCount(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void TaskGroup::Spawn(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    fn();
    // Notify while holding the lock: the moment pending_ hits 0 a Wait()er
    // may return and destroy this group, so the notifying thread must not
    // touch cv_ after releasing mu_.
    std::lock_guard<std::mutex> lock(mu_);
    --pending_;
    cv_.notify_all();
  });
}

void TaskGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace rankhow
