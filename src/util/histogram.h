#ifndef RANKHOW_UTIL_HISTOGRAM_H_
#define RANKHOW_UTIL_HISTOGRAM_H_

/// \file histogram.h
/// Lock-free latency histograms for the serving stack (the `metrics` wire
/// verb; see docs/OPERATIONS.md "The metrics verb").
///
/// Shape: recording happens on hot threads (reactor event loops, strand
/// pool completions) and must never contend; reading happens rarely (a
/// `metrics` request) and may be slow. So a histogram is a fixed array of
/// relaxed atomic counters over log2 microsecond buckets, *sharded* — each
/// recording thread hashes to one of a small fixed set of shard arrays, so
/// two event loops never bounce the same cache line — and a read merges
/// the shards into a plain snapshot. Recording is wait-free; snapshots are
/// not atomic across buckets (counts recorded mid-merge may straddle), which
/// is fine for an operational metric.
///
/// Quantiles are estimated from the merged buckets by linear interpolation
/// inside the winning bucket: with log2 buckets the estimate is within 2x
/// of the true value, which is the operationally useful precision for a
/// latency percentile (the bucket boundaries, not the interpolation, carry
/// the information).

#include <atomic>
#include <cstdint>
#include <string>

namespace rankhow {

/// Merged, plain-value view of one histogram (see LatencyHistogram::
/// Snapshot). All latencies in microseconds.
struct HistogramSnapshot {
  static constexpr int kBuckets = 40;
  uint64_t buckets[kBuckets] = {0};
  uint64_t count = 0;
  uint64_t sum_usec = 0;
  uint64_t max_usec = 0;

  double MeanUsec() const {
    return count > 0 ? static_cast<double>(sum_usec) / count : 0.0;
  }
  /// Estimated q-quantile (q in [0,1]) in microseconds, interpolated
  /// within the winning log2 bucket. 0 when empty.
  double QuantileUsec(double q) const;
};

/// One log-bucketed latency histogram: bucket b counts samples in
/// [2^b, 2^(b+1)) microseconds (bucket 0 additionally holds sub-usec
/// samples). Sharded: Record() touches only the calling thread's shard.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = HistogramSnapshot::kBuckets;
  /// Enough shards that a handful of event loops plus the strand pool
  /// rarely collide; each shard's counters are padded apart by layout.
  static constexpr int kShards = 4;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Wait-free; safe from any thread.
  void Record(uint64_t usec);

  /// Merges every shard into one plain snapshot.
  HistogramSnapshot Snapshot() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kBuckets] = {};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_usec{0};
    std::atomic<uint64_t> max_usec{0};
  };
  Shard shards_[kShards];
};

/// The wire verbs a latency histogram is kept for. kEdit covers every
/// session-script command except `solve` (constraint edits re-solve too,
/// but their latency profile is the interesting split).
enum class WireVerb {
  kOpen = 0,
  kClose,
  kStats,
  kMetrics,
  kDeadline,
  kFrame,
  kQuit,
  kEdit,
  kSolve,
};
constexpr int kNumWireVerbs = 9;
const char* WireVerbName(WireVerb verb);

/// Everything the serving transport + wire layer counts, shared by the
/// reactor (connection/backpressure gauges) and the wire dispatch
/// (per-verb latencies). One instance per server process; plain struct so
/// tests can own one on the stack.
struct ServerMetrics {
  LatencyHistogram per_verb[kNumWireVerbs];

  // -------- transport gauges (maintained by the reactor) --------
  std::atomic<int64_t> connections_current{0};
  std::atomic<int64_t> connections_peak{0};
  std::atomic<int64_t> connections_total{0};
  /// Complete binary frames decoded across all connections.
  std::atomic<int64_t> frames_binary{0};
  /// Connections abort-closed because their bounded write queue overflowed
  /// (a stalled reader), by idle timeout, and by EOF/transport error — the
  ///`closed_aborted` causes the stats verb distinguishes.
  std::atomic<int64_t> backpressure_closes{0};
  std::atomic<int64_t> idle_closes{0};
  std::atomic<int64_t> eof_closes{0};
  /// High-water mark of any single connection's queued write bytes.
  std::atomic<int64_t> writes_queued_peak{0};
  /// Short/interrupted socket writes that were retried instead of failed
  /// (reactor partial sends + FdStreamBuf retries, summed at read time by
  /// the stats verb).
  std::atomic<int64_t> writes_retried{0};
  /// Requests dropped because a frame/line failed to decode (the
  /// connection abort-closes; siblings are untouched).
  std::atomic<int64_t> protocol_errors{0};

  void RecordVerb(WireVerb verb, uint64_t usec) {
    per_verb[static_cast<int>(verb)].Record(usec);
  }

  /// Monotonically raises a peak gauge.
  static void RaisePeak(std::atomic<int64_t>& peak, int64_t value);

  /// The single-line `ok metrics ...` body: gauges plus
  /// `VERB.count/.mean_us/.p50_us/.p99_us/.max_us` for every verb with
  /// samples (see docs/PROTOCOL.md).
  std::string RenderWireLine() const;
  /// The transport fields the `stats` verb appends (connections,
  /// frames_binary, backpressure_closes, writes_queued_peak, and the
  /// aborted_idle/aborted_backpressure/aborted_eof split).
  std::string RenderStatsFields() const;
};

}  // namespace rankhow

#endif  // RANKHOW_UTIL_HISTOGRAM_H_
