#ifndef RANKHOW_UTIL_TABLE_PRINTER_H_
#define RANKHOW_UTIL_TABLE_PRINTER_H_

/// \file table_printer.h
/// Aligned plain-text tables plus CSV export. Every benchmark harness prints
/// the same rows/series a paper table or figure reports through this class.

#include <string>
#include <vector>

#include "util/status.h"

namespace rankhow {

/// Collects rows of string cells and renders them either as an aligned
/// monospace table (for the terminal) or as CSV (for plotting).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats each double with 4 significant digits.
  void AddNumericRow(const std::vector<double>& row);

  /// Renders an aligned table with a separator under the header.
  std::string ToText() const;

  /// Renders RFC-4180-ish CSV (quotes fields containing comma/quote/newline).
  std::string ToCsv() const;

  /// Writes ToCsv() to `path`.
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rankhow

#endif  // RANKHOW_UTIL_TABLE_PRINTER_H_
