#include "util/status.h"

namespace rankhow {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNumerical:
      return "Numerical";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kUnbounded:
      return "Unbounded";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeToString(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace rankhow
