#ifndef RANKHOW_UTIL_STATUS_H_
#define RANKHOW_UTIL_STATUS_H_

/// \file status.h
/// Exception-free error handling in the style of arrow::Status /
/// arrow::Result. All fallible public APIs in this library return Status (for
/// procedures) or Result<T> (for functions producing a value).

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace rankhow {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,  // node/time/iteration limits hit
  kInternal,           // invariant violation (bug)
  kNumerical,          // numerical problem detected (e.g. failed verification)
  kInfeasible,         // constraint system has no solution
  kUnbounded,          // optimization objective unbounded
  kUnimplemented,
  kIoError,
};

/// Returns a short human-readable name for a StatusCode ("InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome carrying a code and a message.
///
/// Cheap to copy in the OK case (no allocation). Use the factory functions
/// (Status::OK(), Status::Invalid(...)) rather than the constructor.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Numerical(std::string msg) {
    return Status(StatusCode::kNumerical, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Unbounded(std::string msg) {
    return Status(StatusCode::kUnbounded, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error outcome. Holds T on success, Status otherwise.
///
/// Usage:
///   Result<LpSolution> r = solver.Solve(model);
///   if (!r.ok()) return r.status();
///   const LpSolution& sol = *r;
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design,
  // mirroring arrow::Result ergonomics.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : status_;
  }

  const T& operator*() const& {
    assert(ok());
    return *value_;
  }
  T& operator*() & {
    assert(ok());
    return *value_;
  }
  T&& operator*() && {
    assert(ok());
    return std::move(*value_);
  }
  const T* operator->() const {
    assert(ok());
    return &*value_;
  }
  T* operator->() {
    assert(ok());
    return &*value_;
  }

  /// Moves the value out; requires ok().
  T MoveValue() {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or `fallback` when in error state.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK Status to the caller.
#define RH_RETURN_NOT_OK(expr)                    \
  do {                                            \
    ::rankhow::Status _rh_st = (expr);            \
    if (!_rh_st.ok()) return _rh_st;              \
  } while (false)

/// Evaluates a Result expression; on error returns its Status, otherwise
/// assigns the value to `lhs`.
#define RH_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(*tmp)

#define RH_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define RH_ASSIGN_OR_RETURN_NAME(a, b) RH_ASSIGN_OR_RETURN_CONCAT(a, b)
#define RH_ASSIGN_OR_RETURN(lhs, expr) \
  RH_ASSIGN_OR_RETURN_IMPL(            \
      RH_ASSIGN_OR_RETURN_NAME(_rh_result_, __LINE__), lhs, expr)

}  // namespace rankhow

#endif  // RANKHOW_UTIL_STATUS_H_
