#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace rankhow {

Result<CsvTable> ParseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> current;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&]() {
    current.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&]() {
    end_field();
    records.push_back(std::move(current));
    current.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field_started && field.empty()) {
          in_quotes = true;
          field_started = true;
        } else {
          field += c;  // stray quote inside unquoted field: keep literal
        }
        break;
      case ',':
        end_field();
        break;
      case '\r':
        break;  // handled with the following '\n'
      case '\n':
        end_record();
        break;
      default:
        field += c;
        field_started = true;
    }
  }
  if (in_quotes) return Status::Invalid("unterminated quoted CSV field");
  if (field_started || !field.empty() || !current.empty()) end_record();

  if (records.empty()) return Status::Invalid("empty CSV input");
  CsvTable table;
  table.header = std::move(records.front());
  for (size_t i = 1; i < records.size(); ++i) {
    if (records[i].size() == 1 && records[i][0].empty()) continue;  // blank
    if (records[i].size() != table.header.size()) {
      return Status::Invalid(StrFormat(
          "CSV row %zu has %zu fields, header has %zu", i,
          records[i].size(), table.header.size()));
    }
    table.rows.push_back(std::move(records[i]));
  }
  return table;
}

Result<CsvTable> ReadCsvFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ParseCsv(ss.str());
}

}  // namespace rankhow
