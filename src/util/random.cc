#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace rankhow {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& si : s_) si = SplitMix64(&sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  have_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

uint64_t Rng::NextBelow(uint64_t n) {
  RH_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  RH_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextExponential(double rate) {
  RH_DCHECK(rate > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::vector<double> Rng::NextSimplexPoint(int m) {
  RH_DCHECK(m >= 1);
  std::vector<double> w(m);
  double total = 0;
  for (int i = 0; i < m; ++i) {
    w[i] = NextExponential(1.0);
    total += w[i];
  }
  for (int i = 0; i < m; ++i) w[i] /= total;
  return w;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

void Rng::Jump() {
  // The xoshiro256++ jump polynomial (Blackman & Vigna): equivalent to
  // 2^128 Next() calls.
  static constexpr uint64_t kJump[] = {0x180EC6D33CFD0ABAULL,
                                       0xD5A61266F0C9392CULL,
                                       0xA9582618E03FC9AAULL,
                                       0x39ABDC4529B1661CULL};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t mask : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (mask & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      Next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
  have_cached_gaussian_ = false;
}

Rng Rng::SplitStream(int worker_id) const {
  RH_DCHECK(worker_id >= 0);
  Rng stream = *this;
  stream.have_cached_gaussian_ = false;
  for (int i = 0; i <= worker_id; ++i) stream.Jump();
  return stream;
}

}  // namespace rankhow
