#include "util/fault.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>

#include <unistd.h>

#include "util/string_util.h"

namespace rankhow {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

FaultInjector::FaultInjector() {
  const char* env = std::getenv("RANKHOW_FAULTS");
  if (env == nullptr || env[0] == '\0') return;
  // "point=N[:COUNT]" entries, comma-separated. A malformed entry is a
  // loud no-op (stderr) rather than an abort: the variable may leak into
  // child processes that never asked for faults.
  for (const std::string& raw : Split(env, ',')) {
    std::string entry(Trim(raw));
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    auto bad = [&entry] {
      std::fprintf(stderr,
                   "rankhow: ignoring malformed RANKHOW_FAULTS entry '%s' "
                   "(want point=N[:COUNT])\n",
                   entry.c_str());
    };
    if (eq == std::string::npos || eq == 0) {
      bad();
      continue;
    }
    const std::string point(Trim(entry.substr(0, eq)));
    std::string value = entry.substr(eq + 1);
    int64_t count = 1;
    if (const size_t colon = value.find(':'); colon != std::string::npos) {
      auto c = ParseInt(Trim(value.substr(colon + 1)));
      if (!c.ok()) {
        bad();
        continue;
      }
      count = *c;
      value = value.substr(0, colon);
    }
    auto n = ParseInt(Trim(value));
    if (!n.ok()) {
      bad();
      continue;
    }
    Arm(point, *n, count);
  }
}

void FaultInjector::Arm(const std::string& point, int64_t n, int64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& p = points_[point];
  p = Point();
  p.threshold = n;
  p.count = count;
  armed_.store(static_cast<int>(points_.size()), std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  points_.erase(point);
  armed_.store(static_cast<int>(points_.size()), std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  armed_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::Hit(const std::string& point) {
  if (armed_.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end() || it->second.exhausted) return false;
  Point& p = it->second;
  ++p.hits;
  if (p.hits < p.threshold) return false;
  // At or past the threshold: fire while the count lasts.
  if (p.count < 0) return true;  // forever
  const int64_t fired = p.hits - p.threshold;  // 0-based firing index
  if (fired < p.count) {
    if (fired + 1 == p.count) p.exhausted = true;
    return true;
  }
  p.exhausted = true;
  return false;
}

int64_t FaultInjector::Param(const std::string& point) {
  if (armed_.load(std::memory_order_relaxed) == 0) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.threshold;
}

bool FaultInjector::ConsumeBudget(const std::string& point, int64_t amount) {
  if (armed_.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end() || it->second.exhausted) return false;
  Point& p = it->second;
  p.consumed += amount;
  if (p.consumed >= p.threshold) {
    p.exhausted = true;  // one drop per arming
    return true;
  }
  return false;
}

void FaultInjector::MaybeCrash(const std::string& point) {
  if (!Hit(point)) return;
  // SIGKILL, not abort/exit: no atexit handlers, no stream flushes, no
  // destructors — the torn state a real crash leaves behind.
  ::kill(::getpid(), SIGKILL);
}

}  // namespace rankhow
