#include "lp/expr.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace rankhow {

LinearExpr LinearExpr::Term(int var, double coeff) {
  LinearExpr e;
  e.AddTerm(var, coeff);
  return e;
}

LinearExpr& LinearExpr::AddTerm(int var, double coeff) {
  RH_DCHECK(var >= 0);
  if (coeff != 0.0) {
    terms_.emplace_back(var, coeff);
    Merge();
  }
  return *this;
}

void LinearExpr::Merge() {
  std::sort(terms_.begin(), terms_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  size_t out = 0;
  for (size_t i = 0; i < terms_.size();) {
    int var = terms_[i].first;
    double coeff = 0;
    while (i < terms_.size() && terms_[i].first == var) {
      coeff += terms_[i].second;
      ++i;
    }
    if (coeff != 0.0) terms_[out++] = {var, coeff};
  }
  terms_.resize(out);
}

LinearExpr LinearExpr::operator+(const LinearExpr& other) const {
  LinearExpr out = *this;
  out += other;
  return out;
}

LinearExpr LinearExpr::operator-(const LinearExpr& other) const {
  LinearExpr out = *this;
  out -= other;
  return out;
}

LinearExpr LinearExpr::operator*(double scale) const {
  LinearExpr out;
  out.constant_ = constant_ * scale;
  if (scale != 0.0) {
    out.terms_ = terms_;
    for (auto& [var, coeff] : out.terms_) coeff *= scale;
  }
  return out;
}

LinearExpr& LinearExpr::operator+=(const LinearExpr& other) {
  constant_ += other.constant_;
  terms_.insert(terms_.end(), other.terms_.begin(), other.terms_.end());
  Merge();
  return *this;
}

LinearExpr& LinearExpr::operator-=(const LinearExpr& other) {
  constant_ -= other.constant_;
  for (const auto& [var, coeff] : other.terms_) {
    terms_.emplace_back(var, -coeff);
  }
  Merge();
  return *this;
}

double LinearExpr::CoeffOf(int var) const {
  for (const auto& [v, c] : terms_) {
    if (v == var) return c;
  }
  return 0.0;
}

double LinearExpr::Evaluate(const std::vector<double>& values) const {
  double sum = constant_;
  for (const auto& [var, coeff] : terms_) {
    RH_DCHECK(var < static_cast<int>(values.size()));
    sum += coeff * values[var];
  }
  return sum;
}

std::string LinearExpr::ToString() const {
  std::string out;
  for (const auto& [var, coeff] : terms_) {
    if (out.empty()) {
      out += StrFormat("%s*x%d", FormatDouble(coeff).c_str(), var);
    } else {
      out += coeff >= 0 ? " + " : " - ";
      out += StrFormat("%s*x%d", FormatDouble(std::abs(coeff)).c_str(), var);
    }
  }
  if (constant_ != 0.0 || out.empty()) {
    if (!out.empty()) out += constant_ >= 0 ? " + " : " - ";
    out += FormatDouble(std::abs(constant_));
    if (out == FormatDouble(std::abs(constant_)) && constant_ < 0) {
      out = "-" + out;
    }
  }
  return out;
}

const char* RelOpToString(RelOp op) {
  switch (op) {
    case RelOp::kLe:
      return "<=";
    case RelOp::kGe:
      return ">=";
    case RelOp::kEq:
      return "=";
  }
  return "?";
}

}  // namespace rankhow
