#ifndef RANKHOW_LP_SIMPLEX_H_
#define RANKHOW_LP_SIMPLEX_H_

/// \file simplex.h
/// A dense two-phase primal simplex solver. This is the LP engine under
/// everything in the repository: the MILP branch-and-bound relaxations
/// (RankHow), the TREE baseline's feasibility checks, and the ordinal
/// regression baseline.
///
/// Scope: dense tableau, Dantzig pricing with automatic fallback to Bland's
/// rule under degeneracy (guaranteeing termination), arbitrary variable
/// bounds compiled to standard form. Designed for the moderate LP sizes this
/// system produces (thousands of rows/columns), not for sparse industrial
/// LPs — see DESIGN.md "Substitutions".

#include "lp/model.h"
#include "util/status.h"

namespace rankhow {

struct SimplexOptions {
  /// Hard cap on pivots; 0 picks `20*(rows+cols) + 5000` automatically.
  int max_iterations = 0;
  /// Wall-clock cap in seconds (0 = none); checked every few hundred
  /// pivots. Exceeding it returns kResourceExhausted.
  double deadline_seconds = 0;
  /// Entries smaller than this are treated as zero when pivoting.
  double pivot_tol = 1e-9;
  /// Reduced-cost optimality tolerance.
  double cost_tol = 1e-9;
  /// Phase-1 objective above this value declares infeasibility.
  double phase1_tol = 1e-7;
  /// Consecutive non-improving pivots before switching to Bland's rule.
  int degenerate_limit = 128;
  /// Anti-degeneracy: relax every inequality row by a deterministic jitter
  /// of about this relative magnitude (0 disables). Relaxation only ever
  /// ENLARGES the feasible region, so infeasibility verdicts stay exact and
  /// minimization objectives remain valid lower bounds; returned points can
  /// violate original rows by at most this amount (far below the post-solve
  /// check tolerance).
  double degeneracy_jitter = 1e-9;
};

/// Solves LpModels. Stateless and reusable; safe to share across solves.
///
/// Error codes: kInfeasible, kUnbounded, kResourceExhausted (iteration cap),
/// kInvalidArgument (malformed model).
class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = SimplexOptions())
      : options_(options) {}

  Result<LpSolution> Solve(const LpModel& model) const;

  /// Convenience: feasibility check only (zero objective). Returns a feasible
  /// point, kInfeasible, or another error.
  Result<std::vector<double>> FindFeasiblePoint(const LpModel& model) const;

 private:
  SimplexOptions options_;
};

}  // namespace rankhow

#endif  // RANKHOW_LP_SIMPLEX_H_
