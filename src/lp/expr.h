#ifndef RANKHOW_LP_EXPR_H_
#define RANKHOW_LP_EXPR_H_

/// \file expr.h
/// Symbolic linear expressions over model variables. Model-building code
/// (Equation (2) of the paper, weight predicates P, ordinal-regression
/// programs) composes these with natural operator syntax and hands them to
/// LpModel / MilpModel.

#include <string>
#include <vector>

namespace rankhow {

/// Sparse linear expression  Σ coeffᵢ·xᵢ + constant.
///
/// Terms are kept sorted by variable id with duplicates merged, so
/// expressions built in any order compare and print deterministically.
class LinearExpr {
 public:
  LinearExpr() = default;
  /// Constant expression.
  explicit LinearExpr(double constant) : constant_(constant) {}

  /// The expression `coeff * x_var`.
  static LinearExpr Term(int var, double coeff);

  LinearExpr& AddTerm(int var, double coeff);
  LinearExpr& AddConstant(double value) {
    constant_ += value;
    return *this;
  }

  LinearExpr operator+(const LinearExpr& other) const;
  LinearExpr operator-(const LinearExpr& other) const;
  LinearExpr operator*(double scale) const;
  LinearExpr& operator+=(const LinearExpr& other);
  LinearExpr& operator-=(const LinearExpr& other);

  double constant() const { return constant_; }
  const std::vector<std::pair<int, double>>& terms() const { return terms_; }
  bool empty() const { return terms_.empty(); }

  /// Coefficient of a variable (0 if absent).
  double CoeffOf(int var) const;

  /// Evaluates at a dense assignment (indexed by variable id).
  double Evaluate(const std::vector<double>& values) const;

  /// Human-readable form, e.g. "0.3*x1 - 0.7*x4 + 1".
  std::string ToString() const;

 private:
  // Sorted by variable id, no zero coefficients, no duplicates.
  std::vector<std::pair<int, double>> terms_;
  double constant_ = 0;

  void Merge();
};

/// Constraint sense for rows `expr (op) rhs`.
enum class RelOp { kLe, kGe, kEq };

const char* RelOpToString(RelOp op);

}  // namespace rankhow

#endif  // RANKHOW_LP_EXPR_H_
