#ifndef RANKHOW_LP_INCREMENTAL_H_
#define RANKHOW_LP_INCREMENTAL_H_

/// \file incremental.h
/// Warm-started incremental LP solving. One `IncrementalLp` owns a compiled
/// bounded-variable simplex instance for the lifetime of a branch-and-bound
/// tree (or a SYM-GD cell sweep) and supports the three mutations those
/// searches actually perform between solves:
///
///   * `SetVariableBounds` — indicator fixings / box moves (bound flips),
///   * `AddRow` + `SetRowActive` — lazy row separation with cheap undo
///     (deactivating a row frees its slack instead of shrinking the tableau),
///   * `Solve(warm_basis)` — re-optimization from the previous (or an
///     imported parent) basis.
///
/// Unlike SimplexSolver (lp/simplex.h), which compiles every finite upper
/// bound into an extra row and cold-starts two-phase primal simplex per
/// call, this engine treats variable bounds natively (nonbasic variables sit
/// at either bound) and persists the dense `B⁻¹A` tableau between calls, so
/// a child node whose parent basis became primal-infeasible after a bound
/// flip is repaired by a few *dual* simplex pivots instead of a full
/// Phase-1/Phase-2 restart. SimplexSolver stays as the cold-start fallback
/// and cross-check oracle (see DESIGN.md "Incremental LP architecture").

#include <cstdint>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"
#include "util/status.h"
#include "util/timer.h"

namespace rankhow {

/// A simplex basis snapshot: which column is basic in each row, and which
/// nonbasic columns sit at their upper bound. Exported after a node solve
/// and threaded to the node's children as their warm start. Snapshots stay
/// valid as the instance grows: rows/columns added later simply keep their
/// own (slack-basic / at-bound) state on import.
struct LpBasis {
  std::vector<int> basic;         ///< row -> basic column
  std::vector<uint8_t> at_upper;  ///< per column: nonbasic at upper bound
};

/// Cumulative counters over the life of one IncrementalLp.
struct IncrementalLpStats {
  int64_t solves = 0;
  /// Solves that reused a persisted/imported basis.
  int64_t warm_solves = 0;
  /// Solves from the all-slack basis (first solve + numerical rebuilds).
  int64_t cold_solves = 0;
  int64_t primal_pivots = 0;
  int64_t dual_pivots = 0;
  /// Zero-cost dual pivots restoring primal feasibility on cold starts.
  int64_t repair_pivots = 0;
  /// Pivots spent steering the tableau toward an imported basis.
  int64_t import_pivots = 0;
  /// Nonbasic bound-to-bound moves (cheap: no elimination).
  int64_t bound_flips = 0;
  /// Full tableau rebuilds after a failed post-solve check or to confirm an
  /// infeasibility verdict reached from a warm basis.
  int64_t rebuilds = 0;

  int64_t total_pivots() const {
    return primal_pivots + dual_pivots + repair_pivots + import_pivots;
  }
};

/// A mutable, warm-startable LP instance. Not thread-safe; one instance per
/// search tree.
///
/// Error codes from Solve: kInfeasible, kUnbounded, kResourceExhausted
/// (iteration/deadline caps), kNumerical (post-solve check failed even
/// after a rebuild — callers should fall back to SimplexSolver).
class IncrementalLp {
 public:
  /// Compiles `base`: its variables (with bounds), rows, and objective.
  /// Row ids returned by AddRow continue the base row numbering.
  explicit IncrementalLp(const LpModel& base,
                         SimplexOptions options = SimplexOptions());

  int num_variables() const { return num_structural_; }
  int num_rows() const { return static_cast<int>(rows_.size()); }

  /// Replaces the bounds of a base-model variable. Cheap: the factorized
  /// state is kept; the next Solve repairs primal feasibility dually.
  void SetVariableBounds(int var, double lower, double upper);
  double variable_lower(int var) const { return lower_[var]; }
  double variable_upper(int var) const { return upper_[var]; }

  /// Appends a row (active). Returns its id. The expression's constant is
  /// folded into the rhs. The tableau grows by one row + one slack column;
  /// the current basis is extended with the new slack, so a subsequent warm
  /// Solve repairs the (possibly violated) new row dually.
  int AddRow(const LinearExpr& expr, RelOp op, double rhs);

  /// Enables/disables a row without touching the tableau shape: a disabled
  /// row's slack becomes free, which is equivalent to deleting the row.
  void SetRowActive(int row, bool active);
  bool row_active(int row) const { return rows_[row].active; }

  /// Re-optimizes from the persisted state. `warm` (optional) steers the
  /// basis toward a snapshot exported from a related solve first; pass
  /// nullptr to reuse the current basis. `deadline_seconds` <= 0 means no
  /// deadline (the options' own deadline, if any, still applies per call).
  Result<LpSolution> Solve(const LpBasis* warm = nullptr,
                           double deadline_seconds = 0);

  /// Snapshot of the current basis (after a successful Solve).
  LpBasis ExportBasis() const;

  /// When true (default), an infeasibility verdict reached from a warm
  /// tableau is re-confirmed on a freshly rebuilt one before being returned,
  /// so accumulated elimination error cannot prune a feasible subproblem.
  void set_verify_infeasible(bool v) { verify_infeasible_ = v; }

  const IncrementalLpStats& stats() const { return stats_; }

 private:
  enum ColStatus : int8_t { kAtLower, kAtUpper, kBasic, kFreeAtZero };

  struct RowData {
    std::vector<std::pair<int, double>> terms;  // structural columns only
    RelOp op = RelOp::kLe;
    double rhs = 0.0;  // jittered, constant folded
    bool active = true;
  };

  double Value(int col) const;
  void SlackBounds(const RowData& row, double* lo, double* up) const;
  void ApplyColumnBoundsStatus(int col);
  /// Builds the tableau from the original row data with the all-slack basis.
  void Factorize();
  /// Gauss–Jordan pivot on (row, col): tableau, rhs column, reduced costs.
  void PivotTab(int row, int col);
  /// Nonbasic placement for a column leaving the basis (finite bound
  /// preferred; honors an at-upper hint when given).
  void PlaceLeavingColumn(int col, bool prefer_upper);
  /// Recomputes basic values / reduced costs from the tableau (cheap:
  /// O(rows·cols); removes drift accumulated by bound edits between solves).
  void RefreshBeta();
  void RefreshCosts();
  bool PrimalFeasible() const;
  bool DualFeasible() const;
  void ImportBasis(const LpBasis& basis, int* iterations);
  Status RunPrimal(const Deadline& deadline, int* iterations);
  /// `repair_mode`: treat all costs as zero (pure feasibility restoration).
  Status RunDual(const Deadline& deadline, int* iterations, bool repair_mode);
  Status OptimizeFromCurrentBasis(const Deadline& deadline, int* iterations);
  /// Checks the solution against original rows/bounds (magnitude-aware).
  bool SolutionConsistent(const std::vector<double>& values) const;

  SimplexOptions options_;
  bool verify_infeasible_ = true;

  int num_structural_ = 0;
  LinearExpr objective_;          // original, for reporting
  std::vector<double> cost_;      // minimization costs, structural columns
  std::vector<double> lower_, upper_;  // per column (structural + slack)
  std::vector<RowData> rows_;

  // Factorized state (valid once factorized_ is set).
  bool factorized_ = false;
  std::vector<std::vector<double>> tab_;  // rows × columns, B⁻¹A
  std::vector<double> rhs0_;              // B⁻¹b
  std::vector<int> basic_;                // row -> column
  std::vector<int8_t> status_;            // per column
  std::vector<double> beta_;              // basic variable values
  std::vector<double> d_;                 // reduced costs
  /// Pivots since the last clean factorization — the drift proxy gating
  /// whether an infeasibility verdict needs re-confirmation on a rebuild.
  int64_t pivots_since_factorize_ = 0;

  IncrementalLpStats stats_;
};

}  // namespace rankhow

#endif  // RANKHOW_LP_INCREMENTAL_H_
