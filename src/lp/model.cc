#include "lp/model.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace rankhow {

int LpModel::AddVariable(double lower, double upper, std::string name) {
  RH_CHECK(lower <= upper) << "variable with empty domain: " << name;
  variables_.push_back(LpVariable{lower, upper, std::move(name)});
  return static_cast<int>(variables_.size()) - 1;
}

int LpModel::AddConstraint(LinearExpr expr, RelOp op, double rhs,
                           std::string name) {
  for (const auto& [var, coeff] : expr.terms()) {
    (void)coeff;
    RH_CHECK(var >= 0 && var < num_variables())
        << "constraint references unknown variable x" << var;
  }
  constraints_.push_back(LpConstraint{std::move(expr), op, rhs,
                                      std::move(name)});
  return static_cast<int>(constraints_.size()) - 1;
}

bool LpModel::IsFeasible(const std::vector<double>& x, double tol) const {
  if (static_cast<int>(x.size()) != num_variables()) return false;
  for (int i = 0; i < num_variables(); ++i) {
    if (x[i] < variables_[i].lower - tol || x[i] > variables_[i].upper + tol) {
      return false;
    }
  }
  for (const auto& c : constraints_) {
    // Evaluate() includes the expression constant; the row means
    // expr(x) op rhs with that constant on the left.
    double lhs = c.expr.Evaluate(x);
    double rhs = c.rhs;
    switch (c.op) {
      case RelOp::kLe:
        if (lhs > rhs + tol) return false;
        break;
      case RelOp::kGe:
        if (lhs < rhs - tol) return false;
        break;
      case RelOp::kEq:
        if (std::abs(lhs - rhs) > tol) return false;
        break;
    }
  }
  return true;
}

std::string LpModel::ToString() const {
  std::string out = sense_ == ObjectiveSense::kMinimize ? "min " : "max ";
  out += objective_.ToString() + "\ns.t.\n";
  for (const auto& c : constraints_) {
    out += "  " + c.expr.ToString() + " " + RelOpToString(c.op) + " " +
           FormatDouble(c.rhs);
    if (!c.name.empty()) out += "   [" + c.name + "]";
    out += "\n";
  }
  for (int i = 0; i < num_variables(); ++i) {
    const auto& v = variables_[i];
    out += StrFormat("  %s <= x%d <= %s", FormatDouble(v.lower).c_str(), i,
                     FormatDouble(v.upper).c_str());
    if (!v.name.empty()) out += "   [" + v.name + "]";
    out += "\n";
  }
  return out;
}

}  // namespace rankhow
