#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.h"
#include "util/timer.h"

namespace rankhow {

namespace {

/// How an original model variable maps into standard-form columns.
struct VarMap {
  enum Kind {
    kShifted,   // x = lower + x'        (finite lower bound)
    kNegated,   // x = upper − x'        (lower = −inf, finite upper)
    kSplit,     // x = x'₊ − x'₋          (free)
  } kind = kShifted;
  int col = -1;       // primary standard-form column
  int col_neg = -1;   // second column for kSplit
  double shift = 0;   // lower (kShifted) or upper (kNegated)
};

/// Dense standard-form tableau with two objective rows (phase 1 and 2).
class Tableau {
 public:
  Tableau(int rows, int cols)
      : rows_(rows),
        cols_(cols),
        data_(static_cast<size_t>(rows + 2) * (cols + 1), 0.0),
        basis_(rows, -1),
        active_(rows, true) {}

  double& At(int r, int c) {
    return data_[static_cast<size_t>(r) * (cols_ + 1) + c];
  }
  double At(int r, int c) const {
    return data_[static_cast<size_t>(r) * (cols_ + 1) + c];
  }
  double& Rhs(int r) { return At(r, cols_); }
  double Rhs(int r) const { return At(r, cols_); }
  // Objective rows: phase-2 at rows_, phase-1 at rows_+1.
  int Phase2Row() const { return rows_; }
  int Phase1Row() const { return rows_ + 1; }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int& BasisVar(int r) { return basis_[r]; }
  bool IsActive(int r) const { return active_[r]; }
  void Deactivate(int r) {
    active_[r] = false;
    for (int c = 0; c <= cols_; ++c) At(r, c) = 0.0;
    basis_[r] = -1;
  }

  /// Gauss–Jordan pivot on (row, col), updating both objective rows.
  /// `drop_tol`: rows whose pivot-column factor is at most this magnitude
  /// are not eliminated at all — the entry is zeroed directly, trading a
  /// sub-tolerance perturbation (already treated as zero by every
  /// pricing/ratio test) for skipping an O(cols) row update.
  void Pivot(int row, int col, double drop_tol = 0.0) {
    double* prow = RowPtr(row);
    double inv = 1.0 / prow[col];
    for (int c = 0; c <= cols_; ++c) prow[c] *= inv;
    prow[col] = 1.0;  // exact
    for (int r = 0; r < rows_ + 2; ++r) {
      if (r == row || !RowRelevant(r)) continue;
      double* rrow = RowPtr(r);
      double factor = rrow[col];
      if (factor == 0.0) continue;
      if (std::abs(factor) <= drop_tol) {
        rrow[col] = 0.0;
        continue;
      }
      for (int c = 0; c <= cols_; ++c) rrow[c] -= factor * prow[c];
      rrow[col] = 0.0;  // exact
    }
    basis_[row] = col;
  }

 private:
  bool RowRelevant(int r) const {
    return r >= rows_ || active_[r];
  }
  double* RowPtr(int r) {
    return data_.data() + static_cast<size_t>(r) * (cols_ + 1);
  }

  int rows_;
  int cols_;
  std::vector<double> data_;
  std::vector<int> basis_;
  std::vector<bool> active_;
};

struct StandardForm {
  Tableau tableau;
  std::vector<VarMap> var_map;
  int num_structural = 0;   // standard-form structural columns
  int first_artificial = 0; // columns >= this are artificial
  double objective_shift = 0;
  bool maximize = false;
};

}  // namespace

namespace {

Result<StandardForm> BuildStandardForm(const LpModel& model,
                                       const SimplexOptions& options) {
  const int n_vars = model.num_variables();

  // 1. Map variables to non-negative standard-form columns.
  std::vector<VarMap> var_map(n_vars);
  int next_col = 0;
  int extra_upper_rows = 0;
  for (int j = 0; j < n_vars; ++j) {
    const LpVariable& v = model.variable(j);
    if (std::isinf(v.lower) && std::isinf(v.upper)) {
      var_map[j] = {VarMap::kSplit, next_col, next_col + 1, 0.0};
      next_col += 2;
    } else if (std::isinf(v.lower)) {
      var_map[j] = {VarMap::kNegated, next_col, -1, v.upper};
      next_col += 1;
    } else {
      var_map[j] = {VarMap::kShifted, next_col, -1, v.lower};
      next_col += 1;
      if (!std::isinf(v.upper) && v.upper > v.lower) ++extra_upper_rows;
      if (!std::isinf(v.upper) && v.upper == v.lower) {
        // Fixed variable: column bounded by an equality row below.
        ++extra_upper_rows;
      }
    }
  }
  const int num_structural = next_col;

  // 2. Collect rows: model constraints + upper-bound rows.
  struct Row {
    std::vector<std::pair<int, double>> terms;  // (standard col, coeff)
    RelOp op;
    double rhs;
  };
  std::vector<Row> rows;
  rows.reserve(model.num_constraints() + extra_upper_rows);

  auto substitute = [&](const LinearExpr& expr, RelOp op,
                        double rhs_in) -> Row {
    Row row;
    row.op = op;
    double rhs = rhs_in - expr.constant();
    for (const auto& [var, coeff] : expr.terms()) {
      const VarMap& vm = var_map[var];
      switch (vm.kind) {
        case VarMap::kShifted:
          row.terms.emplace_back(vm.col, coeff);
          rhs -= coeff * vm.shift;
          break;
        case VarMap::kNegated:
          row.terms.emplace_back(vm.col, -coeff);
          rhs -= coeff * vm.shift;
          break;
        case VarMap::kSplit:
          row.terms.emplace_back(vm.col, coeff);
          row.terms.emplace_back(vm.col_neg, -coeff);
          break;
      }
    }
    row.rhs = rhs;
    return row;
  };

  for (int i = 0; i < model.num_constraints(); ++i) {
    const LpConstraint& c = model.constraint(i);
    rows.push_back(substitute(c.expr, c.op, c.rhs));
  }
  for (int j = 0; j < n_vars; ++j) {
    const LpVariable& v = model.variable(j);
    const VarMap& vm = var_map[j];
    if (vm.kind == VarMap::kShifted && !std::isinf(v.upper)) {
      if (v.upper > v.lower) {
        rows.push_back(Row{{{vm.col, 1.0}}, RelOp::kLe, v.upper - v.lower});
      } else {
        rows.push_back(Row{{{vm.col, 1.0}}, RelOp::kEq, 0.0});
      }
    }
  }

  // 2b. Anti-degeneracy jitter: relax every inequality by a tiny
  // deterministic, row-dependent amount. Ties in the ratio test are what
  // make Bland-mode stalls long; distinct right-hand sides break them.
  // Relaxation only enlarges the feasible set (see SimplexOptions).
  if (options.degeneracy_jitter > 0) {
    for (size_t i = 0; i < rows.size(); ++i) {
      double phi = 0.5 + 0.5 * std::fmod(0.6180339887498949 * (i + 1), 1.0);
      // Absolute magnitude on purpose: callers like the OPT builder encode
      // semantic thresholds (ε₁ − ε) that an rhs-proportional perturbation
      // could swamp on large-magnitude rows.
      double jit = options.degeneracy_jitter * phi;
      if (rows[i].op == RelOp::kLe) {
        rows[i].rhs += jit;
      } else if (rows[i].op == RelOp::kGe) {
        rows[i].rhs -= jit;
      }
    }
  }

  // 3. Normalize rhs >= 0 and count slack/artificial columns.
  int num_slack = 0;
  int num_artificial = 0;
  for (auto& row : rows) {
    if (row.rhs < 0) {
      row.rhs = -row.rhs;
      for (auto& [col, coeff] : row.terms) coeff = -coeff;
      if (row.op == RelOp::kLe) {
        row.op = RelOp::kGe;
      } else if (row.op == RelOp::kGe) {
        row.op = RelOp::kLe;
      }
    }
    if (row.op != RelOp::kEq) ++num_slack;
    if (row.op != RelOp::kLe) ++num_artificial;
  }

  const int m = static_cast<int>(rows.size());
  const int total_cols = num_structural + num_slack + num_artificial;
  StandardForm sf{Tableau(m, total_cols), std::move(var_map),
                  num_structural, num_structural + num_slack, 0.0,
                  model.sense() == ObjectiveSense::kMaximize};

  // 4. Fill the tableau.
  int slack_col = num_structural;
  int art_col = num_structural + num_slack;
  Tableau& tab = sf.tableau;
  for (int i = 0; i < m; ++i) {
    for (const auto& [col, coeff] : rows[i].terms) tab.At(i, col) += coeff;
    tab.Rhs(i) = rows[i].rhs;
    switch (rows[i].op) {
      case RelOp::kLe:
        tab.At(i, slack_col) = 1.0;
        tab.BasisVar(i) = slack_col++;
        break;
      case RelOp::kGe:
        tab.At(i, slack_col) = -1.0;
        ++slack_col;
        tab.At(i, art_col) = 1.0;
        tab.BasisVar(i) = art_col++;
        break;
      case RelOp::kEq:
        tab.At(i, art_col) = 1.0;
        tab.BasisVar(i) = art_col++;
        break;
    }
  }

  // 5. Phase-2 objective row (minimization of the standard-form objective).
  const LinearExpr& obj = model.objective();
  double sign = sf.maximize ? -1.0 : 1.0;
  sf.objective_shift = sign * obj.constant();
  for (const auto& [var, coeff] : obj.terms()) {
    const VarMap& vm = sf.var_map[var];
    double c = sign * coeff;
    switch (vm.kind) {
      case VarMap::kShifted:
        tab.At(tab.Phase2Row(), vm.col) += c;
        sf.objective_shift += c * vm.shift;
        break;
      case VarMap::kNegated:
        tab.At(tab.Phase2Row(), vm.col) -= c;
        sf.objective_shift += c * vm.shift;
        break;
      case VarMap::kSplit:
        tab.At(tab.Phase2Row(), vm.col) += c;
        tab.At(tab.Phase2Row(), vm.col_neg) -= c;
        break;
    }
  }

  // 6. Phase-1 objective: minimize the sum of artificials, priced out for
  // the initial basis (subtract every row whose basic variable is
  // artificial).
  for (int c = sf.first_artificial; c < total_cols; ++c) {
    tab.At(tab.Phase1Row(), c) = 1.0;
  }
  for (int i = 0; i < m; ++i) {
    if (tab.BasisVar(i) >= sf.first_artificial) {
      for (int c = 0; c <= total_cols; ++c) {
        tab.At(tab.Phase1Row(), c) -= tab.At(i, c);
      }
    }
  }
  return sf;
}

/// Runs the simplex loop on the given objective row. Returns kOk/kUnbounded/
/// kResourceExhausted; optimality is reached when no reduced cost is
/// sufficiently negative.
Status RunSimplex(Tableau& tab, int obj_row, int usable_cols,
                  const SimplexOptions& opt, int* iterations,
                  const Deadline& deadline) {
  int max_iter = opt.max_iterations > 0
                     ? opt.max_iterations
                     : 20 * (tab.rows() + tab.cols()) + 5000;
  bool bland = false;
  int stalled = 0;
  double last_obj = tab.Rhs(obj_row);

  while (true) {
    if (*iterations >= max_iter) {
      return Status::ResourceExhausted("simplex iteration limit");
    }
    // Checked every pivot: a pivot costs O(rows·cols) floating-point work
    // (hundreds of milliseconds on the biggest tableaus), so a clock read is
    // free by comparison, and any coarser granularity blows time budgets on
    // exactly the instances where budgets matter.
    if (deadline.Expired()) {
      return Status::ResourceExhausted("simplex deadline");
    }
    // Pricing.
    int enter = -1;
    double best = -opt.cost_tol;
    for (int c = 0; c < usable_cols; ++c) {
      double rc = tab.At(obj_row, c);
      if (rc < -opt.cost_tol) {
        if (bland) {
          enter = c;
          break;
        }
        if (rc < best) {
          best = rc;
          enter = c;
        }
      }
    }
    if (enter < 0) return Status::OK();  // optimal

    // Ratio test.
    int leave = -1;
    double best_ratio = 0;
    for (int r = 0; r < tab.rows(); ++r) {
      if (!tab.IsActive(r)) continue;
      double a = tab.At(r, enter);
      if (a <= opt.pivot_tol) continue;
      double ratio = tab.Rhs(r) / a;
      if (leave < 0 || ratio < best_ratio - 1e-12 ||
          (std::abs(ratio - best_ratio) <= 1e-12 && bland &&
           tab.BasisVar(r) < tab.BasisVar(leave))) {
        leave = r;
        best_ratio = ratio;
      }
    }
    if (leave < 0) return Status::Unbounded("LP objective unbounded");

    tab.Pivot(leave, enter, opt.pivot_tol);
    ++*iterations;

    // Invariant: Rhs(obj_row) == -z, so minimizing z drives the corner up.
    double obj = tab.Rhs(obj_row);
    if (obj > last_obj + 1e-12) {
      stalled = 0;
      last_obj = obj;
    } else if (++stalled >= opt.degenerate_limit && !bland) {
      bland = true;  // anti-cycling
    }
  }
}

}  // namespace

Result<LpSolution> SimplexSolver::Solve(const LpModel& model) const {
  if (model.num_variables() == 0) {
    // Degenerate but legal: constant objective, no variables.
    for (int i = 0; i < model.num_constraints(); ++i) {
      const LpConstraint& c = model.constraint(i);
      double lhs = c.expr.constant();
      bool ok = (c.op == RelOp::kLe && lhs <= c.rhs + 1e-12) ||
                (c.op == RelOp::kGe && lhs >= c.rhs - 1e-12) ||
                (c.op == RelOp::kEq && std::abs(lhs - c.rhs) <= 1e-12);
      if (!ok) return Status::Infeasible("constant constraint violated");
    }
    return LpSolution{{}, model.objective().constant(), 0};
  }

  // One deadline across standard-form construction and both phases.
  Deadline deadline(options_.deadline_seconds);
  RH_ASSIGN_OR_RETURN(StandardForm sf, BuildStandardForm(model, options_));
  Tableau& tab = sf.tableau;
  int iterations = 0;

  // Phase 1 (only when artificials exist).
  if (sf.first_artificial < tab.cols()) {
    // Objective row invariant: Rhs(obj) == -objective value.
    RH_RETURN_NOT_OK(RunSimplex(tab, tab.Phase1Row(), tab.cols(), options_,
                                &iterations, deadline));
    double phase1_obj = -tab.Rhs(tab.Phase1Row());
    if (phase1_obj > options_.phase1_tol) {
      return Status::Infeasible("phase-1 optimum > 0");
    }
    // Drive remaining artificials out of the basis.
    for (int r = 0; r < tab.rows(); ++r) {
      if (!tab.IsActive(r) || tab.BasisVar(r) < sf.first_artificial) continue;
      int pivot_col = -1;
      for (int c = 0; c < sf.first_artificial; ++c) {
        if (std::abs(tab.At(r, c)) > options_.pivot_tol) {
          pivot_col = c;
          break;
        }
      }
      if (pivot_col >= 0) {
        tab.Pivot(r, pivot_col, options_.pivot_tol);
        ++iterations;
      } else {
        tab.Deactivate(r);  // redundant row
      }
    }
  }

  // Phase 2: optimize the real objective over structural + slack columns.
  RH_RETURN_NOT_OK(RunSimplex(tab, tab.Phase2Row(), sf.first_artificial,
                              options_, &iterations, deadline));

  // Recover standard-form variable values.
  std::vector<double> std_values(tab.cols(), 0.0);
  for (int r = 0; r < tab.rows(); ++r) {
    if (tab.IsActive(r) && tab.BasisVar(r) >= 0) {
      std_values[tab.BasisVar(r)] = tab.Rhs(r);
    }
  }
  // Map back to model variables.
  LpSolution solution;
  solution.values.resize(model.num_variables());
  for (int j = 0; j < model.num_variables(); ++j) {
    const VarMap& vm = sf.var_map[j];
    switch (vm.kind) {
      case VarMap::kShifted:
        solution.values[j] = vm.shift + std_values[vm.col];
        break;
      case VarMap::kNegated:
        solution.values[j] = vm.shift - std_values[vm.col];
        break;
      case VarMap::kSplit:
        solution.values[j] = std_values[vm.col] - std_values[vm.col_neg];
        break;
    }
  }
  // Dense Gauss–Jordan tableaus accumulate elimination error over long
  // degenerate runs; a corrupted "optimal" point would silently poison
  // branch-and-bound pruning. Certify the answer: recompute the objective
  // from the solution itself (not the tableau corner) and check every row
  // at a magnitude-aware tolerance, reporting kNumerical on failure so
  // callers can recover.
  for (int i = 0; i < model.num_constraints(); ++i) {
    const LpConstraint& c = model.constraint(i);
    double lhs = c.expr.Evaluate(solution.values);
    double scale = std::max(1.0, std::abs(c.rhs));
    for (const auto& [var, coeff] : c.expr.terms()) {
      scale = std::max(scale, std::abs(coeff * solution.values[var]));
    }
    double tol = 1e-7 * scale;
    bool ok = true;
    switch (c.op) {
      case RelOp::kLe:
        ok = lhs <= c.rhs + tol;
        break;
      case RelOp::kGe:
        ok = lhs >= c.rhs - tol;
        break;
      case RelOp::kEq:
        ok = std::abs(lhs - c.rhs) <= tol;
        break;
    }
    if (!ok) {
      return Status::Numerical(
          "simplex solution failed the post-solve feasibility check");
    }
  }
  for (int j = 0; j < model.num_variables(); ++j) {
    const LpVariable& v = model.variable(j);
    double span = std::max({1.0, std::abs(v.lower), std::abs(v.upper)});
    if (solution.values[j] < v.lower - 1e-7 * span ||
        solution.values[j] > v.upper + 1e-7 * span) {
      return Status::Numerical(
          "simplex solution failed the post-solve bounds check");
    }
  }
  solution.objective = model.objective().Evaluate(solution.values);
  solution.iterations = iterations;
  return solution;
}

Result<std::vector<double>> SimplexSolver::FindFeasiblePoint(
    const LpModel& model) const {
  LpModel copy = model;
  copy.SetObjective(LinearExpr(), ObjectiveSense::kMinimize);
  RH_ASSIGN_OR_RETURN(LpSolution sol, Solve(copy));
  return std::move(sol.values);
}

}  // namespace rankhow
