#include "lp/incremental.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace rankhow {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Primal feasibility tolerance, magnitude-aware: tableau elimination noise
/// scales with the data, so comparing against bounds needs the same scale.
inline double FeasTol(double bound) {
  return 1e-9 * std::max(1.0, std::abs(bound));
}

inline bool Finite(double v) { return std::isfinite(v); }

}  // namespace

IncrementalLp::IncrementalLp(const LpModel& base, SimplexOptions options)
    : options_(options) {
  num_structural_ = base.num_variables();
  lower_.reserve(num_structural_);
  upper_.reserve(num_structural_);
  for (int j = 0; j < num_structural_; ++j) {
    lower_.push_back(base.variable(j).lower);
    upper_.push_back(base.variable(j).upper);
  }
  status_.assign(num_structural_, kAtLower);
  objective_ = base.objective();
  cost_.assign(num_structural_, 0.0);
  const double sign =
      base.sense() == ObjectiveSense::kMaximize ? -1.0 : 1.0;
  for (const auto& [var, coeff] : objective_.terms()) {
    cost_[var] += sign * coeff;
  }
  rows_.reserve(base.num_constraints());
  for (int i = 0; i < base.num_constraints(); ++i) {
    const LpConstraint& c = base.constraint(i);
    AddRow(c.expr, c.op, c.rhs);
  }
}

double IncrementalLp::Value(int col) const {
  switch (static_cast<ColStatus>(status_[col])) {
    case kAtLower:
      return lower_[col];
    case kAtUpper:
      return upper_[col];
    case kFreeAtZero:
      return 0.0;
    case kBasic:
      break;
  }
  RH_CHECK(false) << "Value() called on a basic column";
  return 0.0;
}

void IncrementalLp::SlackBounds(const RowData& row, double* lo,
                                double* up) const {
  if (!row.active) {
    *lo = -kInf;
    *up = kInf;
    return;
  }
  switch (row.op) {
    case RelOp::kLe:
      *lo = 0.0;
      *up = kInf;
      break;
    case RelOp::kGe:
      *lo = -kInf;
      *up = 0.0;
      break;
    case RelOp::kEq:
      *lo = 0.0;
      *up = 0.0;
      break;
  }
}

void IncrementalLp::ApplyColumnBoundsStatus(int col) {
  // Re-places a nonbasic column after its bounds changed, preserving value
  // continuity (a binary un-fixed from [1,1] back to [0,1] stays at 1).
  double prev;
  switch (static_cast<ColStatus>(status_[col])) {
    case kAtLower:
      prev = lower_[col];
      break;
    case kAtUpper:
      prev = upper_[col];
      break;
    default:
      prev = 0.0;
      break;
  }
  const bool lf = Finite(lower_[col]);
  const bool uf = Finite(upper_[col]);
  if (lf && uf) {
    status_[col] = std::abs(prev - upper_[col]) < std::abs(prev - lower_[col])
                       ? kAtUpper
                       : kAtLower;
  } else if (lf) {
    status_[col] = kAtLower;
  } else if (uf) {
    status_[col] = kAtUpper;
  } else {
    status_[col] = kFreeAtZero;
  }
}

void IncrementalLp::SetVariableBounds(int var, double lower, double upper) {
  RH_CHECK(var >= 0 && var < num_structural_);
  // The nonbasic re-placement reads the *old* status against the *new*
  // bounds, which is exactly the continuity we want; a basic column needs
  // nothing (the next Solve repairs any bound violation dually).
  lower_[var] = lower;
  upper_[var] = upper;
  if (factorized_ && status_[var] != kBasic) ApplyColumnBoundsStatus(var);
}

int IncrementalLp::AddRow(const LinearExpr& expr, RelOp op, double rhs) {
  const int id = static_cast<int>(rows_.size());
  RowData rd;
  rd.op = op;
  rd.rhs = rhs - expr.constant();
  rd.terms.reserve(expr.terms().size());
  for (const auto& [var, coeff] : expr.terms()) {
    RH_CHECK(var >= 0 && var < num_structural_)
        << "AddRow may only reference base-model variables";
    rd.terms.emplace_back(var, coeff);
  }
  // Same anti-degeneracy relaxation as SimplexSolver (see SimplexOptions):
  // inequality ties in the ratio test are broken by a deterministic,
  // row-dependent jitter that only ever enlarges the feasible region.
  if (options_.degeneracy_jitter > 0 && op != RelOp::kEq) {
    double phi = 0.5 + 0.5 * std::fmod(0.6180339887498949 * (id + 1), 1.0);
    double jit = options_.degeneracy_jitter * phi;
    rd.rhs += op == RelOp::kLe ? jit : -jit;
  }
  rows_.push_back(std::move(rd));
  const RowData& row = rows_.back();
  double slo, sup;
  SlackBounds(row, &slo, &sup);
  lower_.push_back(slo);
  upper_.push_back(sup);
  status_.push_back(kBasic);

  if (!factorized_) return id;

  // Extend the factorized state: one slack column everywhere, then the new
  // row with the current basic variables eliminated (each basic column is a
  // unit vector, so a single subtraction pass per row suffices). The slack
  // becomes basic, keeping the basis dual-feasible; the (possibly violated)
  // new row is repaired by the next Solve's dual pass.
  const int m_old = static_cast<int>(tab_.size());
  const int ncols = num_structural_ + static_cast<int>(rows_.size());
  for (auto& trow : tab_) trow.push_back(0.0);
  d_.push_back(0.0);
  std::vector<double> nr(ncols, 0.0);
  for (const auto& [var, coeff] : row.terms) nr[var] += coeff;
  nr[ncols - 1] = 1.0;
  double nrhs = row.rhs;
  for (int i = 0; i < m_old; ++i) {
    const double f = nr[basic_[i]];
    if (f == 0.0) continue;
    const std::vector<double>& pr = tab_[i];
    for (int c = 0; c < ncols; ++c) nr[c] -= f * pr[c];
    nr[basic_[i]] = 0.0;  // exact
    nrhs -= f * rhs0_[i];
  }
  tab_.push_back(std::move(nr));
  rhs0_.push_back(nrhs);
  basic_.push_back(ncols - 1);
  beta_.push_back(0.0);  // recomputed at the next Solve
  return id;
}

void IncrementalLp::SetRowActive(int row, bool active) {
  RH_CHECK(row >= 0 && row < static_cast<int>(rows_.size()));
  if (rows_[row].active == active) return;
  rows_[row].active = active;
  const int scol = num_structural_ + row;
  SlackBounds(rows_[row], &lower_[scol], &upper_[scol]);
  if (factorized_ && status_[scol] != kBasic) ApplyColumnBoundsStatus(scol);
}

void IncrementalLp::Factorize() {
  const int m = static_cast<int>(rows_.size());
  const int ncols = num_structural_ + m;
  tab_.assign(m, std::vector<double>(ncols, 0.0));
  rhs0_.assign(m, 0.0);
  basic_.assign(m, -1);
  beta_.assign(m, 0.0);
  d_.assign(ncols, 0.0);
  for (int i = 0; i < m; ++i) {
    for (const auto& [var, coeff] : rows_[i].terms) tab_[i][var] += coeff;
    tab_[i][num_structural_ + i] = 1.0;
    rhs0_[i] = rows_[i].rhs;
    basic_[i] = num_structural_ + i;
    status_[num_structural_ + i] = kBasic;
  }
  for (int j = 0; j < num_structural_; ++j) {
    status_[j] = kAtLower;  // placeholder; re-placed against the bounds
    ApplyColumnBoundsStatus(j);
  }
  factorized_ = true;
  pivots_since_factorize_ = 0;
}

void IncrementalLp::PivotTab(int row, int col) {
  const int ncols = static_cast<int>(d_.size());
  std::vector<double>& pr = tab_[row];
  const double inv = 1.0 / pr[col];
  for (int c = 0; c < ncols; ++c) pr[c] *= inv;
  pr[col] = 1.0;  // exact
  rhs0_[row] *= inv;
  const double drop = options_.pivot_tol;
  const int m = static_cast<int>(tab_.size());
  for (int i = 0; i < m; ++i) {
    if (i == row) continue;
    std::vector<double>& tr = tab_[i];
    const double f = tr[col];
    if (std::abs(f) <= drop) {
      tr[col] = 0.0;
      continue;
    }
    for (int c = 0; c < ncols; ++c) tr[c] -= f * pr[c];
    tr[col] = 0.0;  // exact
    rhs0_[i] -= f * rhs0_[row];
  }
  const double fd = d_[col];
  if (std::abs(fd) > 0.0) {
    for (int c = 0; c < ncols; ++c) d_[c] -= fd * pr[c];
  }
  d_[col] = 0.0;  // exact
  ++pivots_since_factorize_;
}

void IncrementalLp::RefreshBeta() {
  const int m = static_cast<int>(tab_.size());
  const int ncols = static_cast<int>(status_.size());
  beta_ = rhs0_;
  for (int j = 0; j < ncols; ++j) {
    if (status_[j] == kBasic) continue;
    const double v = Value(j);
    if (v == 0.0) continue;
    for (int i = 0; i < m; ++i) beta_[i] -= tab_[i][j] * v;
  }
}

void IncrementalLp::RefreshCosts() {
  const int m = static_cast<int>(tab_.size());
  const int ncols = static_cast<int>(status_.size());
  d_.assign(ncols, 0.0);
  for (int j = 0; j < num_structural_; ++j) d_[j] = cost_[j];
  for (int i = 0; i < m; ++i) {
    const double cb = basic_[i] < num_structural_ ? cost_[basic_[i]] : 0.0;
    if (cb == 0.0) continue;
    const std::vector<double>& tr = tab_[i];
    for (int c = 0; c < ncols; ++c) d_[c] -= cb * tr[c];
  }
  for (int i = 0; i < m; ++i) d_[basic_[i]] = 0.0;  // exact
}

void IncrementalLp::PlaceLeavingColumn(int col, bool prefer_upper) {
  if (prefer_upper && Finite(upper_[col])) {
    status_[col] = kAtUpper;
  } else if (Finite(lower_[col])) {
    status_[col] = kAtLower;
  } else if (Finite(upper_[col])) {
    status_[col] = kAtUpper;
  } else {
    status_[col] = kFreeAtZero;
  }
}

bool IncrementalLp::PrimalFeasible() const {
  const int m = static_cast<int>(tab_.size());
  for (int i = 0; i < m; ++i) {
    const int b = basic_[i];
    if (Finite(lower_[b]) && beta_[i] < lower_[b] - FeasTol(lower_[b])) {
      return false;
    }
    if (Finite(upper_[b]) && beta_[i] > upper_[b] + FeasTol(upper_[b])) {
      return false;
    }
  }
  return true;
}

bool IncrementalLp::DualFeasible() const {
  // Deliberately looser than the pricing tolerance: recomputed reduced
  // costs carry O(1e-8) elimination noise on big tableaus, and a sign wrong
  // by that little is cheaper to clean up with ordinary primal pivots than
  // by re-routing the whole solve through flips and repair.
  const double tol = std::max(options_.cost_tol, 1e-7);
  const int ncols = static_cast<int>(status_.size());
  for (int j = 0; j < ncols; ++j) {
    if (status_[j] == kBasic || lower_[j] == upper_[j]) continue;
    const double dj = d_[j];
    switch (static_cast<ColStatus>(status_[j])) {
      case kAtLower:
        if (dj < -tol) return false;
        break;
      case kAtUpper:
        if (dj > tol) return false;
        break;
      case kFreeAtZero:
        if (std::abs(dj) > tol) return false;
        break;
      case kBasic:
        break;
    }
  }
  return true;
}

void IncrementalLp::ImportBasis(const LpBasis& basis, int* iterations) {
  // Best-effort steering toward the snapshot: for every column the snapshot
  // wants basic but the tableau has nonbasic, pivot it in against a row
  // whose current basic variable the snapshot does not want (skipping
  // numerically unsafe pivots). Rows/columns created after the snapshot was
  // exported keep their current state.
  if (basis.basic.empty()) return;
  const int m = static_cast<int>(tab_.size());
  const int ncols = static_cast<int>(status_.size());
  std::vector<char> target(ncols, 0);
  for (size_t i = 0; i < basis.basic.size() && i < static_cast<size_t>(m);
       ++i) {
    const int col = basis.basic[i];
    if (col >= 0 && col < ncols) target[col] = 1;
  }
  for (size_t i = basis.basic.size(); i < static_cast<size_t>(m); ++i) {
    target[basic_[i]] = 1;  // rows added since the snapshot: keep
  }
  std::vector<char> is_basic(ncols, 0);
  for (int i = 0; i < m; ++i) is_basic[basic_[i]] = 1;
  constexpr double kImportPivotTol = 1e-6;
  for (int q = 0; q < ncols; ++q) {
    if (!target[q] || is_basic[q]) continue;
    int best_row = -1;
    double best_abs = kImportPivotTol;
    for (int i = 0; i < m; ++i) {
      if (target[basic_[i]]) continue;
      const double a = std::abs(tab_[i][q]);
      if (a > best_abs) {
        best_abs = a;
        best_row = i;
      }
    }
    if (best_row < 0) continue;  // unreachable without instability: skip
    const int p = basic_[best_row];
    PivotTab(best_row, q);
    basic_[best_row] = q;
    is_basic[q] = 1;
    is_basic[p] = 0;
    status_[q] = kBasic;
    const bool hint_upper =
        p < static_cast<int>(basis.at_upper.size()) && basis.at_upper[p];
    if (hint_upper && Finite(upper_[p])) {
      status_[p] = kAtUpper;
    } else if (Finite(lower_[p])) {
      status_[p] = kAtLower;
    } else if (Finite(upper_[p])) {
      status_[p] = kAtUpper;
    } else {
      status_[p] = kFreeAtZero;
    }
    ++stats_.import_pivots;
    ++*iterations;
  }
  // Nonbasic bound sides from the snapshot (where still meaningful).
  for (int j = 0; j < ncols && j < static_cast<int>(basis.at_upper.size());
       ++j) {
    if (status_[j] == kAtLower && basis.at_upper[j] && Finite(upper_[j])) {
      status_[j] = kAtUpper;
    } else if (status_[j] == kAtUpper && !basis.at_upper[j] &&
               Finite(lower_[j])) {
      status_[j] = kAtLower;
    }
  }
}

LpBasis IncrementalLp::ExportBasis() const {
  LpBasis basis;
  basis.basic = basic_;
  basis.at_upper.assign(status_.size(), 0);
  for (size_t j = 0; j < status_.size(); ++j) {
    basis.at_upper[j] = status_[j] == kAtUpper ? 1 : 0;
  }
  return basis;
}

Status IncrementalLp::RunPrimal(const Deadline& deadline, int* iterations) {
  const int m = static_cast<int>(tab_.size());
  const int ncols = static_cast<int>(status_.size());
  const int max_iter = options_.max_iterations > 0
                           ? options_.max_iterations
                           : 20 * (m + ncols) + 5000;
  bool bland = false;
  int stalled = 0;
  while (true) {
    if (*iterations >= max_iter) {
      return Status::ResourceExhausted("incremental primal iteration limit");
    }
    if (deadline.Expired()) {
      return Status::ResourceExhausted("incremental primal deadline");
    }
    // Pricing: nonbasic columns that can move against their reduced cost.
    int q = -1;
    int dir = 0;
    double best = options_.cost_tol;
    for (int j = 0; j < ncols; ++j) {
      if (status_[j] == kBasic || lower_[j] == upper_[j]) continue;
      const double dj = d_[j];
      int cand_dir = 0;
      if (status_[j] != kAtUpper && dj < -options_.cost_tol) {
        cand_dir = 1;
      } else if (status_[j] != kAtLower && dj > options_.cost_tol) {
        cand_dir = -1;
      } else {
        continue;
      }
      if (bland) {
        q = j;
        dir = cand_dir;
        break;
      }
      if (std::abs(dj) > best) {
        best = std::abs(dj);
        q = j;
        dir = cand_dir;
      }
    }
    if (q < 0) return Status::OK();  // optimal

    // Bounded ratio test: basic variables hitting a bound compete with the
    // entering variable's own bound-to-bound flip.
    double t = kInf;
    if (status_[q] != kFreeAtZero && Finite(lower_[q]) && Finite(upper_[q])) {
      t = upper_[q] - lower_[q];
    }
    int leave = -1;
    bool leave_to_upper = false;
    double leave_abs = 0;
    for (int i = 0; i < m; ++i) {
      const double a = tab_[i][q] * dir;
      const int b = basic_[i];
      double ratio;
      bool to_upper;
      if (a > options_.pivot_tol) {
        if (!Finite(lower_[b])) continue;
        ratio = (beta_[i] - lower_[b]) / a;
        to_upper = false;
      } else if (a < -options_.pivot_tol) {
        if (!Finite(upper_[b])) continue;
        ratio = (upper_[b] - beta_[i]) / (-a);
        to_upper = true;
      } else {
        continue;
      }
      if (ratio < 0) ratio = 0;  // degenerate: clamp tiny negatives
      bool take = false;
      if (ratio < t - 1e-12) {
        take = true;
      } else if (leave >= 0 && ratio <= t + 1e-12) {
        // Tie: Bland mode picks the smallest basic index (anti-cycling);
        // otherwise prefer the larger pivot magnitude for stability.
        take = bland ? basic_[i] < basic_[leave] : std::abs(a) > leave_abs;
      }
      if (take) {
        t = ratio;
        leave = i;
        leave_to_upper = to_upper;
        leave_abs = std::abs(a);
      }
    }
    if (!Finite(t)) return Status::Unbounded("incremental LP unbounded");

    const double delta = dir * t;
    const double dq = d_[q];
    if (leave < 0) {
      // Bound-to-bound flip: no elimination work at all.
      for (int i = 0; i < m; ++i) beta_[i] -= tab_[i][q] * delta;
      status_[q] = dir > 0 ? kAtUpper : kAtLower;
      ++stats_.bound_flips;
    } else {
      const int p = basic_[leave];
      const double entering_value = Value(q) + delta;
      for (int i = 0; i < m; ++i) {
        if (i != leave) beta_[i] -= tab_[i][q] * delta;
      }
      status_[p] = leave_to_upper ? kAtUpper : kAtLower;
      PivotTab(leave, q);
      basic_[leave] = q;
      status_[q] = kBasic;
      beta_[leave] = entering_value;
      ++stats_.primal_pivots;
    }
    ++*iterations;
    const double improvement = -(dq * delta);
    if (improvement > 1e-12) {
      stalled = 0;
    } else if (++stalled >= options_.degenerate_limit && !bland) {
      bland = true;  // anti-cycling
    }
  }
}

Status IncrementalLp::RunDual(const Deadline& deadline, int* iterations,
                              bool repair_mode) {
  const int m = static_cast<int>(tab_.size());
  const int ncols = static_cast<int>(status_.size());
  const int max_iter = options_.max_iterations > 0
                           ? options_.max_iterations
                           : 20 * (m + ncols) + 5000;
  bool bland = false;
  int stalled = 0;
  double last_viol = kInf;
  while (true) {
    if (*iterations >= max_iter) {
      return Status::ResourceExhausted("incremental dual iteration limit");
    }
    if (deadline.Expired()) {
      return Status::ResourceExhausted("incremental dual deadline");
    }
    // Leaving row: a basic variable outside its bounds (most violated, or
    // the smallest row index in Bland mode).
    int r = -1;
    bool below = false;
    double worst = 0;
    double viol_sum = 0;
    for (int i = 0; i < m; ++i) {
      const int b = basic_[i];
      double v = 0;
      bool v_below = false;
      if (Finite(lower_[b]) && beta_[i] < lower_[b] - FeasTol(lower_[b])) {
        v = lower_[b] - beta_[i];
        v_below = true;
      } else if (Finite(upper_[b]) &&
                 beta_[i] > upper_[b] + FeasTol(upper_[b])) {
        v = beta_[i] - upper_[b];
      } else {
        continue;
      }
      viol_sum += v;
      if (r < 0 || (!bland && v > worst)) {
        r = i;
        below = v_below;
        worst = v;
      }
    }
    if (r < 0) return Status::OK();  // primal feasible
    if (viol_sum < last_viol - 1e-15) {
      stalled = 0;
    } else if (++stalled >= options_.degenerate_limit) {
      bland = true;
    }
    last_viol = viol_sum;

    // Entering column via the dual ratio test. The sign condition keeps the
    // leaving variable's post-pivot reduced cost on the right side for the
    // bound it leaves to; in repair mode all costs are treated as zero, so
    // every ratio ties at 0 and Bland's order decides.
    const int p = basic_[r];
    const std::vector<double>& alpha = tab_[r];
    int q = -1;
    double best_ratio = kInf;
    double best_abs = 0;
    for (int j = 0; j < ncols; ++j) {
      if (status_[j] == kBasic || lower_[j] == upper_[j]) continue;
      const double D = alpha[j];
      if (std::abs(D) <= options_.pivot_tol) continue;
      bool eligible;
      if (status_[j] == kFreeAtZero) {
        eligible = true;
      } else if (below) {
        eligible = status_[j] == kAtLower ? D < 0 : D > 0;
      } else {
        eligible = status_[j] == kAtLower ? D > 0 : D < 0;
      }
      if (!eligible) continue;
      const double ratio = repair_mode ? 0.0 : std::abs(d_[j]) / std::abs(D);
      bool take = false;
      if (q < 0 || ratio < best_ratio - 1e-12) {
        take = true;
      } else if (ratio <= best_ratio + 1e-12) {
        take = bland ? j < q : std::abs(D) > best_abs;
      }
      if (take) {
        q = j;
        best_ratio = ratio;
        best_abs = std::abs(D);
      }
    }
    if (q < 0) {
      // Row r proves the bound system inconsistent: no admissible column
      // can move the violated basic variable back into range.
      return Status::Infeasible("incremental dual simplex: no entering column");
    }

    const double target = below ? lower_[p] : upper_[p];
    const double delta = (beta_[r] - target) / alpha[q];
    const double entering_value = Value(q) + delta;
    for (int i = 0; i < m; ++i) {
      if (i != r) beta_[i] -= tab_[i][q] * delta;
    }
    status_[p] = below ? kAtLower : kAtUpper;
    PivotTab(r, q);
    basic_[r] = q;
    status_[q] = kBasic;
    beta_[r] = entering_value;
    if (repair_mode) {
      ++stats_.repair_pivots;
    } else {
      ++stats_.dual_pivots;
    }
    ++*iterations;
  }
}

Status IncrementalLp::OptimizeFromCurrentBasis(const Deadline& deadline,
                                               int* iterations) {
  RefreshBeta();
  RefreshCosts();
  const int m = static_cast<int>(tab_.size());
  const int ncols = static_cast<int>(status_.size());

  // Restore dual feasibility cheaply before choosing an algorithm. Node
  // moves in best-first order un-fix and re-fix many bounds at once, which
  // routinely leaves the inherited basis neither primal- nor dual-feasible;
  // the zero-cost repair fallback is far slower than dual reoptimization,
  // so it pays to manufacture dual feasibility first:
  //  (a) a bounded nonbasic column whose reduced cost has the wrong sign is
  //      flipped to its opposite bound, which flips the sign requirement
  //      (no elimination work at all);
  //  (b) a wrong-signed column with no opposite bound to flip to — an
  //      error variable on [0, ∞), a ≥-row slack, the freed slack of a
  //      deactivated row — is driven into the basis instead: basic columns
  //      carry no sign requirement. Driving can hand the wrong sign to the
  //      leaving column, so the flip/drive pair iterates to a fixpoint
  //      (almost always one pass).
  bool beta_stale = false;
  const double dual_tol = std::max(options_.cost_tol, 1e-7);
  for (int pass = 0; pass < 4 && !DualFeasible(); ++pass) {
    bool changed = false;
    for (int j = 0; j < ncols; ++j) {
      if (status_[j] == kBasic || lower_[j] == upper_[j]) continue;
      const double dj = d_[j];
      bool wrong;
      switch (static_cast<ColStatus>(status_[j])) {
        case kAtLower:
          wrong = dj < -dual_tol;
          break;
        case kAtUpper:
          wrong = dj > dual_tol;
          break;
        default:
          wrong = std::abs(dj) > dual_tol;
          break;
      }
      if (!wrong) continue;
      if (status_[j] == kAtLower && Finite(upper_[j])) {
        status_[j] = kAtUpper;
        ++stats_.bound_flips;
        beta_stale = changed = true;
        continue;
      }
      if (status_[j] == kAtUpper && Finite(lower_[j])) {
        status_[j] = kAtLower;
        ++stats_.bound_flips;
        beta_stale = changed = true;
        continue;
      }
      int best_row = -1;
      double best_abs = 1e-6;
      for (int i = 0; i < m; ++i) {
        const double a = std::abs(tab_[i][j]);
        if (a > best_abs) {
          best_abs = a;
          best_row = i;
        }
      }
      if (best_row < 0) continue;  // numerically empty column: leave it
      const int p = basic_[best_row];
      PivotTab(best_row, j);
      basic_[best_row] = j;
      status_[j] = kBasic;
      PlaceLeavingColumn(p, /*prefer_upper=*/false);
      ++stats_.repair_pivots;
      ++*iterations;
      beta_stale = changed = true;
    }
    if (!changed) break;
  }
  if (beta_stale) RefreshBeta();

  if (!PrimalFeasible()) {
    // With dual feasibility restored above (the common case), this is the
    // dual-simplex resolve that makes warm starts pay; the zero-ratio
    // repair remains only for numerically stubborn leftovers.
    Status st = RunDual(deadline, iterations, !DualFeasible());
    if (!st.ok()) return st;
  }
  return RunPrimal(deadline, iterations);
}

bool IncrementalLp::SolutionConsistent(
    const std::vector<double>& values) const {
  // Same magnitude-aware certification as SimplexSolver: dense Gauss–Jordan
  // tableaus drift, and this instance's tableau lives across an entire
  // search tree, so never report a point that fails the original rows.
  for (const RowData& row : rows_) {
    if (!row.active) continue;
    double lhs = 0;
    double scale = std::max(1.0, std::abs(row.rhs));
    for (const auto& [var, coeff] : row.terms) {
      lhs += coeff * values[var];
      scale = std::max(scale, std::abs(coeff * values[var]));
    }
    const double tol = 1e-7 * scale;
    bool ok = true;
    switch (row.op) {
      case RelOp::kLe:
        ok = lhs <= row.rhs + tol;
        break;
      case RelOp::kGe:
        ok = lhs >= row.rhs - tol;
        break;
      case RelOp::kEq:
        ok = std::abs(lhs - row.rhs) <= tol;
        break;
    }
    if (!ok) return false;
  }
  for (int j = 0; j < num_structural_; ++j) {
    const double span =
        std::max({1.0, std::abs(lower_[j]), std::abs(upper_[j])});
    if (values[j] < lower_[j] - 1e-7 * span ||
        values[j] > upper_[j] + 1e-7 * span) {
      return false;
    }
  }
  return true;
}

Result<LpSolution> IncrementalLp::Solve(const LpBasis* warm,
                                        double deadline_seconds) {
  ++stats_.solves;
  double budget = options_.deadline_seconds;
  if (deadline_seconds > 0) {
    budget = budget > 0 ? std::min(budget, deadline_seconds)
                        : deadline_seconds;
  }
  Deadline deadline(budget);
  int iterations = 0;
  const bool warm_start = factorized_;
  if (!factorized_) {
    Factorize();
  } else if (warm != nullptr) {
    ImportBasis(*warm, &iterations);
  }
  if (warm_start) {
    ++stats_.warm_solves;
  } else {
    ++stats_.cold_solves;
  }

  auto extract = [&](std::vector<double>* values) {
    values->assign(num_structural_, 0.0);
    for (int j = 0; j < num_structural_; ++j) {
      if (status_[j] != kBasic) (*values)[j] = Value(j);
    }
    for (size_t i = 0; i < basic_.size(); ++i) {
      if (basic_[i] < num_structural_) (*values)[basic_[i]] = beta_[i];
    }
  };
  auto rebuild = [&] {
    ++stats_.rebuilds;
    Factorize();
    return OptimizeFromCurrentBasis(deadline, &iterations);
  };

  Status st = OptimizeFromCurrentBasis(deadline, &iterations);
  std::vector<double> values;
  if (st.ok()) {
    extract(&values);
    if (!SolutionConsistent(values)) {
      // Drifted tableau: rebuild from the original rows and re-solve once.
      st = rebuild();
      if (st.ok()) {
        extract(&values);
        if (!SolutionConsistent(values)) {
          return Status::Numerical(
              "incremental LP solution failed the post-solve check after a "
              "rebuild");
        }
      }
    }
  } else if (st.code() == StatusCode::kInfeasible && warm_start &&
             verify_infeasible_ && pivots_since_factorize_ > 0) {
    // An infeasibility verdict reached from warm state is never trusted
    // directly: re-confirm it on a tableau rebuilt from the original rows
    // (equivalent to a fresh engine on the current bounds). A "pivots since
    // factorization" drift proxy used to gate this at 512, but false
    // verdicts were observed well below any such threshold — bound flips
    // and row (de)activations can leave the warm basis in a state whose
    // dual ray is an artifact of dropped tableau entries, and in
    // branch-and-bound a single false prune silently corrupts the "proven"
    // optimum (caught by tests/concurrency/parallel_search_test.cc's
    // cross-strategy equivalence). Feasible verdicts need no such guard:
    // their points are certified against the original rows below.
    st = rebuild();
    if (st.ok()) {
      extract(&values);
      if (!SolutionConsistent(values)) {
        return Status::Numerical(
            "incremental LP solution failed the post-solve check after an "
            "infeasibility re-check");
      }
    }
  }
  if (!st.ok()) return st;
  LpSolution solution;
  solution.values = std::move(values);
  solution.objective = objective_.Evaluate(solution.values);
  solution.iterations = iterations;
  return solution;
}

}  // namespace rankhow
