#ifndef RANKHOW_LP_MODEL_H_
#define RANKHOW_LP_MODEL_H_

/// \file model.h
/// Declarative linear-program container: variables with bounds, linear rows,
/// and a linear objective. Solved by SimplexSolver; extended with binaries
/// and indicator constraints by MilpModel.

#include <limits>
#include <string>
#include <vector>

#include "lp/expr.h"
#include "util/status.h"

namespace rankhow {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// A decision variable with box bounds.
struct LpVariable {
  double lower = 0.0;
  double upper = kInfinity;
  std::string name;
};

/// A linear row `expr (op) rhs` (the expression's constant is folded into
/// the right-hand side at solve time).
struct LpConstraint {
  LinearExpr expr;
  RelOp op = RelOp::kLe;
  double rhs = 0.0;
  std::string name;
};

/// Objective direction.
enum class ObjectiveSense { kMinimize, kMaximize };

/// A linear program.
class LpModel {
 public:
  /// Adds a variable with bounds [lower, upper]; returns its id.
  int AddVariable(double lower, double upper, std::string name = "");

  /// Adds `expr (op) rhs`; returns the row id.
  int AddConstraint(LinearExpr expr, RelOp op, double rhs,
                    std::string name = "");

  void SetObjective(LinearExpr objective,
                    ObjectiveSense sense = ObjectiveSense::kMinimize) {
    objective_ = std::move(objective);
    sense_ = sense;
  }

  int num_variables() const { return static_cast<int>(variables_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }
  const LpVariable& variable(int id) const { return variables_[id]; }
  LpVariable& mutable_variable(int id) { return variables_[id]; }
  const LpConstraint& constraint(int id) const { return constraints_[id]; }
  LpConstraint& mutable_constraint(int id) { return constraints_[id]; }
  const LinearExpr& objective() const { return objective_; }
  ObjectiveSense sense() const { return sense_; }

  /// Checks a point against all rows and bounds within `tol`.
  bool IsFeasible(const std::vector<double>& x, double tol = 1e-7) const;

  /// Multi-line textual rendering for debugging.
  std::string ToString() const;

 private:
  std::vector<LpVariable> variables_;
  std::vector<LpConstraint> constraints_;
  LinearExpr objective_;
  ObjectiveSense sense_ = ObjectiveSense::kMinimize;
};

/// The result of a successful LP solve.
struct LpSolution {
  std::vector<double> values;  ///< one per model variable
  double objective = 0.0;
  int iterations = 0;
};

}  // namespace rankhow

#endif  // RANKHOW_LP_MODEL_H_
