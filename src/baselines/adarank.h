#ifndef RANKHOW_BASELINES_ADARANK_H_
#define RANKHOW_BASELINES_ADARANK_H_

/// \file adarank.h
/// The ADARANK competitor (Xu & Li, SIGIR'07) adapted to OPT as the paper
/// describes (Sec. VI-A): single attributes serve as weak rankers, the
/// per-tuple prediction-quality measure is derived from the tuple's
/// position error under the current ensemble, and boosting re-weights
/// tuples that the ensemble ranks badly. The paper observes (and our
/// harness reproduces) the failure mode where one strongly-correlated
/// attribute is selected round after round.

#include <vector>

#include "data/dataset.h"
#include "ranking/ranking.h"
#include "util/status.h"

namespace rankhow {

struct AdaRankOptions {
  int rounds = 50;
  /// Tie tolerance used when computing per-tuple position errors.
  double tie_eps = 0.0;
};

struct AdaRankFit {
  /// Per-attribute accumulated boosting weights (α totals), >= 0.
  std::vector<double> weights;
  /// Attribute chosen in each round (diagnostics for the degeneracy the
  /// paper describes).
  std::vector<int> selected_attributes;
  double seconds = 0;
};

Result<AdaRankFit> FitAdaRank(const Dataset& data, const Ranking& given,
                              const AdaRankOptions& options = AdaRankOptions());

}  // namespace rankhow

#endif  // RANKHOW_BASELINES_ADARANK_H_
