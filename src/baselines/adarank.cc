#include "baselines/adarank.h"

#include <algorithm>
#include <cmath>

#include "lp/model.h"
#include "ranking/score_ranking.h"
#include "util/logging.h"
#include "util/timer.h"

namespace rankhow {

namespace {

/// Per-tuple performance in [-1, 1] from position errors: 0 error -> 1,
/// worst possible displacement -> -1.
std::vector<double> PerformancePerTuple(const Dataset& data,
                                        const Ranking& given,
                                        const std::vector<double>& scores,
                                        double tie_eps) {
  const std::vector<int>& ranked = given.ranked_tuples();
  std::vector<long> errors =
      PositionErrorBreakdown(scores, given, tie_eps);
  double worst = std::max(1, data.num_tuples() - 1);
  std::vector<double> perf(ranked.size());
  for (size_t i = 0; i < ranked.size(); ++i) {
    perf[i] = 1.0 - 2.0 * std::min<double>(errors[i], worst) / worst;
  }
  return perf;
}

}  // namespace

Result<AdaRankFit> FitAdaRank(const Dataset& data, const Ranking& given,
                              const AdaRankOptions& options) {
  if (data.num_tuples() != given.num_tuples()) {
    return Status::Invalid("dataset / ranking size mismatch");
  }
  if (options.rounds < 1) return Status::Invalid("rounds must be >= 1");
  WallTimer timer;
  const int m = data.num_attributes();
  const std::vector<int>& ranked = given.ranked_tuples();
  const size_t q = ranked.size();

  // Tuple distribution over the ranked tuples.
  std::vector<double> dist(q, 1.0 / static_cast<double>(q));
  // Per-attribute per-tuple performance of the single-attribute ranker
  // (independent of boosting round, so precompute).
  std::vector<std::vector<double>> weak_perf(m);
  for (int a = 0; a < m; ++a) {
    weak_perf[a] =
        PerformancePerTuple(data, given, data.column(a), options.tie_eps);
  }

  AdaRankFit fit;
  fit.weights.assign(m, 0.0);
  std::vector<double> ensemble_scores(data.num_tuples(), 0.0);

  for (int round = 0; round < options.rounds; ++round) {
    // Pick the weak ranker with the best distribution-weighted performance.
    int best_attr = -1;
    double best_score = -kInfinity;
    for (int a = 0; a < m; ++a) {
      double s = 0;
      for (size_t i = 0; i < q; ++i) s += dist[i] * weak_perf[a][i];
      if (s > best_score) {
        best_score = s;
        best_attr = a;
      }
    }
    // α_t from the weighted performance (clamped away from ±1).
    double r = std::max(-0.999999, std::min(0.999999, best_score));
    double alpha = 0.5 * std::log((1.0 + r) / (1.0 - r));
    if (!(alpha > 0)) {
      // No weak ranker beats random under this distribution: stop early.
      if (round == 0) {
        // Degenerate input; fall back to the single best attribute so the
        // returned function is at least well-defined.
        fit.weights[best_attr] = 1.0;
        fit.selected_attributes.push_back(best_attr);
      }
      break;
    }
    fit.weights[best_attr] += alpha;
    fit.selected_attributes.push_back(best_attr);

    // Update the ensemble and re-weight tuples by its per-tuple performance.
    const std::vector<double>& col = data.column(best_attr);
    for (int t = 0; t < data.num_tuples(); ++t) {
      ensemble_scores[t] += alpha * col[t];
    }
    std::vector<double> ens_perf = PerformancePerTuple(
        data, given, ensemble_scores, options.tie_eps);
    double z = 0;
    for (size_t i = 0; i < q; ++i) {
      dist[i] = std::exp(-ens_perf[i]);
      z += dist[i];
    }
    for (size_t i = 0; i < q; ++i) dist[i] /= z;
  }

  fit.seconds = timer.ElapsedSeconds();
  return fit;
}

}  // namespace rankhow
