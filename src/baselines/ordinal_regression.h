#ifndef RANKHOW_BASELINES_ORDINAL_REGRESSION_H_
#define RANKHOW_BASELINES_ORDINAL_REGRESSION_H_

/// \file ordinal_regression.h
/// The ORDINALREGRESSION competitor: Srinivasan's (1976) linear-programming
/// procedure, which finds weights minimizing a *score-based* penalty — the
/// total slack needed to make every correctly-ordered pair's score
/// difference reach a margin. Extended per the paper's Sec. VI with tie
/// support and the ε₁ numerical-gap construction (the original allows
/// neither). The LP is solved with our simplex; instances whose pair count
/// exceeds `max_lp_pairs` fall back to projected-subgradient descent on the
/// identical hinge objective (same minimizer family, scales to millions of
/// tuples — needed when this runs as the SYM-GD seed on 10⁶-tuple inputs).

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "ranking/ranking.h"
#include "util/status.h"

namespace rankhow {

struct OrdinalRegressionOptions {
  /// Required score separation for strictly ordered pairs (the paper's OR+
  /// sets this to ε₁; OR- uses a value below the noise floor).
  double margin = 1e-6;
  /// Allowed |score difference| for tied pairs (the tie extension; only
  /// meaningful when support_ties).
  double tie_band = 0.0;
  /// Enable the paper's tie extension. When false and the ranking contains
  /// ties, fitting fails (the original technique's behavior).
  bool support_ties = true;
  /// Pair-count threshold above which the subgradient path is used.
  int max_lp_pairs = 3000;
  /// Subgradient iterations / step parameters.
  int subgradient_iters = 1500;
  double subgradient_lr = 0.05;
  /// Cap on sampled (last-ranked, ⊥) pairs for huge inputs; 0 = all.
  int max_bottom_pairs = 20000;
  uint64_t seed = 0;
};

struct OrdinalRegressionFit {
  /// Weights on the simplex (w >= 0, Σw = 1).
  std::vector<double> weights;
  /// Total slack (LP objective) or hinge loss (subgradient path).
  double penalty = 0;
  /// True when the LP path produced the fit (exact optimum of the program).
  bool exact_lp = false;
  double seconds = 0;
};

Result<OrdinalRegressionFit> FitOrdinalRegression(
    const Dataset& data, const Ranking& given,
    const OrdinalRegressionOptions& options = OrdinalRegressionOptions());

}  // namespace rankhow

#endif  // RANKHOW_BASELINES_ORDINAL_REGRESSION_H_
