#include "baselines/tree.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "core/indicator_fixing.h"
#include "lp/simplex.h"
#include "ranking/score_ranking.h"
#include "util/logging.h"
#include "util/timer.h"

namespace rankhow {

namespace {

/// One indicator hyperplane: pair (s, r) with its group index (position of
/// r in the ranked list) and the attribute difference vector d(s, r).
struct PairInfo {
  int s;
  int r;
  int group;  // index into ranked_tuples()
  std::vector<double> diff;
};

/// A BFS node: values of the first `depth` pairs in the static order.
struct TreeNode {
  std::vector<int8_t> assignment;  // 0/1 per decided pair
};

}  // namespace

Result<TreeResult> RunTreeBaseline(const Dataset& data, const Ranking& given,
                                   const TreeOptions& options) {
  if (data.num_tuples() != given.num_tuples()) {
    return Status::Invalid("dataset / ranking size mismatch");
  }
  const int m = data.num_attributes();
  const std::vector<int>& ranked = given.ranked_tuples();
  Deadline deadline(options.time_limit_seconds);
  WallTimer timer;

  // Build the pair list (optionally pre-fixed by whole-simplex intervals).
  std::vector<PairInfo> pairs;
  std::vector<int> fixed_beats(ranked.size(), 0);
  if (options.use_dominance_pruning) {
    RH_ASSIGN_OR_RETURN(
        FixingSummary fixing,
        ComputeIndicatorFixing(data, ranked,
                               WeightBox::FullSimplex(m), options.eps1,
                               options.eps2));
    for (size_t g = 0; g < fixing.groups.size(); ++g) {
      fixed_beats[g] = fixing.groups[g].fixed_one;
      for (const FreePair& fp : fixing.groups[g].free) {
        PairInfo& info = pairs.emplace_back();
        info.s = fp.s;
        info.r = fixing.groups[g].tuple;
        info.group = static_cast<int>(g);
        info.diff.resize(m);
        data.DiffVectorInto(info.s, info.r, info.diff.data());
      }
    }
  } else {
    for (size_t g = 0; g < ranked.size(); ++g) {
      int r = ranked[g];
      for (int s = 0; s < data.num_tuples(); ++s) {
        if (s == r) continue;
        PairInfo& info = pairs.emplace_back();
        info.s = s;
        info.r = r;
        info.group = static_cast<int>(g);
        info.diff.resize(m);
        data.DiffVectorInto(s, r, info.diff.data());
      }
    }
  }
  const int num_pairs = static_cast<int>(pairs.size());

  TreeResult result;
  result.error = -1;
  result.best_leaf_error = -1;
  SimplexSolver lp_solver;

  // Feasibility LP for a (partial) assignment. Returns a witness point or
  // kInfeasible.
  auto check_region =
      [&](const std::vector<int8_t>& assignment)
      -> Result<std::vector<double>> {
    LpModel lp;
    std::vector<int> w(m);
    LinearExpr simplex_row;
    for (int a = 0; a < m; ++a) {
      w[a] = lp.AddVariable(0.0, 1.0);
      simplex_row += LinearExpr::Term(w[a], 1.0);
    }
    lp.AddConstraint(simplex_row, RelOp::kEq, 1.0);
    for (size_t i = 0; i < assignment.size(); ++i) {
      LinearExpr diff;
      for (int a = 0; a < m; ++a) {
        diff += LinearExpr::Term(w[a], pairs[i].diff[a]);
      }
      if (assignment[i] == 1) {
        lp.AddConstraint(std::move(diff), RelOp::kGe, options.eps1);
      } else {
        lp.AddConstraint(std::move(diff), RelOp::kLe, options.eps2);
      }
    }
    ++result.lp_calls;
    return lp_solver.FindFeasiblePoint(lp);
  };

  // Any feasible region sample is a candidate answer; evaluating internal
  // witnesses too gives TREE anytime behavior under a budget (the completed
  // runs the paper reports still end at the leaves).
  auto consider_witness = [&](const std::vector<double>& witness) {
    long true_error = PositionError(data, given, witness, options.tie_eps);
    if (result.error < 0 || true_error < result.error) {
      result.error = true_error;
      result.weights = witness;
    }
  };

  auto evaluate_leaf = [&](const std::vector<int8_t>& assignment,
                           const std::vector<double>& witness) {
    ++result.leaves_reached;
    // Leaf objective from the indicator values.
    std::vector<long> beats(ranked.size());
    for (size_t g = 0; g < ranked.size(); ++g) beats[g] = fixed_beats[g];
    for (int i = 0; i < num_pairs; ++i) {
      if (assignment[i] == 1) ++beats[pairs[i].group];
    }
    long leaf_error = 0;
    for (size_t g = 0; g < ranked.size(); ++g) {
      leaf_error +=
          std::labs(static_cast<long>(given.position(ranked[g])) - 1 -
                    beats[g]);
    }
    if (result.best_leaf_error < 0 || leaf_error < result.best_leaf_error) {
      result.best_leaf_error = leaf_error;
    }
    // The paper's TREE samples a weight vector from the partition; with a
    // too-small eps1 its true error can disagree with the leaf objective.
    consider_witness(witness);
  };

  bool budget_hit = false;
  if (num_pairs == 0) {
    // Everything was fixed up front: a single leaf covering the simplex.
    std::vector<double> uniform(m, 1.0 / m);
    evaluate_leaf({}, uniform);
    result.completed = true;
  } else {
    // BFS, exactly as in the proof of Theorem 1 (footnote: "the algorithm
    // uses BFS for tree construction").
    std::deque<TreeNode> queue;
    queue.push_back(TreeNode{});
    while (!queue.empty()) {
      if (deadline.Expired() || (options.max_lp_calls > 0 &&
                                 result.lp_calls >= options.max_lp_calls)) {
        budget_hit = true;
        break;
      }
      TreeNode node = std::move(queue.front());
      queue.pop_front();
      ++result.nodes_expanded;
      int depth = static_cast<int>(node.assignment.size());
      // Expand on the next indicator in the static order.
      for (int8_t value : {int8_t{0}, int8_t{1}}) {
        std::vector<int8_t> child = node.assignment;
        child.push_back(value);
        auto witness = check_region(child);
        if (!witness.ok()) {
          if (witness.status().code() == StatusCode::kInfeasible) continue;
          return witness.status();
        }
        if (depth + 1 == num_pairs) {
          evaluate_leaf(child, *witness);
        } else {
          consider_witness(*witness);
          queue.push_back(TreeNode{std::move(child)});
        }
      }
    }
    result.completed = !budget_hit && queue.empty();
  }
  result.seconds = timer.ElapsedSeconds();
  if (result.error < 0) {
    return Status::ResourceExhausted(
        "TREE reached no leaf within its budget");
  }
  return result;
}

}  // namespace rankhow
