#include "baselines/sampling.h"

#include "ranking/score_ranking.h"
#include "util/random.h"
#include "util/timer.h"

namespace rankhow {

Result<SamplingFit> RunSampling(const Dataset& data, const Ranking& given,
                                const SamplingOptions& options) {
  if (data.num_tuples() != given.num_tuples()) {
    return Status::Invalid("dataset / ranking size mismatch");
  }
  if (options.time_budget_seconds <= 0 && options.max_samples <= 0) {
    return Status::Invalid("sampling needs a time budget or sample cap");
  }
  Deadline deadline(options.time_budget_seconds);
  Rng rng(options.seed ^ 0x53414D50ULL);
  const int m = data.num_attributes();

  SamplingFit fit;
  fit.error = -1;
  while (!deadline.Expired()) {
    if (options.max_samples > 0 && fit.samples_drawn >= options.max_samples) {
      break;
    }
    ++fit.samples_drawn;
    std::vector<double> w = rng.NextSimplexPoint(m);
    if (options.constraints != nullptr &&
        !options.constraints->IsSatisfied(w)) {
      continue;
    }
    ++fit.samples_evaluated;
    long error = PositionError(data, given, w, options.tie_eps);
    if (fit.error < 0 || error < fit.error) {
      fit.error = error;
      fit.weights = std::move(w);
      if (error == 0) break;
    }
  }
  fit.seconds = deadline.ElapsedSeconds();
  if (fit.error < 0) {
    return Status::ResourceExhausted(
        "no sample satisfied the weight constraints within the budget");
  }
  return fit;
}

}  // namespace rankhow
