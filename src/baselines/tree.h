#ifndef RANKHOW_BASELINES_TREE_H_
#define RANKHOW_BASELINES_TREE_H_

/// \file tree.h
/// The TREE competitor: the arrangement-tree PTIME algorithm (Asudeh et al.
/// [31], extended to OPT as in the paper's Sec. VI-B and the constructive
/// proof of Theorem 1). BFS over the partitions induced by the indicator
/// hyperplanes: each node fixes one more δ_sr, feasibility of each child is
/// checked with a plain LP, and leaves (all indicators fixed) yield an error
/// value plus a witness weight vector sampled from the leaf's region.
///
/// This is deliberately the *naive* evaluation strategy of the MILP: no
/// incumbent, no bounds, no cross-branch information — each partition is a
/// separate LP. The paper's headline efficiency result is how badly this
/// loses to the holistic branch-and-bound despite its polynomial bound, and
/// this implementation exists to reproduce that comparison.
///
/// Epsilon handling mirrors the paper's case study: the "original" variant
/// splits on {diff > 0, diff <= 0} (ε₁ below noise); enabling the ε₁/ε₂
/// construction prunes subtrees whose region collapses into the gap.

#include <cstdint>
#include <vector>

#include "core/opt_problem.h"
#include "data/dataset.h"
#include "ranking/ranking.h"
#include "util/status.h"

namespace rankhow {

struct TreeOptions {
  /// Indicator thresholds. The original TREE corresponds to eps1 just above
  /// 0 and eps2 = 0; the paper's "ε₁ construction" raises eps1.
  double eps1 = 1e-12;
  double eps2 = 0.0;
  /// Tie tolerance for evaluating witness weight vectors.
  double tie_eps = 0.0;
  /// Budgets (the full tree is astronomically large on real inputs; the
  /// paper itself reports 16-hour runs). 0 = unlimited.
  double time_limit_seconds = 0;
  long max_lp_calls = 0;
  /// Apply whole-simplex interval fixing before building the tree (the
  /// dominance pre-step; reduces the pair list like Sec. V-B).
  bool use_dominance_pruning = false;
};

struct TreeResult {
  std::vector<double> weights;  ///< best witness found
  long error = 0;               ///< its verified-by-evaluation position error
  long best_leaf_error = 0;     ///< best leaf objective (from indicator sums)
  long lp_calls = 0;
  long nodes_expanded = 0;
  long leaves_reached = 0;
  bool completed = false;  ///< tree fully enumerated within budget
  double seconds = 0;
};

/// Runs the arrangement-tree search for the OPT instance defined by
/// (data, given) with simplex weights (no extra P constraints — matching
/// the published algorithm).
Result<TreeResult> RunTreeBaseline(const Dataset& data, const Ranking& given,
                                   const TreeOptions& options);

}  // namespace rankhow

#endif  // RANKHOW_BASELINES_TREE_H_
