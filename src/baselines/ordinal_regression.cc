#include "baselines/ordinal_regression.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "lp/simplex.h"
#include "math/linalg.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace rankhow {

namespace {

/// A pair constraint: tuple `above` should outscore `below` by `margin`
/// (strict pair), or stay within tie_band (tie == true).
struct OrderedPair {
  int above;
  int below;
  bool tie;
};

/// Builds the pair set: consecutive distinct positions among ranked tuples,
/// tied ranked pairs, and (last-ranked, ⊥) pairs.
Result<std::vector<OrderedPair>> BuildPairs(
    const Ranking& given, const OrdinalRegressionOptions& options, Rng* rng) {
  const std::vector<int>& ranked = given.ranked_tuples();
  std::vector<OrderedPair> pairs;

  // Ties: all pairs sharing a position.
  for (size_t i = 0; i < ranked.size(); ++i) {
    for (size_t j = i + 1; j < ranked.size() &&
                           given.position(ranked[j]) ==
                               given.position(ranked[i]);
         ++j) {
      if (!options.support_ties) {
        return Status::Invalid(
            "given ranking contains ties; the original ordinal-regression "
            "formulation does not support them (enable support_ties)");
      }
      pairs.push_back({ranked[i], ranked[j], /*tie=*/true});
    }
  }
  // Strict pairs: each tuple vs the first tuple of the next position group.
  for (size_t i = 0; i + 1 < ranked.size(); ++i) {
    for (size_t j = i + 1; j < ranked.size(); ++j) {
      if (given.position(ranked[j]) > given.position(ranked[i])) {
        pairs.push_back({ranked[i], ranked[j], /*tie=*/false});
        break;  // only the immediate successor group
      }
    }
  }
  // Bottom pairs: the lowest-ranked tuples must not be outscored by ⊥
  // tuples beyond the margin... ⊥ may tie with the last position, so this
  // is a zero-margin strict pair (handled by margin_scale = 0 below).
  std::vector<int> bottom;
  int worst_position = 0;
  for (int t : ranked) worst_position = std::max(worst_position,
                                                 given.position(t));
  std::vector<int> last_group;
  for (int t : ranked) {
    if (given.position(t) == worst_position) last_group.push_back(t);
  }
  std::vector<int> unranked;
  for (int t = 0; t < given.num_tuples(); ++t) {
    if (!given.IsRanked(t)) unranked.push_back(t);
  }
  if (options.max_bottom_pairs > 0 &&
      static_cast<int>(unranked.size()) > options.max_bottom_pairs) {
    rng->Shuffle(&unranked);
    unranked.resize(options.max_bottom_pairs);
  }
  for (int u : unranked) {
    // Use the first tuple of the last ranked group as the representative.
    pairs.push_back({last_group.front(), u, /*tie=*/false});
  }
  return pairs;
}

double PairMargin(const OrderedPair& pair, const Ranking& given,
                  const OrdinalRegressionOptions& options) {
  if (pair.tie) return 0;  // handled via tie_band rows
  // ⊥ tuples may tie with the last ranked position: zero margin.
  if (!given.IsRanked(pair.below)) return 0;
  return options.margin;
}

Result<OrdinalRegressionFit> SolveWithLp(
    const Dataset& data, const Ranking& given,
    const std::vector<OrderedPair>& pairs,
    const OrdinalRegressionOptions& options) {
  const int m = data.num_attributes();
  LpModel lp;
  std::vector<int> w(m);
  LinearExpr simplex_row;
  for (int a = 0; a < m; ++a) {
    w[a] = lp.AddVariable(0.0, 1.0, "w" + std::to_string(a));
    simplex_row += LinearExpr::Term(w[a], 1.0);
  }
  lp.AddConstraint(simplex_row, RelOp::kEq, 1.0, "simplex");

  LinearExpr objective;
  for (const OrderedPair& pair : pairs) {
    LinearExpr diff;
    for (int a = 0; a < m; ++a) {
      diff += LinearExpr::Term(
          w[a], data.value(pair.above, a) - data.value(pair.below, a));
    }
    if (pair.tie) {
      // |diff| <= tie_band + z with z >= 0 shared across both sides:
      // diff − z <= tie_band  and  diff + z >= −tie_band.
      int z = lp.AddVariable(0.0, kInfinity, "z_tie");
      objective += LinearExpr::Term(z, 1.0);
      lp.AddConstraint(diff - LinearExpr::Term(z, 1.0), RelOp::kLe,
                       options.tie_band);
      lp.AddConstraint(diff + LinearExpr::Term(z, 1.0), RelOp::kGe,
                       -options.tie_band);
    } else {
      int z = lp.AddVariable(0.0, kInfinity, "z");
      objective += LinearExpr::Term(z, 1.0);
      lp.AddConstraint(diff + LinearExpr::Term(z, 1.0), RelOp::kGe,
                       PairMargin(pair, given, options));
    }
  }
  lp.SetObjective(objective, ObjectiveSense::kMinimize);
  RH_ASSIGN_OR_RETURN(LpSolution sol, SimplexSolver().Solve(lp));

  OrdinalRegressionFit fit;
  fit.weights.resize(m);
  for (int a = 0; a < m; ++a) {
    fit.weights[a] = std::max(0.0, std::min(1.0, sol.values[w[a]]));
  }
  fit.penalty = sol.objective;
  fit.exact_lp = true;
  return fit;
}

/// Euclidean projection onto the probability simplex.
std::vector<double> ProjectToSimplex(std::vector<double> v) {
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double cumsum = 0;
  double theta = 0;
  int rho = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    cumsum += sorted[i];
    double candidate = (cumsum - 1.0) / static_cast<double>(i + 1);
    if (sorted[i] - candidate > 0) {
      rho = static_cast<int>(i + 1);
      theta = candidate;
    }
  }
  (void)rho;
  for (double& x : v) x = std::max(0.0, x - theta);
  return v;
}

OrdinalRegressionFit SolveWithSubgradient(
    const Dataset& data, const Ranking& given,
    const std::vector<OrderedPair>& pairs,
    const OrdinalRegressionOptions& options) {
  const int m = data.num_attributes();
  std::vector<double> w(m, 1.0 / m);
  std::vector<double> best = w;
  double best_loss = kInfinity;

  auto loss_and_grad = [&](const std::vector<double>& weights,
                           std::vector<double>* grad) {
    grad->assign(m, 0.0);
    double loss = 0;
    for (const OrderedPair& pair : pairs) {
      double diff = 0;
      for (int a = 0; a < m; ++a) {
        diff += weights[a] *
                (data.value(pair.above, a) - data.value(pair.below, a));
      }
      if (pair.tie) {
        double excess = std::abs(diff) - options.tie_band;
        if (excess > 0) {
          loss += excess;
          double sign = diff > 0 ? 1.0 : -1.0;
          for (int a = 0; a < m; ++a) {
            (*grad)[a] += sign * (data.value(pair.above, a) -
                                  data.value(pair.below, a));
          }
        }
      } else {
        double short_by = PairMargin(pair, given, options) - diff;
        if (short_by > 0) {
          loss += short_by;
          for (int a = 0; a < m; ++a) {
            (*grad)[a] -= data.value(pair.above, a) -
                          data.value(pair.below, a);
          }
        }
      }
    }
    return loss;
  };

  std::vector<double> grad(m);
  for (int iter = 0; iter < options.subgradient_iters; ++iter) {
    double loss = loss_and_grad(w, &grad);
    if (loss < best_loss) {
      best_loss = loss;
      best = w;
      if (loss == 0) break;
    }
    double grad_norm = std::sqrt(Dot(grad, grad));
    if (grad_norm < 1e-15) break;
    double lr = options.subgradient_lr / (1.0 + 0.05 * iter) / grad_norm;
    for (int a = 0; a < m; ++a) w[a] -= lr * grad[a];
    w = ProjectToSimplex(std::move(w));
  }

  OrdinalRegressionFit fit;
  fit.weights = best;
  fit.penalty = best_loss;
  fit.exact_lp = false;
  return fit;
}

}  // namespace

Result<OrdinalRegressionFit> FitOrdinalRegression(
    const Dataset& data, const Ranking& given,
    const OrdinalRegressionOptions& options) {
  if (data.num_tuples() != given.num_tuples()) {
    return Status::Invalid("dataset / ranking size mismatch");
  }
  WallTimer timer;
  Rng rng(options.seed ^ 0x4F52ULL);
  RH_ASSIGN_OR_RETURN(std::vector<OrderedPair> pairs,
                      BuildPairs(given, options, &rng));
  Result<OrdinalRegressionFit> fit =
      static_cast<int>(pairs.size()) <= options.max_lp_pairs
          ? SolveWithLp(data, given, pairs, options)
          : Result<OrdinalRegressionFit>(
                SolveWithSubgradient(data, given, pairs, options));
  if (!fit.ok()) return fit.status();
  fit->seconds = timer.ElapsedSeconds();
  return fit;
}

}  // namespace rankhow
