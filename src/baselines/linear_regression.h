#ifndef RANKHOW_BASELINES_LINEAR_REGRESSION_H_
#define RANKHOW_BASELINES_LINEAR_REGRESSION_H_

/// \file linear_regression.h
/// The LINEARREGRESSION competitor: treat tuple positions as numeric labels
/// (tuple at position i gets label |R|−i+1, ⊥ tuples share the label below
/// the ranked block) and fit ordinary least squares — optionally with
/// non-negative coefficients (NNLS). As the paper's Examples 2–3 show, this
/// optimizes score accuracy, not position accuracy, and is the natural
/// adaptation of post-hoc explainable learning-to-rank to OPT.

#include <vector>

#include "data/dataset.h"
#include "ranking/ranking.h"
#include "util/status.h"

namespace rankhow {

struct LinearRegressionOptions {
  /// Fit with β >= 0 (Lawson–Hanson NNLS) instead of plain OLS.
  bool non_negative = false;
  /// Ridge used only as a singularity fallback.
  double ridge = 1e-8;
};

struct LinearRegressionFit {
  /// Attribute coefficients (may be negative for plain OLS). Scoring by
  /// these weights is what gets evaluated; an affine label change never
  /// changes the induced ranking.
  std::vector<double> weights;
  double intercept = 0;
  double seconds = 0;
};

Result<LinearRegressionFit> FitLinearRegression(
    const Dataset& data, const Ranking& given,
    const LinearRegressionOptions& options = LinearRegressionOptions());

}  // namespace rankhow

#endif  // RANKHOW_BASELINES_LINEAR_REGRESSION_H_
