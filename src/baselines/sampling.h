#ifndef RANKHOW_BASELINES_SAMPLING_H_
#define RANKHOW_BASELINES_SAMPLING_H_

/// \file sampling.h
/// The SAMPLING competitor: draw weight vectors uniformly from the simplex
/// (rejecting ones that violate P), evaluate their true position error, and
/// keep the best until the time budget runs out. The paper gives it the same
/// budget RankHow used, making it the "what does brute randomness buy"
/// baseline.

#include <cstdint>

#include "core/weight_constraints.h"
#include "data/dataset.h"
#include "ranking/ranking.h"
#include "util/status.h"

namespace rankhow {

struct SamplingOptions {
  double time_budget_seconds = 1.0;
  /// Hard cap regardless of budget; 0 = unlimited.
  long max_samples = 0;
  /// Optional predicate P (samples violating it are rejected).
  const WeightConstraintSet* constraints = nullptr;
  double tie_eps = 0.0;
  uint64_t seed = 0;
};

struct SamplingFit {
  std::vector<double> weights;
  long error = 0;
  long samples_drawn = 0;
  long samples_evaluated = 0;  ///< samples that satisfied P
  double seconds = 0;
};

Result<SamplingFit> RunSampling(const Dataset& data, const Ranking& given,
                                const SamplingOptions& options);

}  // namespace rankhow

#endif  // RANKHOW_BASELINES_SAMPLING_H_
