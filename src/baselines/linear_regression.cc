#include "baselines/linear_regression.h"

#include "math/linalg.h"
#include "util/timer.h"

namespace rankhow {

Result<LinearRegressionFit> FitLinearRegression(
    const Dataset& data, const Ranking& given,
    const LinearRegressionOptions& options) {
  if (data.num_tuples() != given.num_tuples()) {
    return Status::Invalid("dataset / ranking size mismatch");
  }
  WallTimer timer;
  const int n = data.num_tuples();
  const int m = data.num_attributes();

  // Labels: position i -> n − i + 1; ⊥ -> n − (k_max + 1) + 1 where k_max is
  // the greatest ranked position (they all sit just below the ranked block).
  int k_max = 0;
  for (int t : given.ranked_tuples()) k_max = std::max(k_max, given.position(t));
  std::vector<double> y(n);
  for (int t = 0; t < n; ++t) {
    int position = given.IsRanked(t) ? given.position(t) : k_max + 1;
    y[t] = static_cast<double>(n - position + 1);
  }

  // Design matrix with an intercept column (last).
  Matrix x(n, m + 1);
  for (int t = 0; t < n; ++t) {
    for (int a = 0; a < m; ++a) x.at(t, a) = data.value(t, a);
    x.at(t, m) = 1.0;
  }

  std::vector<double> beta;
  if (options.non_negative) {
    // NNLS on attributes; keep the intercept free by centering: fold it out
    // via mean-shifted labels (the intercept does not affect rankings).
    double y_mean = 0;
    for (double v : y) y_mean += v;
    y_mean /= n;
    std::vector<double> yc(n);
    for (int t = 0; t < n; ++t) yc[t] = y[t] - y_mean;
    Matrix xa(n, m);
    for (int t = 0; t < n; ++t) {
      for (int a = 0; a < m; ++a) xa.at(t, a) = data.value(t, a);
    }
    RH_ASSIGN_OR_RETURN(beta, NonNegativeLeastSquares(xa, yc));
    beta.push_back(y_mean);
  } else {
    RH_ASSIGN_OR_RETURN(beta, LeastSquares(x, y, options.ridge));
  }

  LinearRegressionFit fit;
  fit.weights.assign(beta.begin(), beta.begin() + m);
  fit.intercept = beta[m];
  fit.seconds = timer.ElapsedSeconds();
  return fit;
}

}  // namespace rankhow
