#ifndef RANKHOW_SERVER_REGISTRY_ROUTER_H_
#define RANKHOW_SERVER_REGISTRY_ROUTER_H_

/// \file registry_router.h
/// The multi-dataset routing layer over SessionRegistry (see DESIGN.md
/// "Network transport & routing"): one SessionRegistry serves exactly one
/// dataset+ranking, so a server that fronts several datasets needs a layer
/// that (a) routes each client to its dataset's registry, (b) materializes
/// registries lazily — a catalog maps dataset ids to loader callbacks, and
/// a dataset costs nothing until the first `open` names it — and (c) keeps
/// the resident set bounded: idle *sessions* are LRU-closed under a total
/// session budget, and whole idle *registries* (zero clients) are
/// LRU-evicted when loading a new dataset would exceed the registry budget.
///
/// Client names are router-global (the wire protocol routes `CLIENT cmd`
/// lines by client name alone, so one name cannot live in two registries).
/// `Open(client, dataset_id)` binds the name to a dataset for its lifetime;
/// an empty dataset id means the router's default (the first registered).
///
/// Eviction contract: eviction only ever touches *idle* state — a session
/// with no running or queued command, a registry with no open clients — so
/// a busy sibling is never cancelled to make room. An evicted session is
/// indistinguishable from a closed one to its client (the next command
/// answers kNotFound; re-open and rebuild — the wire protocol documents
/// this in docs/PROTOCOL.md). When nothing is evictable the Open fails with
/// kResourceExhausted rather than blocking.
///
/// Thread-safety: fully internally locked, like SessionRegistry. Slow
/// operations (dataset loading, registry destruction, graceful close)
/// run off the router lock; the map handed to concurrent callers holds
/// shared_ptr registries so an eviction never pulls a registry out from
/// under an in-flight Submit.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "server/journal.h"
#include "server/session_registry.h"
#include "util/status.h"

namespace rankhow {

struct RouterOptions {
  /// Per-registry configuration (solver, objective, strand pool width,
  /// per-registry max_clients, incumbent sharing). Every registry the
  /// router materializes gets a copy. Note each registry owns its own
  /// strand pool of `server.num_workers` threads.
  ServerOptions server;
  /// Resident-registry budget: loading a dataset beyond this LRU-evicts an
  /// idle zero-client registry, or fails with kResourceExhausted when every
  /// resident registry still has clients.
  int max_resident_registries = 4;
  /// Total open sessions across all registries: opening beyond this
  /// LRU-closes idle sessions first, then fails with kResourceExhausted.
  int max_open_sessions = 64;
  /// Dataset served by `open CLIENT` without an id. Empty = the first
  /// RegisterDataset call.
  std::string default_dataset;
  /// Durability (see docs/OPERATIONS.md "Durability & recovery"): when
  /// non-empty, every materialized registry writes a write-ahead session
  /// journal to `<journal_dir>/<dataset-id>.journal`, and
  /// RecoverFromJournals() rebuilds journaled sessions on startup. Empty =
  /// journaling off. The directory must exist.
  std::string journal_dir;
  /// Per-journal write policy (fsync batching, rotation, backoff).
  JournalOptions journal;
  /// Persistent warm-start cache (see core/warm_cache.h and
  /// docs/OPERATIONS.md "Warm-start cache"): when non-empty, the router
  /// owns one `<warm_cache_dir>/warm.cache` of fingerprint-keyed proven
  /// winners shared by every registry it materializes — warm state
  /// survives registry eviction and process restarts. Empty = cache off.
  /// The directory must exist. A cache that fails to open serves cache-off,
  /// loudly.
  std::string warm_cache_dir;
  /// Warm-cache policy (per-key caps, fsync batching).
  WarmCacheOptions warm_cache;
};

/// What RecoverFromJournals() rebuilt (the `recover` stats section).
struct RecoverReport {
  int64_t replayed = 0;      // intact journal records read back
  int64_t truncated = 0;     // torn trailing records dropped
  int64_t skipped = 0;       // CRC/framing-corrupt records dropped
  int datasets = 0;          // registries materialized for recovery
  int sessions = 0;          // sessions rebuilt (recovered-unadopted)
  /// Sessions refused because their journaled open fingerprint disagrees
  /// with the freshly loaded dataset (the CSV changed under the journal).
  int64_t fingerprint_mismatches = 0;
  /// Sessions dropped because a journaled edit failed to re-apply (should
  /// not happen — it succeeded live — but divergence is worse than loss).
  int64_t replay_failures = 0;
};

/// Router-level aggregate of every resident registry's Stats() plus the
/// retired totals of evicted ones (commands/forks stay cumulative across
/// evictions, mirroring SessionRegistry's own retired-fork accounting).
struct RegistryRouterStats {
  int registered_datasets = 0;
  int resident_registries = 0;
  int open_clients = 0;
  int resident_dataset_copies = 0;
  int64_t commands_executed = 0;
  int64_t dataset_forks = 0;
  int64_t datasets_loaded = 0;      // loader invocations (lazy-load metric)
  int64_t registries_evicted = 0;
  int64_t sessions_evicted = 0;
  int64_t shared_publishes = 0;     // summed over resident shared pools
  int64_t shared_draws = 0;
  /// Load-shedding / close accounting, summed like the counters above.
  int pending_commands = 0;
  int64_t commands_shed = 0;
  int64_t closes_graceful = 0;
  int64_t closes_aborted = 0;
  /// Journal writer totals over every open journal (all 0 when
  /// RouterOptions::journal_dir is empty).
  int64_t journal_records = 0;
  int64_t journal_fsyncs = 0;
  int64_t journal_fsync_failures = 0;
  int journal_degraded = 0;  // journals that fell to journal-off mode
  /// Warm-cache counters (all 0 when RouterOptions::warm_cache_dir is
  /// empty): session-side draw accounting summed like the counters above,
  /// plus the cache's own residency/durability state.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_demotions = 0;
  int64_t cache_publishes = 0;
  int cache_entries = 0;        // resident entries in the router's cache
  int64_t cache_appended = 0;   // records persisted to disk
  int64_t cache_loaded = 0;     // intact records read back at startup
  int64_t cache_skipped = 0;    // corrupt records dropped at startup
  int cache_degraded = 0;       // 1 when writes degraded to cache-off
  /// The startup RecoverFromJournals() report (zeros when never run).
  RecoverReport recovered;
};

class RegistryRouter {
 public:
  /// What a dataset loader yields: everything a SessionRegistry needs.
  struct DatasetBundle {
    SharedDataset data;
    Ranking given;
    std::vector<std::string> labels;
  };
  /// Invoked (off the router lock) the first time an `open` names the
  /// dataset, and again after an eviction dropped it. Must be safe to call
  /// more than once.
  using Loader = std::function<Result<DatasetBundle>()>;

  explicit RegistryRouter(RouterOptions options);
  /// Cancels and drains every resident registry.
  ~RegistryRouter();

  RegistryRouter(const RegistryRouter&) = delete;
  RegistryRouter& operator=(const RegistryRouter&) = delete;

  /// Registers a dataset id in the catalog (setup time, before serving).
  /// kAlreadyExists for a duplicate id, kInvalidArgument for an empty one.
  /// The first registered id becomes the default unless RouterOptions
  /// named one.
  Status RegisterDataset(const std::string& id, Loader loader);

  /// Opens `client` against `dataset_id` ("" = default), lazily loading
  /// the dataset and evicting idle sessions/registries as the budgets
  /// require. kNotFound for an unknown dataset id or a dataset whose load
  /// failed (the catalog entry stays retryable — a fixed CSV serves the
  /// next open), kAlreadyExists for a live client name (in any registry),
  /// kResourceExhausted when a budget is exhausted and nothing idle can be
  /// evicted.
  ///
  /// Adoption: when `client` names a journal-recovered session no
  /// connection has claimed yet, the open *adopts* it — constraint state
  /// intact — instead of failing kAlreadyExists, and `*adopted` (when
  /// non-null) reports it. An explicit dataset_id must match the session's
  /// recovered binding; "" adopts whatever it was bound to.
  Status Open(const std::string& client, const std::string& dataset_id,
              bool* adopted = nullptr);

  /// Rebuilds every live journaled session from
  /// `<journal_dir>/<id>.journal` (see docs/OPERATIONS.md). Call once at
  /// startup, before serving — replay is single-threaded and runs the
  /// edits through the same ApplySessionCommand path the live server used;
  /// no solves re-run. No-op when journal_dir is empty or no journals
  /// exist. The report is also surfaced through Stats().recovered.
  Result<RecoverReport> RecoverFromJournals();

  /// Routes one command to the client's registry strand. kNotFound for
  /// unknown (or evicted) clients.
  Status Submit(const std::string& client, SessionCommand command,
                SessionCallback done);

  /// Cooperatively cancels the client's in-flight solve (see
  /// SessionRegistry::Cancel). No-op for unknown clients.
  void Cancel(const std::string& client);

  /// Closes a client (graceful lets its queued commands finish). kNotFound
  /// for unknown clients. Do not call from a SessionCallback.
  Status Close(const std::string& client, bool graceful = false);

  /// Blocks until every resident registry is idle. Do not call from a
  /// SessionCallback.
  void Drain();

  RegistryRouterStats Stats() const;

  /// The dataset id a client is bound to (empty when unknown) — the wire
  /// layer's `open` ack echoes it.
  std::string ClientDataset(const std::string& client) const;

 private:
  struct CatalogEntry {
    Loader loader;
    std::shared_ptr<SessionRegistry> registry;  // null until first open
    /// The dataset's write-ahead journal (null when journaling is off or
    /// the journal failed to open). Created at first materialization and
    /// kept across registry evictions — it must outlive every registry
    /// that points at it (ServerOptions::journal is non-owning).
    std::unique_ptr<SessionJournal> journal;
    uint64_t last_used = 0;                     // logical LRU clock
  };
  struct Route {
    std::string dataset;
    uint64_t last_used = 0;
  };

  /// Returns the client's registry, touching LRU stamps. Must be called
  /// under mu_.
  std::shared_ptr<SessionRegistry> RouteLocked(const std::string& client);

  /// Evicts LRU idle sessions until the open-session count drops below the
  /// budget (or nothing idle remains). Called with mu_ held; releases and
  /// re-acquires it around the blocking closes.
  void EvictIdleSessionsLocked(std::unique_lock<std::mutex>& lock);

  /// `<journal_dir>/<id>.journal` (journal_dir is known non-empty).
  std::string JournalPath(const std::string& id) const;

  RouterOptions options_;
  /// The router-owned persistent warm cache (null = off). Registries point
  /// at it through ServerOptions::warm_cache (non-owning), so it must — and
  /// does — outlive every registry: the destructor body drains and
  /// destroys registries before members die, and eviction only releases
  /// registry pointers.
  std::unique_ptr<WarmCache> warm_cache_;

  mutable std::mutex mu_;
  std::map<std::string, CatalogEntry> catalog_;
  std::map<std::string, Route> routes_;
  std::string default_dataset_;
  uint64_t clock_ = 0;
  int64_t datasets_loaded_ = 0;
  int64_t registries_evicted_ = 0;
  int64_t sessions_evicted_ = 0;
  /// Stats of evicted registries, folded in so totals stay cumulative.
  int64_t commands_retired_ = 0;
  int64_t forks_retired_ = 0;
  int64_t shared_publishes_retired_ = 0;
  int64_t shared_draws_retired_ = 0;
  int64_t shed_retired_ = 0;
  int64_t closes_graceful_retired_ = 0;
  int64_t closes_aborted_retired_ = 0;
  int64_t cache_hits_retired_ = 0;
  int64_t cache_misses_retired_ = 0;
  int64_t cache_demotions_retired_ = 0;
  int64_t cache_publishes_retired_ = 0;
  RecoverReport recovered_;
};

}  // namespace rankhow

#endif  // RANKHOW_SERVER_REGISTRY_ROUTER_H_
