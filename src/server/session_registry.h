#ifndef RANKHOW_SERVER_SESSION_REGISTRY_H_
#define RANKHOW_SERVER_SESSION_REGISTRY_H_

/// \file session_registry.h
/// The session server's core (see DESIGN.md "Server architecture"): a
/// registry of named per-client SolveSessions over one shared copy-on-write
/// dataset, scheduled on the PR 2 thread pool.
///
/// Shape: N clients stream edits against few datasets. Each client owns a
/// private `SolveSession` (solver state — model cache, incumbent pool,
/// bounds — is per client), while all sessions over one dataset read a
/// single immutable `SharedDataset` snapshot; a structural `append` edit
/// forks a private copy for the appending client only.
///
/// Scheduling: commands enqueue onto a per-client *strand*. A strand drains
/// its queue on one pool task at a time, so one client's commands execute
/// strictly in submission order while different clients' solves run
/// concurrently (each session solves serially — the pool supplies the
/// parallelism, exactly like rankhow_cli's batch mode). Completion
/// callbacks run on pool threads, in submission order per client.
///
/// Cancellation/deadlines: every client carries a cancel flag threaded into
/// its solver options (RankHowOptions::cancel → SearchCoordinator), so
/// `Cancel` or `Close` makes an in-flight solve wind down within one
/// node/box — a budget-limited result, never an error — without touching
/// sibling clients. Per-solve deadlines ride the normal
/// RankHowOptions::time_limit_seconds in ServerOptions::solver.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "app/cli_driver.h"
#include "core/shared_incumbent_pool.h"
#include "core/solve_session.h"
#include "core/warm_cache.h"
#include "data/shared_dataset.h"
#include "ranking/objective.h"
#include "ranking/ranking.h"
#include "ranking/shared_ranking.h"
#include "server/journal.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rankhow {

struct ServerOptions {
  /// Per-client solver configuration. num_threads is forced to 1: each
  /// session solves serially and the registry pool supplies the
  /// parallelism (one strand per client). time_limit_seconds is the
  /// per-solve client deadline.
  RankHowOptions solver;
  /// Every client session starts on this ranking objective (clients switch
  /// per session with the `objective` script command).
  RankingObjectiveSpec objective;
  /// Registry pool width (concurrent client strands): 0 = hardware
  /// concurrency, n = exactly n.
  int num_workers = 1;
  /// Open() beyond this fails with kResourceExhausted.
  int max_clients = 64;
  /// Cross-client incumbent sharing (ROADMAP): the registry owns one
  /// SharedIncumbentPool and attaches it to every client session, so
  /// proven winners flow between clients over the shared snapshot (as
  /// revalidated *candidates*, never bounds — see shared_incumbent_pool.h).
  /// Sharing keeps every *proven* optimum identical (asserted by
  /// tests/server/registry_router_test.cc) but can change which of several
  /// optimal weight vectors a solve reports, timing-dependently — disable
  /// where bit-identical replays matter (the PR 4 equivalence harness does).
  bool share_incumbents = true;
  /// Resident-entry cap of the shared pool (ignored when sharing is off).
  int shared_pool_capacity = 32;
  /// Write-ahead journal for this registry's session traffic (non-owning;
  /// null = journaling off; must outlive the registry — the router owns
  /// both and destroys the registry first). Every accepted edit plus
  /// open/close appends a record *before* the completion callback fires,
  /// so an acked command is always recoverable.
  SessionJournal* journal = nullptr;
  /// Persistent warm-start cache (non-owning; null = cache off; must
  /// outlive the registry — the router owns it precisely so warm state
  /// survives registry eviction). When set, the registry creates the
  /// shared incumbent pool even with share_incumbents off (the pool is the
  /// cache's write-through front), attaches the cache to the pool and to
  /// every client session, and sessions draw/publish fingerprint-keyed
  /// proven winners across restarts.
  WarmCache* warm_cache = nullptr;
  /// Overload-shedding admission watermark: when the registry-wide count
  /// of queued + in-flight commands reaches this, *new* Submits fail with
  /// kResourceExhausted (carrying a RETRY-AFTER hint) instead of queueing —
  /// already-queued commands always finish. 0 = off.
  int max_pending_commands = 0;
  /// The RETRY-AFTER hint (milliseconds) embedded in shed responses.
  int shed_retry_after_ms = 250;
};

/// Aggregate registry counters (snapshot; see Stats()).
struct SessionRegistryStats {
  int open_clients = 0;
  /// Distinct physical dataset snapshots resident across the registry's
  /// base handle and every open client — 1 until some client's structural
  /// edit forks (the acceptance metric for the COW layer).
  int resident_dataset_copies = 0;
  /// Commands fully executed (callback delivered), across all clients.
  int64_t commands_executed = 0;
  /// Copy-on-write forks performed by clients since the registry opened.
  int64_t dataset_forks = 0;
  /// Cross-client shared incumbent pool counters (all 0 when
  /// ServerOptions::share_incumbents is off).
  int shared_pool_size = 0;
  int64_t shared_publishes = 0;
  int64_t shared_draws = 0;
  /// Commands queued or in flight right now (the shedding watermark input).
  int pending_commands = 0;
  /// Submits rejected by the overload-shedding admission gate.
  int64_t commands_shed = 0;
  /// Close accounting: graceful (wire `close` / quit — the queue finished
  /// first) vs aborted (EOF without quit, eviction, cancel-style Close).
  /// Distinct so chaos tests can assert a vanished peer was *aborted*.
  int64_t closes_graceful = 0;
  int64_t closes_aborted = 0;
  /// Warm-cache counters, summed over this registry's sessions (live +
  /// closed — all 0 when ServerOptions::warm_cache is null). Hit = a solve
  /// drew >= 1 exact-fingerprint entry; demotion = a mismatched entry
  /// handed out as a revalidation candidate, never a bound.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_demotions = 0;
  int64_t cache_publishes = 0;
};

/// Per-command completion signature shared by SessionRegistry and the
/// RegistryRouter layered over it (see server/registry_router.h): the
/// outcome of one edit+solve, or the edit's Status error. Runs on a pool
/// thread.
using SessionCallback =
    std::function<void(const std::string& client,
                       const Result<SessionStepOutcome>& outcome)>;

class SessionRegistry {
 public:
  /// One registry per served dataset+ranking. `labels` resolve the script
  /// grammar's `order` commands (one per tuple, as in CliProblem).
  SessionRegistry(SharedDataset data, Ranking given,
                  std::vector<std::string> labels, ServerOptions options);
  /// Cancels every client, drains all strands, then frees the sessions.
  ~SessionRegistry();

  SessionRegistry(const SessionRegistry&) = delete;
  SessionRegistry& operator=(const SessionRegistry&) = delete;

  /// Per-command completion: the outcome of one edit+solve, or the edit's
  /// Status error (the session stays open and intact either way). Runs on
  /// a pool thread; must not call Close/Drain (deadlock — the strand would
  /// wait on itself).
  using Callback = SessionCallback;

  /// Creates a client session sharing the registry's dataset snapshot.
  /// kAlreadyExists for a live name, kInvalidArgument for an empty or
  /// reserved name (the wire verbs), kResourceExhausted at max_clients.
  Status Open(const std::string& client);

  // ---------------------------------------------------- crash recovery
  /// Open() plus the recovered-unadopted mark: the session was rebuilt
  /// from the journal and no live connection owns it yet. The next wire
  /// `open` of the same name *adopts* it (state intact) instead of
  /// failing kAlreadyExists. Used only by RegistryRouter's journal replay.
  Status OpenRecovered(const std::string& client);
  /// Claims a recovered-unadopted client: clears the mark and returns
  /// true. False when the client is unknown or was opened normally (the
  /// caller then reports the usual kAlreadyExists).
  bool Adopt(const std::string& client);
  /// Applies one journaled command's *edit* to the client's session — no
  /// solve, no journaling, no strand (recovery runs before serving
  /// starts, single-threaded). Replaying the same edits through the same
  /// ApplySessionCommand path the live server used reproduces the exact
  /// constraint state; incumbents return lazily via SharedIncumbentPool.
  Status ReplayEdit(const std::string& client, const SessionCommand& cmd);

  /// Enqueues one command onto the client's strand. The callback fires
  /// after the edit+solve completes (or the edit fails). kNotFound for an
  /// unknown/closing client.
  Status Submit(const std::string& client, SessionCommand command,
                Callback done);

  /// Cooperatively cancels the client's in-flight solve (it returns
  /// budget-limited, incumbent kept); for an idle client the *next*
  /// command is cancelled instead — the flag is consumed by exactly one
  /// command, so commands queued behind it run normally. Pair with Close
  /// to shed the queue. No-op for unknown clients.
  void Cancel(const std::string& client);

  /// Closes a client and frees its session (and snapshot refcount).
  /// Abort mode (default): cancels the in-flight solve and fails every
  /// queued command. Graceful mode (`graceful = true`, what the wire
  /// protocol's `close` uses — the same stream submitted those commands):
  /// stops accepting new commands, lets the queue finish, then closes.
  /// Both block until the strand is idle. kNotFound for unknown clients.
  /// Do not call from a Callback.
  Status Close(const std::string& client, bool graceful = false);

  /// Blocks until every strand is idle and every queue empty. Do not call
  /// from a Callback.
  void Drain();

  SessionRegistryStats Stats() const;
  const std::vector<std::string>& labels() const { return labels_; }

  /// True iff any client has a command running or queued (a non-blocking
  /// peek — the answer can be stale by the time the caller acts on it; the
  /// router's LRU eviction treats it as best-effort).
  bool Busy() const;
  /// True iff `client` exists and has a command running or queued. False
  /// for unknown clients.
  bool ClientBusy(const std::string& client) const;

 private:
  struct Client {
    /// Outlives the session (the session's solver options point at it).
    std::unique_ptr<std::atomic<bool>> cancel;
    std::unique_ptr<SolveSession> session;
    std::deque<std::pair<SessionCommand, Callback>> queue;
    bool running = false;  // a pool task is draining this strand
    bool closing = false;   // abort: strand drops queued commands
    bool draining = false;  // no new submits; queued commands still run
    /// Rebuilt from the journal, not yet claimed by a connection (see
    /// OpenRecovered/Adopt).
    bool recovered = false;
    /// Mirrors published under mu_ after each command, so Stats() never
    /// reads the session while its strand mutates it off-lock.
    const void* snapshot_id = nullptr;
    int64_t dataset_forks = 0;
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
    int64_t cache_demotions = 0;
    int64_t cache_publishes = 0;
  };

  /// The strand body: drains `client`'s queue one command at a time.
  void RunStrand(const std::string& name, std::shared_ptr<Client> client);
  /// Open with or without the recovered mark (shared implementation).
  Status OpenInternal(const std::string& client, bool recovered);

  SharedDataset base_;
  /// COW handle: every client session shares this one physical ranking
  /// buffer (the SharedDataset treatment at ranking granularity).
  SharedRanking given_;
  std::vector<std::string> labels_;
  ServerOptions options_;
  /// Cross-client incumbent pool (null when sharing is off). Declared
  /// before pool_ and destroyed after the sessions (the destructor clears
  /// clients_ first), so no strand ever touches a dead pool.
  std::unique_ptr<SharedIncumbentPool> shared_pool_;
  ThreadPool pool_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::map<std::string, std::shared_ptr<Client>> clients_;
  int64_t commands_executed_ = 0;
  /// Counters retired from since-closed clients (Stats() adds the open
  /// clients' live mirrors, keeping the totals cumulative).
  int64_t forks_retired_ = 0;
  int64_t cache_hits_retired_ = 0;
  int64_t cache_misses_retired_ = 0;
  int64_t cache_demotions_retired_ = 0;
  int64_t cache_publishes_retired_ = 0;
  /// Queued + in-flight commands across all clients (shedding input).
  int pending_commands_ = 0;
  int64_t commands_shed_ = 0;
  int64_t closes_graceful_ = 0;
  int64_t closes_aborted_ = 0;
};

}  // namespace rankhow

#endif  // RANKHOW_SERVER_SESSION_REGISTRY_H_
