#include "server/session_registry.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>

#include "util/fault.h"
#include "util/string_util.h"

namespace rankhow {

namespace {

/// Wire verbs; a client may not take one as its name (see wire.cc).
bool IsReservedClientName(const std::string& name) {
  return name == "open" || name == "close" || name == "stats" ||
         name == "quit" || name == "deadline";
}

Status ClosedStatus() {
  return Status::ResourceExhausted("session closed before the command ran");
}

}  // namespace

SessionRegistry::SessionRegistry(SharedDataset data, Ranking given,
                                 std::vector<std::string> labels,
                                 ServerOptions options)
    : base_(std::move(data)),
      given_(SharedRanking(std::move(given))),
      labels_(std::move(labels)),
      options_(std::move(options)),
      pool_(ThreadPool::ResolveThreadCount(options_.num_workers)) {
  // One strand solves serially; the pool supplies the parallelism.
  options_.solver.num_threads = 1;
  // The warm cache publishes through the shared pool (its write-through
  // front), so a cache-backed registry always has a pool even when
  // cross-client sharing is off.
  if (options_.share_incumbents || options_.warm_cache != nullptr) {
    shared_pool_ =
        std::make_unique<SharedIncumbentPool>(options_.shared_pool_capacity);
    if (options_.warm_cache != nullptr) {
      shared_pool_->AttachWarmCache(options_.warm_cache);
    }
  }
}

SessionRegistry::~SessionRegistry() {
  // Cancel everything, fail whatever never ran, wait for the strands.
  std::vector<std::pair<std::string, Callback>> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, client] : clients_) {
      client->closing = true;
      client->cancel->store(true, std::memory_order_relaxed);
      if (!client->running) {
        while (!client->queue.empty()) {
          dropped.emplace_back(name, std::move(client->queue.front().second));
          client->queue.pop_front();
          --pending_commands_;
        }
      }
    }
  }
  for (auto& [name, cb] : dropped) {
    if (cb) cb(name, ClosedStatus());
  }
  Drain();
  // Sessions are destroyed before pool_ (member order), after all strands
  // returned — no task can touch a dead session.
  std::lock_guard<std::mutex> lock(mu_);
  clients_.clear();
}

Status SessionRegistry::Open(const std::string& client) {
  return OpenInternal(client, /*recovered=*/false);
}

Status SessionRegistry::OpenRecovered(const std::string& client) {
  return OpenInternal(client, /*recovered=*/true);
}

Status SessionRegistry::OpenInternal(const std::string& client,
                                     bool recovered) {
  if (client.empty() || IsReservedClientName(client)) {
    return Status::Invalid("bad client name '" + client +
                           "' (non-empty, not a wire verb)");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (clients_.count(client) > 0) {
      return Status::AlreadyExists("client already open: " + client);
    }
    if (static_cast<int>(clients_.size()) >= options_.max_clients) {
      return Status::ResourceExhausted(
          "registry is at max_clients=" +
          std::to_string(options_.max_clients));
    }
    auto entry = std::make_shared<Client>();
    entry->cancel = std::make_unique<std::atomic<bool>>(false);
    entry->recovered = recovered;
    RankHowOptions solver = options_.solver;
    solver.cancel = entry->cancel.get();
    // Handle copies = one refcount bump each: the new session reads the
    // registry's dataset and ranking snapshots until it forks.
    entry->session = std::make_unique<SolveSession>(
        SharedDataset(base_), SharedRanking(given_), solver);
    RH_RETURN_NOT_OK(entry->session->SetObjective(options_.objective));
    if (shared_pool_ != nullptr) {
      entry->session->SetSharedIncumbentPool(shared_pool_.get());
    }
    if (options_.warm_cache != nullptr) {
      entry->session->AttachWarmCache(options_.warm_cache);
    }
    entry->snapshot_id = entry->session->shared_data().snapshot_id();
    clients_.emplace(client, std::move(entry));
  }
  // Journal off-lock: the append may fsync (with backoff), and nothing
  // here needs mu_ — the journal has its own lock. During recovery the
  // journal's recording gate is off, so replayed opens don't re-journal.
  if (options_.journal != nullptr) options_.journal->LogOpen(client);
  return Status();
}

bool SessionRegistry::Adopt(const std::string& client) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clients_.find(client);
  if (it == clients_.end() || !it->second->recovered) return false;
  it->second->recovered = false;
  return true;
}

Status SessionRegistry::ReplayEdit(const std::string& client,
                                   const SessionCommand& cmd) {
  std::shared_ptr<Client> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = clients_.find(client);
    if (it == clients_.end()) {
      return Status::NotFound("no open client named " + client);
    }
    entry = it->second;
  }
  // Single-threaded recovery: no strand is running, so touching the
  // session off-lock is safe (mirrors are refreshed below for Stats()).
  RH_RETURN_NOT_OK(ApplySessionCommand(entry->session.get(), cmd, labels_));
  std::lock_guard<std::mutex> lock(mu_);
  const SolveSessionStats& st = entry->session->stats();
  entry->snapshot_id = entry->session->shared_data().snapshot_id();
  entry->dataset_forks = st.dataset_forks;
  entry->cache_hits = st.cache_hits;
  entry->cache_misses = st.cache_misses;
  entry->cache_demotions = st.cache_demotions;
  entry->cache_publishes = st.cache_publishes;
  return Status();
}

Status SessionRegistry::Submit(const std::string& client,
                               SessionCommand command, Callback done) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clients_.find(client);
  if (it == clients_.end() || it->second->closing || it->second->draining) {
    return Status::NotFound("no open client named " + client);
  }
  // Overload shedding: reject *new* work at the watermark with a retry
  // hint, before it ever queues — commands already accepted always run.
  if (options_.max_pending_commands > 0 &&
      pending_commands_ >= options_.max_pending_commands) {
    ++commands_shed_;
    return Status::ResourceExhausted(
        "server overloaded (" + std::to_string(pending_commands_) +
        " pending commands) RETRY-AFTER=" +
        std::to_string(options_.shed_retry_after_ms) + "ms");
  }
  std::shared_ptr<Client> entry = it->second;
  entry->queue.emplace_back(std::move(command), std::move(done));
  ++pending_commands_;
  if (!entry->running) {
    entry->running = true;
    pool_.Submit([this, client, entry] { RunStrand(client, entry); });
  }
  return Status();
}

void SessionRegistry::RunStrand(const std::string& name,
                                std::shared_ptr<Client> client) {
  for (;;) {
    SessionCommand command;
    Callback done;
    bool dropped = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (client->queue.empty()) {
        client->running = false;
        idle_cv_.notify_all();
        return;
      }
      command = std::move(client->queue.front().first);
      done = std::move(client->queue.front().second);
      client->queue.pop_front();
      dropped = client->closing;
      if (dropped) --pending_commands_;
    }
    if (dropped) {
      if (done) done(name, ClosedStatus());
      continue;
    }
    // Chaos hook: an armed strand-delay widens the window between dequeue
    // and execution so tests can race kills/cancels deterministically.
    {
      FaultInjector& faults = FaultInjector::Global();
      if (faults.Hit(faults::kStrandDelayMs)) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(faults.Param(faults::kStrandDelayMs)));
      }
    }
    bool edit_applied = false;
    Result<SessionStepOutcome> outcome = ExecuteSessionCommand(
        client->session.get(), command, labels_, &edit_applied);
    // Acked ⊆ journaled: the edit's journal record lands (and, per the
    // fsync policy, syncs) before the completion callback can observe
    // success — a crash after the ack never loses an acked edit beyond
    // the configured batching window.
    if (edit_applied && options_.journal != nullptr) {
      options_.journal->LogCommand(name, command);
    }
    // Consume the cancel flag: it targets the command that was in flight
    // when Cancel() fired (or, for an idle client, the next one — the one
    // that just ran), never the commands queued behind it. Clearing after
    // execution means a Cancel racing the tail of a solve is spent here
    // rather than poisoning every future solve; that one-command
    // imprecision is inherent to cooperative cancellation.
    client->cancel->store(false, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Publish the post-command mirrors so Stats() never touches the
      // session object itself (the strand mutates it outside mu_).
      const SolveSessionStats& st = client->session->stats();
      client->snapshot_id = client->session->shared_data().snapshot_id();
      client->dataset_forks = st.dataset_forks;
      client->cache_hits = st.cache_hits;
      client->cache_misses = st.cache_misses;
      client->cache_demotions = st.cache_demotions;
      client->cache_publishes = st.cache_publishes;
      ++commands_executed_;
      --pending_commands_;
    }
    if (done) done(name, outcome);
  }
}

void SessionRegistry::Cancel(const std::string& client) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clients_.find(client);
  if (it != clients_.end()) {
    it->second->cancel->store(true, std::memory_order_relaxed);
  }
}

Status SessionRegistry::Close(const std::string& client, bool graceful) {
  std::shared_ptr<Client> entry;
  std::vector<Callback> dropped;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = clients_.find(client);
    if (it == clients_.end()) {
      return Status::NotFound("no open client named " + client);
    }
    entry = it->second;
    entry->draining = true;  // no new submits either way
    if (!graceful) {
      entry->closing = true;
      entry->cancel->store(true, std::memory_order_relaxed);
      if (!entry->running) {
        // Idle strand: nothing will drain the queue — fail it here.
        while (!entry->queue.empty()) {
          dropped.push_back(std::move(entry->queue.front().second));
          entry->queue.pop_front();
          --pending_commands_;
        }
      }
    }
  }
  for (Callback& cb : dropped) {
    if (cb) cb(client, ClosedStatus());
  }
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&entry] {
    return !entry->running && entry->queue.empty();
  });
  // Re-check identity before erasing: a concurrent Close may have finished
  // first (and a third party may even have re-Opened the name) — erasing
  // by name alone would destroy the wrong, live client and double-count
  // the retired forks.
  auto again = clients_.find(client);
  bool erased = false;
  if (again != clients_.end() && again->second == entry) {
    // Keep Stats() cumulative across closed clients.
    forks_retired_ += entry->dataset_forks;
    cache_hits_retired_ += entry->cache_hits;
    cache_misses_retired_ += entry->cache_misses;
    cache_demotions_retired_ += entry->cache_demotions;
    cache_publishes_retired_ += entry->cache_publishes;
    clients_.erase(again);
    erased = true;
    if (graceful) {
      ++closes_graceful_;
    } else {
      ++closes_aborted_;
    }
  }
  lock.unlock();
  if (erased && options_.journal != nullptr) options_.journal->LogClose(client);
  return Status();
}

void SessionRegistry::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    for (const auto& [name, client] : clients_) {
      (void)name;
      if (client->running || !client->queue.empty()) return false;
    }
    return true;
  });
}

SessionRegistryStats SessionRegistry::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SessionRegistryStats stats;
  stats.open_clients = static_cast<int>(clients_.size());
  stats.commands_executed = commands_executed_;
  std::set<const void*> snapshots;
  snapshots.insert(base_.snapshot_id());
  stats.dataset_forks = forks_retired_;
  stats.cache_hits = cache_hits_retired_;
  stats.cache_misses = cache_misses_retired_;
  stats.cache_demotions = cache_demotions_retired_;
  stats.cache_publishes = cache_publishes_retired_;
  for (const auto& [name, client] : clients_) {
    (void)name;
    if (client->snapshot_id != nullptr) snapshots.insert(client->snapshot_id);
    stats.dataset_forks += client->dataset_forks;
    stats.cache_hits += client->cache_hits;
    stats.cache_misses += client->cache_misses;
    stats.cache_demotions += client->cache_demotions;
    stats.cache_publishes += client->cache_publishes;
  }
  stats.resident_dataset_copies = static_cast<int>(snapshots.size());
  stats.pending_commands = pending_commands_;
  stats.commands_shed = commands_shed_;
  stats.closes_graceful = closes_graceful_;
  stats.closes_aborted = closes_aborted_;
  if (shared_pool_ != nullptr) {
    // The pool has its own lock; draw/publish totals come from it rather
    // than per-session stats so closed clients stay counted.
    SharedIncumbentPoolStats pool = shared_pool_->Stats();
    stats.shared_pool_size = pool.size;
    stats.shared_publishes = pool.published;
    stats.shared_draws = pool.drawn;
  }
  return stats;
}

bool SessionRegistry::Busy() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, client] : clients_) {
    (void)name;
    if (client->running || !client->queue.empty()) return true;
  }
  return false;
}

bool SessionRegistry::ClientBusy(const std::string& client) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clients_.find(client);
  return it != clients_.end() &&
         (it->second->running || !it->second->queue.empty());
}

}  // namespace rankhow
