#include "server/registry_router.h"

#include <algorithm>
#include <utility>

namespace rankhow {

RegistryRouter::RegistryRouter(RouterOptions options)
    : options_(std::move(options)),
      default_dataset_(options_.default_dataset) {}

RegistryRouter::~RegistryRouter() {
  // Registries drain themselves in their destructors; detach them under
  // the lock, destroy outside (a strand callback may be calling Submit —
  // it holds a shared_ptr, so the last release happens off our lock).
  std::vector<std::shared_ptr<SessionRegistry>> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, entry] : catalog_) {
      (void)id;
      if (entry.registry != nullptr) doomed.push_back(std::move(entry.registry));
    }
    catalog_.clear();
    routes_.clear();
  }
  doomed.clear();
}

Status RegistryRouter::RegisterDataset(const std::string& id, Loader loader) {
  if (id.empty()) return Status::Invalid("dataset id must be non-empty");
  if (loader == nullptr) {
    return Status::Invalid("dataset " + id + " has no loader");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (catalog_.count(id) > 0) {
    return Status::AlreadyExists("dataset already registered: " + id);
  }
  CatalogEntry entry;
  entry.loader = std::move(loader);
  catalog_.emplace(id, std::move(entry));
  if (default_dataset_.empty()) default_dataset_ = id;
  return Status();
}

void RegistryRouter::EvictIdleSessionsLocked(
    std::unique_lock<std::mutex>& lock) {
  // Pick LRU idle victims until one slot frees up (the caller is opening
  // exactly one session). Busy-ness is a best-effort peek: a command
  // racing the eviction fails with the same "session closed" status an
  // explicit Close produces.
  while (static_cast<int>(routes_.size()) >= options_.max_open_sessions) {
    std::string victim;
    uint64_t oldest = 0;
    std::shared_ptr<SessionRegistry> registry;
    for (const auto& [name, route] : routes_) {
      auto it = catalog_.find(route.dataset);
      if (it == catalog_.end() || it->second.registry == nullptr) continue;
      if (it->second.registry->ClientBusy(name)) continue;
      if (victim.empty() || route.last_used < oldest) {
        victim = name;
        oldest = route.last_used;
        registry = it->second.registry;
      }
    }
    if (victim.empty()) return;  // everything is busy; the caller fails
    routes_.erase(victim);
    ++sessions_evicted_;
    lock.unlock();
    // Abort mode: the victim was idle (queue empty), so this just frees
    // the session. kNotFound (a concurrent Close won) is fine.
    (void)registry->Close(victim, /*graceful=*/false);
    lock.lock();
  }
}

Status RegistryRouter::Open(const std::string& client,
                            const std::string& dataset_id) {
  std::unique_lock<std::mutex> lock(mu_);
  const std::string dataset =
      dataset_id.empty() ? default_dataset_ : dataset_id;
  if (dataset.empty()) return Status::NotFound("router has no datasets");
  auto it = catalog_.find(dataset);
  if (it == catalog_.end()) {
    return Status::NotFound("unknown dataset id: " + dataset);
  }
  if (routes_.count(client) > 0) {
    return Status::AlreadyExists("client already open: " + client);
  }

  if (it->second.registry == nullptr) {
    // Lazy load, off the lock (CSV parsing + registry construction can be
    // slow). Tolerate the benign race where a concurrent Open loads the
    // same dataset first: the loser's bundle is dropped.
    Loader loader = it->second.loader;
    lock.unlock();
    Result<DatasetBundle> bundle = loader();
    std::shared_ptr<SessionRegistry> fresh;
    if (bundle.ok()) {
      fresh = std::make_shared<SessionRegistry>(
          std::move(bundle->data), std::move(bundle->given),
          std::move(bundle->labels), options_.server);
    }
    lock.lock();
    if (!bundle.ok()) {
      return Status(bundle.status().code(),
                    "loading dataset " + dataset + ": " +
                        bundle.status().message());
    }
    it = catalog_.find(dataset);
    if (it == catalog_.end()) {
      return Status::NotFound("dataset evicted while loading: " + dataset);
    }
    if (it->second.registry == nullptr) {
      it->second.registry = std::move(fresh);
      ++datasets_loaded_;
      // Enforce the resident budget: LRU-evict an idle zero-client
      // registry (never the one just installed); if every other resident
      // registry still has clients, roll back this load and fail.
      std::vector<std::shared_ptr<SessionRegistry>> doomed;
      auto resident = [this] {
        int count = 0;
        for (const auto& [id, entry] : catalog_) {
          (void)id;
          if (entry.registry != nullptr) ++count;
        }
        return count;
      };
      while (resident() > options_.max_resident_registries) {
        std::map<std::string, CatalogEntry>::iterator victim = catalog_.end();
        for (auto cit = catalog_.begin(); cit != catalog_.end(); ++cit) {
          if (cit->second.registry == nullptr || cit->first == dataset) {
            continue;
          }
          if (cit->second.registry->Stats().open_clients > 0 ||
              cit->second.registry->Busy()) {
            continue;
          }
          if (victim == catalog_.end() ||
              cit->second.last_used < victim->second.last_used) {
            victim = cit;
          }
        }
        if (victim == catalog_.end()) {
          // Roll the load back (datasets_loaded_ keeps counting the loader
          // invocation — it is the lazy-load cost metric, not residency).
          doomed.push_back(std::move(it->second.registry));
          it->second.registry = nullptr;
          lock.unlock();
          doomed.clear();
          return Status::ResourceExhausted(
              "router is at max_resident_registries=" +
              std::to_string(options_.max_resident_registries) +
              " and every resident dataset has open clients");
        }
        SessionRegistryStats retired = victim->second.registry->Stats();
        commands_retired_ += retired.commands_executed;
        forks_retired_ += retired.dataset_forks;
        shared_publishes_retired_ += retired.shared_publishes;
        shared_draws_retired_ += retired.shared_draws;
        ++registries_evicted_;
        doomed.push_back(std::move(victim->second.registry));
        victim->second.registry = nullptr;
      }
      if (!doomed.empty()) {
        // Destroy outside the lock: a registry destructor drains strands.
        lock.unlock();
        doomed.clear();
        lock.lock();
        it = catalog_.find(dataset);
        if (it == catalog_.end() || it->second.registry == nullptr) {
          return Status::NotFound("dataset evicted while loading: " +
                                  dataset);
        }
      }
    }
    // else: a concurrent Open won the load; `fresh` (if any) dies with
    // this scope, after we release the lock below.
    if (routes_.count(client) > 0) {
      return Status::AlreadyExists("client already open: " + client);
    }
  }

  // Session budget, enforced at the point of commitment: the lock may
  // have been dropped above (lazy load, registry eviction), so a check
  // any earlier can go stale while a concurrent Open fills the budget.
  if (static_cast<int>(routes_.size()) >= options_.max_open_sessions) {
    EvictIdleSessionsLocked(lock);
    // Re-resolve everything: eviction drops the lock, so the world moved
    // (a concurrent Open may even have evicted this zero-client registry).
    it = catalog_.find(dataset);
    if (it == catalog_.end() || it->second.registry == nullptr) {
      return Status::NotFound("dataset evicted while opening: " + dataset);
    }
    if (routes_.count(client) > 0) {
      return Status::AlreadyExists("client already open: " + client);
    }
    if (static_cast<int>(routes_.size()) >= options_.max_open_sessions) {
      return Status::ResourceExhausted(
          "router is at max_open_sessions=" +
          std::to_string(options_.max_open_sessions) +
          " and every session is busy");
    }
  }

  std::shared_ptr<SessionRegistry> registry = it->second.registry;
  RH_RETURN_NOT_OK(registry->Open(client));
  ++clock_;
  routes_[client] = Route{dataset, clock_};
  it->second.last_used = clock_;
  return Status();
}

std::shared_ptr<SessionRegistry> RegistryRouter::RouteLocked(
    const std::string& client) {
  auto route = routes_.find(client);
  if (route == routes_.end()) return nullptr;
  auto entry = catalog_.find(route->second.dataset);
  if (entry == catalog_.end() || entry->second.registry == nullptr) {
    return nullptr;
  }
  ++clock_;
  route->second.last_used = clock_;
  entry->second.last_used = clock_;
  return entry->second.registry;
}

Status RegistryRouter::Submit(const std::string& client,
                              SessionCommand command, SessionCallback done) {
  std::shared_ptr<SessionRegistry> registry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    registry = RouteLocked(client);
  }
  if (registry == nullptr) {
    return Status::NotFound("no open client named " + client);
  }
  return registry->Submit(client, std::move(command), std::move(done));
}

void RegistryRouter::Cancel(const std::string& client) {
  std::shared_ptr<SessionRegistry> registry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    registry = RouteLocked(client);
  }
  if (registry != nullptr) registry->Cancel(client);
}

Status RegistryRouter::Close(const std::string& client, bool graceful) {
  std::shared_ptr<SessionRegistry> registry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto route = routes_.find(client);
    if (route == routes_.end()) {
      return Status::NotFound("no open client named " + client);
    }
    auto entry = catalog_.find(route->second.dataset);
    if (entry != catalog_.end()) registry = entry->second.registry;
    routes_.erase(route);
  }
  if (registry == nullptr) {
    return Status::NotFound("no open client named " + client);
  }
  return registry->Close(client, graceful);
}

void RegistryRouter::Drain() {
  std::vector<std::shared_ptr<SessionRegistry>> registries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, entry] : catalog_) {
      (void)id;
      if (entry.registry != nullptr) registries.push_back(entry.registry);
    }
  }
  for (const auto& registry : registries) registry->Drain();
}

RegistryRouterStats RegistryRouter::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistryRouterStats stats;
  stats.registered_datasets = static_cast<int>(catalog_.size());
  stats.commands_executed = commands_retired_;
  stats.dataset_forks = forks_retired_;
  stats.shared_publishes = shared_publishes_retired_;
  stats.shared_draws = shared_draws_retired_;
  stats.datasets_loaded = datasets_loaded_;
  stats.registries_evicted = registries_evicted_;
  stats.sessions_evicted = sessions_evicted_;
  for (const auto& [id, entry] : catalog_) {
    (void)id;
    if (entry.registry == nullptr) continue;
    ++stats.resident_registries;
    SessionRegistryStats r = entry.registry->Stats();
    stats.open_clients += r.open_clients;
    stats.resident_dataset_copies += r.resident_dataset_copies;
    stats.commands_executed += r.commands_executed;
    stats.dataset_forks += r.dataset_forks;
    stats.shared_publishes += r.shared_publishes;
    stats.shared_draws += r.shared_draws;
  }
  return stats;
}

std::string RegistryRouter::ClientDataset(const std::string& client) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto route = routes_.find(client);
  return route == routes_.end() ? std::string() : route->second.dataset;
}

}  // namespace rankhow
