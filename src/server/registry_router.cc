#include "server/registry_router.h"

#include <cstdio>

#include <algorithm>
#include <utility>

namespace rankhow {

RegistryRouter::RegistryRouter(RouterOptions options)
    : options_(std::move(options)),
      default_dataset_(options_.default_dataset) {
  if (!options_.warm_cache_dir.empty()) {
    Result<std::unique_ptr<WarmCache>> cache =
        WarmCache::Open(options_.warm_cache_dir, options_.warm_cache);
    if (cache.ok()) {
      warm_cache_ = cache.MoveValue();
    } else {
      // Warm starts are best-effort by design: serve cache-off, loudly.
      std::fprintf(stderr,
                   "rankhow: warm cache open failed in %s: %s "
                   "(serving cache-off)\n",
                   options_.warm_cache_dir.c_str(),
                   cache.status().message().c_str());
    }
  }
}

RegistryRouter::~RegistryRouter() {
  // Registries drain themselves in their destructors; detach them under
  // the lock, destroy outside (a strand callback may be calling Submit —
  // it holds a shared_ptr, so the last release happens off our lock).
  // Journals detach too but die strictly AFTER the registries: a draining
  // strand may still be appending through its ServerOptions::journal.
  std::vector<std::shared_ptr<SessionRegistry>> doomed;
  std::vector<std::unique_ptr<SessionJournal>> doomed_journals;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, entry] : catalog_) {
      (void)id;
      if (entry.registry != nullptr) doomed.push_back(std::move(entry.registry));
      if (entry.journal != nullptr) {
        doomed_journals.push_back(std::move(entry.journal));
      }
    }
    catalog_.clear();
    routes_.clear();
  }
  doomed.clear();
  doomed_journals.clear();
}

std::string RegistryRouter::JournalPath(const std::string& id) const {
  return options_.journal_dir + "/" + id + ".journal";
}

Status RegistryRouter::RegisterDataset(const std::string& id, Loader loader) {
  if (id.empty()) return Status::Invalid("dataset id must be non-empty");
  if (loader == nullptr) {
    return Status::Invalid("dataset " + id + " has no loader");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (catalog_.count(id) > 0) {
    return Status::AlreadyExists("dataset already registered: " + id);
  }
  CatalogEntry entry;
  entry.loader = std::move(loader);
  catalog_.emplace(id, std::move(entry));
  if (default_dataset_.empty()) default_dataset_ = id;
  return Status();
}

void RegistryRouter::EvictIdleSessionsLocked(
    std::unique_lock<std::mutex>& lock) {
  // Pick LRU idle victims until one slot frees up (the caller is opening
  // exactly one session). Busy-ness is a best-effort peek: a command
  // racing the eviction fails with the same "session closed" status an
  // explicit Close produces.
  while (static_cast<int>(routes_.size()) >= options_.max_open_sessions) {
    std::string victim;
    uint64_t oldest = 0;
    std::shared_ptr<SessionRegistry> registry;
    for (const auto& [name, route] : routes_) {
      auto it = catalog_.find(route.dataset);
      if (it == catalog_.end() || it->second.registry == nullptr) continue;
      if (it->second.registry->ClientBusy(name)) continue;
      if (victim.empty() || route.last_used < oldest) {
        victim = name;
        oldest = route.last_used;
        registry = it->second.registry;
      }
    }
    if (victim.empty()) return;  // everything is busy; the caller fails
    routes_.erase(victim);
    ++sessions_evicted_;
    lock.unlock();
    // Abort mode: the victim was idle (queue empty), so this just frees
    // the session. kNotFound (a concurrent Close won) is fine.
    (void)registry->Close(victim, /*graceful=*/false);
    lock.lock();
  }
}

Status RegistryRouter::Open(const std::string& client,
                            const std::string& dataset_id, bool* adopted) {
  if (adopted != nullptr) *adopted = false;
  std::unique_lock<std::mutex> lock(mu_);
  {
    auto route = routes_.find(client);
    if (route != routes_.end()) {
      // The name is live. If it names a journal-recovered session no
      // connection has claimed yet, this open *adopts* it — constraint
      // state intact — provided the caller didn't name a different
      // dataset ("" adopts the recovered binding).
      auto owner = catalog_.find(route->second.dataset);
      std::shared_ptr<SessionRegistry> registry =
          owner != catalog_.end() ? owner->second.registry : nullptr;
      if (registry != nullptr &&
          (dataset_id.empty() || dataset_id == route->second.dataset) &&
          registry->Adopt(client)) {
        ++clock_;
        route->second.last_used = clock_;
        owner->second.last_used = clock_;
        if (adopted != nullptr) *adopted = true;
        return Status();
      }
      return Status::AlreadyExists("client already open: " + client);
    }
  }
  const std::string dataset =
      dataset_id.empty() ? default_dataset_ : dataset_id;
  if (dataset.empty()) return Status::NotFound("router has no datasets");
  auto it = catalog_.find(dataset);
  if (it == catalog_.end()) {
    return Status::NotFound("unknown dataset id: " + dataset);
  }
  if (routes_.count(client) > 0) {
    return Status::AlreadyExists("client already open: " + client);
  }

  if (it->second.registry == nullptr) {
    // Lazy load, off the lock (CSV parsing and fingerprinting can be
    // slow). Tolerate the benign race where a concurrent Open loads the
    // same dataset first: the loser's bundle is dropped.
    Loader loader = it->second.loader;
    lock.unlock();
    Result<DatasetBundle> bundle = loader();
    std::unique_ptr<SessionJournal> fresh_journal;
    if (bundle.ok() && !options_.journal_dir.empty()) {
      const uint64_t fp = DatasetFingerprint(bundle->data.get(),
                                             bundle->given);
      Result<std::unique_ptr<SessionJournal>> journal = SessionJournal::Open(
          JournalPath(dataset), dataset, fp, options_.journal);
      if (journal.ok()) {
        fresh_journal = std::move(*journal);
      } else {
        // Durability is best-effort by design: serve without it, loudly.
        std::fprintf(stderr,
                     "rankhow: journal open failed for dataset %s: %s "
                     "(serving without durability)\n",
                     dataset.c_str(), journal.status().message().c_str());
      }
    }
    lock.lock();
    if (!bundle.ok()) {
      // A failed load answers a clean, documented kNotFound, and the
      // catalog entry stays retryable — the loader runs again on the next
      // open naming this dataset (a fixed CSV serves without a restart).
      return Status::NotFound("dataset " + dataset +
                              " unavailable (load failed: " +
                              bundle.status().message() + ")");
    }
    it = catalog_.find(dataset);
    if (it == catalog_.end()) {
      return Status::NotFound("dataset evicted while loading: " + dataset);
    }
    if (it->second.registry == nullptr) {
      // The journal survives registry evictions (and recovery may have
      // opened it first) — only install ours if the entry has none.
      if (it->second.journal == nullptr) {
        it->second.journal = std::move(fresh_journal);
      }
      ServerOptions server = options_.server;
      server.journal = it->second.journal.get();
      server.warm_cache = warm_cache_.get();
      // Constructed under the lock (unlike the load): the registry must
      // bind whichever journal the catalog entry owns, and that is only
      // knowable here.
      it->second.registry = std::make_shared<SessionRegistry>(
          std::move(bundle->data), std::move(bundle->given),
          std::move(bundle->labels), server);
      ++datasets_loaded_;
      // Enforce the resident budget: LRU-evict an idle zero-client
      // registry (never the one just installed); if every other resident
      // registry still has clients, roll back this load and fail.
      std::vector<std::shared_ptr<SessionRegistry>> doomed;
      auto resident = [this] {
        int count = 0;
        for (const auto& [id, entry] : catalog_) {
          (void)id;
          if (entry.registry != nullptr) ++count;
        }
        return count;
      };
      while (resident() > options_.max_resident_registries) {
        std::map<std::string, CatalogEntry>::iterator victim = catalog_.end();
        for (auto cit = catalog_.begin(); cit != catalog_.end(); ++cit) {
          if (cit->second.registry == nullptr || cit->first == dataset) {
            continue;
          }
          if (cit->second.registry->Stats().open_clients > 0 ||
              cit->second.registry->Busy()) {
            continue;
          }
          if (victim == catalog_.end() ||
              cit->second.last_used < victim->second.last_used) {
            victim = cit;
          }
        }
        if (victim == catalog_.end()) {
          // Roll the load back (datasets_loaded_ keeps counting the loader
          // invocation — it is the lazy-load cost metric, not residency).
          doomed.push_back(std::move(it->second.registry));
          it->second.registry = nullptr;
          lock.unlock();
          doomed.clear();
          return Status::ResourceExhausted(
              "router is at max_resident_registries=" +
              std::to_string(options_.max_resident_registries) +
              " and every resident dataset has open clients");
        }
        SessionRegistryStats retired = victim->second.registry->Stats();
        commands_retired_ += retired.commands_executed;
        forks_retired_ += retired.dataset_forks;
        shared_publishes_retired_ += retired.shared_publishes;
        shared_draws_retired_ += retired.shared_draws;
        shed_retired_ += retired.commands_shed;
        closes_graceful_retired_ += retired.closes_graceful;
        closes_aborted_retired_ += retired.closes_aborted;
        cache_hits_retired_ += retired.cache_hits;
        cache_misses_retired_ += retired.cache_misses;
        cache_demotions_retired_ += retired.cache_demotions;
        cache_publishes_retired_ += retired.cache_publishes;
        ++registries_evicted_;
        doomed.push_back(std::move(victim->second.registry));
        victim->second.registry = nullptr;
      }
      if (!doomed.empty()) {
        // Destroy outside the lock: a registry destructor drains strands.
        lock.unlock();
        doomed.clear();
        lock.lock();
        it = catalog_.find(dataset);
        if (it == catalog_.end() || it->second.registry == nullptr) {
          return Status::NotFound("dataset evicted while loading: " +
                                  dataset);
        }
      }
    }
    // else: a concurrent Open won the load; this bundle (and
    // fresh_journal, if one was opened) dies with this scope — neither
    // ever wrote anything.
    if (routes_.count(client) > 0) {
      return Status::AlreadyExists("client already open: " + client);
    }
  }

  // Session budget, enforced at the point of commitment: the lock may
  // have been dropped above (lazy load, registry eviction), so a check
  // any earlier can go stale while a concurrent Open fills the budget.
  if (static_cast<int>(routes_.size()) >= options_.max_open_sessions) {
    EvictIdleSessionsLocked(lock);
    // Re-resolve everything: eviction drops the lock, so the world moved
    // (a concurrent Open may even have evicted this zero-client registry).
    it = catalog_.find(dataset);
    if (it == catalog_.end() || it->second.registry == nullptr) {
      return Status::NotFound("dataset evicted while opening: " + dataset);
    }
    if (routes_.count(client) > 0) {
      return Status::AlreadyExists("client already open: " + client);
    }
    if (static_cast<int>(routes_.size()) >= options_.max_open_sessions) {
      return Status::ResourceExhausted(
          "router is at max_open_sessions=" +
          std::to_string(options_.max_open_sessions) +
          " and every session is busy");
    }
  }

  std::shared_ptr<SessionRegistry> registry = it->second.registry;
  RH_RETURN_NOT_OK(registry->Open(client));
  ++clock_;
  routes_[client] = Route{dataset, clock_};
  it->second.last_used = clock_;
  return Status();
}

Result<RecoverReport> RegistryRouter::RecoverFromJournals() {
  RecoverReport report;
  if (options_.journal_dir.empty()) return report;
  // Recovery runs once, at startup, before any connection is served —
  // everything below is effectively single-threaded; the lock dances are
  // only for discipline.
  std::vector<std::string> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, entry] : catalog_) {
      (void)entry;
      ids.push_back(id);
    }
  }
  for (const std::string& id : ids) {
    const std::string path = JournalPath(id);
    Result<JournalReadback> readback = SessionJournal::Read(path);
    if (!readback.ok()) {
      std::fprintf(stderr, "rankhow: journal %s unreadable: %s (skipped)\n",
                   path.c_str(), readback.status().message().c_str());
      continue;
    }
    report.replayed += readback->replayed;
    report.truncated += readback->truncated;
    report.skipped += readback->skipped;
    // Fold the record stream into the set of sessions live at the crash:
    // an open (re)creates, a close erases (a duplicate close is a no-op),
    // a command appends to its client's edit script.
    struct LiveSession {
      uint64_t fingerprint = 0;
      std::vector<std::string> commands;
    };
    std::map<std::string, LiveSession> live;
    for (const JournalRecord& record : readback->records) {
      switch (record.kind) {
        case JournalRecord::Kind::kOpen:
          live[record.client] = LiveSession{record.fingerprint, {}};
          break;
        case JournalRecord::Kind::kClose:
          live.erase(record.client);
          break;
        case JournalRecord::Kind::kCommand: {
          auto session = live.find(record.client);
          if (session != live.end()) {
            session->second.commands.push_back(record.command);
          }
          break;
        }
      }
    }
    if (live.empty()) continue;  // history, but nothing to rebuild

    Loader loader;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto entry = catalog_.find(id);
      if (entry == catalog_.end()) continue;
      if (entry->second.registry != nullptr) continue;  // already resident
      loader = entry->second.loader;
    }
    Result<DatasetBundle> bundle = loader();
    if (!bundle.ok()) {
      std::fprintf(stderr,
                   "rankhow: dataset %s failed to load during recovery: %s "
                   "(%d session(s) not rebuilt)\n",
                   id.c_str(), bundle.status().message().c_str(),
                   static_cast<int>(live.size()));
      report.replay_failures += static_cast<int64_t>(live.size());
      continue;
    }
    const uint64_t fingerprint =
        DatasetFingerprint(bundle->data.get(), bundle->given);

    // Materialize journal + registry for this dataset now, with recording
    // off so the replayed opens/edits don't re-append records the log
    // already holds.
    SessionJournal* journal = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto entry = catalog_.find(id);
      if (entry == catalog_.end() || entry->second.registry != nullptr) {
        continue;
      }
      if (entry->second.journal == nullptr) {
        Result<std::unique_ptr<SessionJournal>> opened = SessionJournal::Open(
            path, id, fingerprint, options_.journal);
        if (opened.ok()) {
          entry->second.journal = std::move(*opened);
        } else {
          std::fprintf(stderr,
                       "rankhow: journal open failed for dataset %s: %s "
                       "(recovering without durability)\n",
                       id.c_str(), opened.status().message().c_str());
        }
      }
      journal = entry->second.journal.get();
      if (journal != nullptr) journal->set_recording(false);
      ServerOptions server = options_.server;
      server.journal = journal;
      server.warm_cache = warm_cache_.get();
      entry->second.registry = std::make_shared<SessionRegistry>(
          std::move(bundle->data), std::move(bundle->given),
          std::move(bundle->labels), server);
      entry->second.last_used = ++clock_;
      ++datasets_loaded_;
    }
    std::shared_ptr<SessionRegistry> registry;
    {
      std::lock_guard<std::mutex> lock(mu_);
      registry = catalog_.find(id)->second.registry;
    }
    ++report.datasets;

    for (auto& [client, state] : live) {
      if (state.fingerprint != fingerprint) {
        // The CSV changed under the journal: replaying these edits would
        // target the wrong tuples. Refuse the session, keep the rest.
        ++report.fingerprint_mismatches;
        continue;
      }
      Status opened = registry->OpenRecovered(client);
      if (!opened.ok()) {
        ++report.replay_failures;
        continue;
      }
      bool replay_ok = true;
      for (const std::string& line : state.commands) {
        Result<std::vector<SessionCommand>> parsed = ParseSessionScript(line);
        if (!parsed.ok() || parsed->size() != 1) {
          replay_ok = false;
          break;
        }
        if (!registry->ReplayEdit(client, parsed->front()).ok()) {
          replay_ok = false;
          break;
        }
      }
      if (!replay_ok) {
        // Divergent state is worse than a lost session: drop it. The
        // journal's recording gate is off, so this close writes nothing —
        // the next recovery retries (and fails identically, harmlessly).
        ++report.replay_failures;
        (void)registry->Close(client, /*graceful=*/false);
        continue;
      }
      ++report.sessions;
      std::lock_guard<std::mutex> lock(mu_);
      routes_[client] = Route{id, ++clock_};
    }
    if (journal != nullptr) journal->set_recording(true);
  }
  std::lock_guard<std::mutex> lock(mu_);
  recovered_ = report;
  return report;
}

std::shared_ptr<SessionRegistry> RegistryRouter::RouteLocked(
    const std::string& client) {
  auto route = routes_.find(client);
  if (route == routes_.end()) return nullptr;
  auto entry = catalog_.find(route->second.dataset);
  if (entry == catalog_.end() || entry->second.registry == nullptr) {
    return nullptr;
  }
  ++clock_;
  route->second.last_used = clock_;
  entry->second.last_used = clock_;
  return entry->second.registry;
}

Status RegistryRouter::Submit(const std::string& client,
                              SessionCommand command, SessionCallback done) {
  std::shared_ptr<SessionRegistry> registry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    registry = RouteLocked(client);
  }
  if (registry == nullptr) {
    return Status::NotFound("no open client named " + client);
  }
  return registry->Submit(client, std::move(command), std::move(done));
}

void RegistryRouter::Cancel(const std::string& client) {
  std::shared_ptr<SessionRegistry> registry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    registry = RouteLocked(client);
  }
  if (registry != nullptr) registry->Cancel(client);
}

Status RegistryRouter::Close(const std::string& client, bool graceful) {
  std::shared_ptr<SessionRegistry> registry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto route = routes_.find(client);
    if (route == routes_.end()) {
      return Status::NotFound("no open client named " + client);
    }
    auto entry = catalog_.find(route->second.dataset);
    if (entry != catalog_.end()) registry = entry->second.registry;
    routes_.erase(route);
  }
  if (registry == nullptr) {
    return Status::NotFound("no open client named " + client);
  }
  return registry->Close(client, graceful);
}

void RegistryRouter::Drain() {
  std::vector<std::shared_ptr<SessionRegistry>> registries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, entry] : catalog_) {
      (void)id;
      if (entry.registry != nullptr) registries.push_back(entry.registry);
    }
  }
  for (const auto& registry : registries) registry->Drain();
}

RegistryRouterStats RegistryRouter::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistryRouterStats stats;
  stats.registered_datasets = static_cast<int>(catalog_.size());
  stats.commands_executed = commands_retired_;
  stats.dataset_forks = forks_retired_;
  stats.shared_publishes = shared_publishes_retired_;
  stats.shared_draws = shared_draws_retired_;
  stats.datasets_loaded = datasets_loaded_;
  stats.registries_evicted = registries_evicted_;
  stats.sessions_evicted = sessions_evicted_;
  stats.commands_shed = shed_retired_;
  stats.closes_graceful = closes_graceful_retired_;
  stats.closes_aborted = closes_aborted_retired_;
  stats.cache_hits = cache_hits_retired_;
  stats.cache_misses = cache_misses_retired_;
  stats.cache_demotions = cache_demotions_retired_;
  stats.cache_publishes = cache_publishes_retired_;
  stats.recovered = recovered_;
  if (warm_cache_ != nullptr) {
    WarmCacheStats c = warm_cache_->Stats();
    stats.cache_entries = c.entries;
    stats.cache_appended = c.appended;
    stats.cache_loaded = c.loaded;
    stats.cache_skipped = c.skipped;
    stats.cache_degraded = c.degraded ? 1 : 0;
  }
  for (const auto& [id, entry] : catalog_) {
    (void)id;
    if (entry.journal != nullptr) {
      JournalStats j = entry.journal->Stats();
      stats.journal_records += j.records_appended;
      stats.journal_fsyncs += j.fsyncs;
      stats.journal_fsync_failures += j.fsync_failures;
      if (j.degraded) ++stats.journal_degraded;
    }
    if (entry.registry == nullptr) continue;
    ++stats.resident_registries;
    SessionRegistryStats r = entry.registry->Stats();
    stats.open_clients += r.open_clients;
    stats.resident_dataset_copies += r.resident_dataset_copies;
    stats.commands_executed += r.commands_executed;
    stats.dataset_forks += r.dataset_forks;
    stats.shared_publishes += r.shared_publishes;
    stats.shared_draws += r.shared_draws;
    stats.pending_commands += r.pending_commands;
    stats.commands_shed += r.commands_shed;
    stats.closes_graceful += r.closes_graceful;
    stats.closes_aborted += r.closes_aborted;
    stats.cache_hits += r.cache_hits;
    stats.cache_misses += r.cache_misses;
    stats.cache_demotions += r.cache_demotions;
    stats.cache_publishes += r.cache_publishes;
  }
  return stats;
}

std::string RegistryRouter::ClientDataset(const std::string& client) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto route = routes_.find(client);
  return route == routes_.end() ? std::string() : route->second.dataset;
}

}  // namespace rankhow
