#ifndef RANKHOW_SERVER_JOURNAL_H_
#define RANKHOW_SERVER_JOURNAL_H_

/// \file journal.h
/// The write-ahead session journal (see docs/OPERATIONS.md "Durability &
/// recovery"): a per-registry append-only log of every accepted session
/// edit, plus open/close records, from which a restarted server rebuilds
/// every live session's constraint state. Solves are never journaled or
/// re-run on recovery — a session's edit script is a deterministic
/// serializable log (ROADMAP), so replaying the edits through the same
/// ApplySessionCommand path reproduces the exact solver-visible state, and
/// warm incumbents flow back lazily through the SharedIncumbentPool.
///
/// On-disk format — one text record per line:
///
///   RHJ1 <crc32-hex> <len> <payload>\n
///
/// where <len> is the payload's byte length and the CRC-32 covers exactly
/// the payload. Payloads:
///
///   open <client> <dataset> <fingerprint-hex>   session opened
///   close <client>                              session closed
///   cmd <client> <session-script line>          accepted edit, in the PR 3
///                                               grammar verbatim
///                                               (FormatSessionCommand)
///
/// Read-back tolerates the failure modes an append-only log actually has:
/// a torn final record (the crash landed mid-write) is truncated away and
/// counted; a CRC-corrupt record is skipped and counted; everything intact
/// replays. Records after a skipped one still replay — framing is
/// line-synchronized, so one bad sector never severs the tail.
///
/// Write path: appends go to an O_APPEND fd with fsync batching
/// (fsync_every records; 1 = every record, the strict-durability mode the
/// overhead bench prices). fsync/rotate failures retry under bounded
/// exponential backoff and then degrade LOUDLY to journal-off mode —
/// stderr, Stats().degraded — rather than ever blocking or failing a
/// solve: durability is best-effort by design, serving is not.
///
/// Rotation: the active segment rotates to `<path>.<seq>` past
/// rotate_bytes; Read() replays rotated segments in sequence order, then
/// the active one.
///
/// Thread-safety: fully internally locked (strands of one registry append
/// concurrently).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "app/cli_driver.h"
#include "core/warm_cache.h"
#include "data/dataset.h"
#include "ranking/ranking.h"
#include "util/status.h"

#include <mutex>

namespace rankhow {

struct JournalOptions {
  /// fsync after every N appended records (1 = every record, 0 = never —
  /// the OS flushes whenever it pleases).
  int fsync_every = 32;
  /// Rotate the active segment past this many bytes (0 = never).
  int64_t rotate_bytes = 8 * 1024 * 1024;
  /// Backoff attempts on fsync/rotate failure (1ms, 2ms, 4ms, ...) before
  /// degrading to journal-off mode.
  int max_retries = 5;
};

/// Writer-side counters (snapshot; the wire stats line surfaces these).
struct JournalStats {
  int64_t records_appended = 0;
  int64_t fsyncs = 0;
  int64_t fsync_failures = 0;  // individual failed attempts (pre-backoff)
  int64_t rotations = 0;
  /// Journal-off mode: backoff exhausted; appends are dropped from here on
  /// (loudly — this bit is the "loudly" part, next to the stderr line).
  bool degraded = false;
};

/// One intact record read back from disk.
struct JournalRecord {
  enum class Kind { kOpen, kClose, kCommand };
  Kind kind = Kind::kCommand;
  std::string client;
  std::string dataset;       // kOpen
  uint64_t fingerprint = 0;  // kOpen
  std::string command;       // kCommand: the session-script line
};

/// Read-back outcome: the intact records plus the torn/corrupt accounting
/// the `recover` stats section reports.
struct JournalReadback {
  std::vector<JournalRecord> records;
  int64_t replayed = 0;   // == records.size()
  int64_t skipped = 0;    // CRC/framing-corrupt records dropped
  int64_t truncated = 0;  // torn trailing records dropped (no newline)
};

/// CRC-32 (IEEE, zlib-compatible) of the payload bytes. Delegates to
/// FrameCrc32 (core/warm_cache.h) — the journal and the warm cache share
/// one framing checksum; DatasetFingerprint lives there too so the warm
/// cache's fingerprints and the journal's open-record stamps agree.
uint32_t JournalCrc32(const std::string& payload);

class SessionJournal {
 public:
  /// Opens (creates or appends to) the active segment at `path`. The
  /// dataset/fingerprint identity is stamped into every open record this
  /// journal writes.
  static Result<std::unique_ptr<SessionJournal>> Open(
      const std::string& path, const std::string& dataset,
      uint64_t fingerprint, JournalOptions options = JournalOptions());

  /// Flushes and fsyncs best-effort (a clean shutdown loses nothing).
  ~SessionJournal();

  SessionJournal(const SessionJournal&) = delete;
  SessionJournal& operator=(const SessionJournal&) = delete;

  void LogOpen(const std::string& client);
  void LogClose(const std::string& client);
  /// Appends one accepted command in the script grammar
  /// (FormatSessionCommand). Hosts the crash-before/after-journal-append
  /// fault points.
  void LogCommand(const std::string& client, const SessionCommand& cmd);

  /// Forces the buffered tail to disk now (rotation/shutdown path).
  void Sync();

  /// Recording gate: recovery replays with recording off so replayed
  /// opens/edits don't re-journal records the log already holds.
  bool recording() const;
  void set_recording(bool on);

  JournalStats Stats() const;
  const std::string& path() const { return path_; }
  const std::string& dataset() const { return dataset_; }
  uint64_t fingerprint() const { return fingerprint_; }

  /// Reads back `path` plus its rotated segments `<path>.<seq>` in write
  /// order. A missing file is an empty readback, not an error (a fresh
  /// server has no history).
  static Result<JournalReadback> Read(const std::string& path);

 private:
  SessionJournal(int fd, std::string path, std::string dataset,
                 uint64_t fingerprint, JournalOptions options,
                 int64_t active_bytes, int next_segment);

  /// Appends one framed record; all failure handling (backoff,
  /// degradation, rotation) lives here. Must hold mu_.
  void AppendLocked(const std::string& payload);
  /// fsync with bounded backoff; flips degraded_ when it never sticks.
  void FsyncLocked();
  void RotateLocked();

  std::string path_;
  std::string dataset_;
  uint64_t fingerprint_ = 0;
  JournalOptions options_;

  mutable std::mutex mu_;
  int fd_ = -1;
  bool recording_ = true;
  bool degraded_ = false;
  int64_t active_bytes_ = 0;   // size of the active segment
  int next_segment_ = 1;       // next rotation suffix
  int unsynced_records_ = 0;   // since the last fsync
  JournalStats stats_;
};

}  // namespace rankhow

#endif  // RANKHOW_SERVER_JOURNAL_H_
