#include "server/journal.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/fault.h"
#include "util/string_util.h"

namespace rankhow {

namespace {

constexpr char kMagic[] = "RHJ1";

}  // namespace

uint32_t JournalCrc32(const std::string& payload) {
  return FrameCrc32(payload);
}

Result<std::unique_ptr<SessionJournal>> SessionJournal::Open(
    const std::string& path, const std::string& dataset,
    uint64_t fingerprint, JournalOptions options) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError("journal open(" + path +
                           "): " + std::strerror(errno));
  }
  struct stat st;
  const int64_t bytes = ::fstat(fd, &st) == 0 ? st.st_size : 0;
  // Continue the rotation numbering where a previous process left off.
  int next_segment = 1;
  while (true) {
    struct stat seg;
    const std::string candidate = path + "." + std::to_string(next_segment);
    if (::stat(candidate.c_str(), &seg) != 0) break;
    ++next_segment;
  }
  return std::unique_ptr<SessionJournal>(
      new SessionJournal(fd, path, dataset, fingerprint, options, bytes,
                         next_segment));
}

SessionJournal::SessionJournal(int fd, std::string path, std::string dataset,
                               uint64_t fingerprint, JournalOptions options,
                               int64_t active_bytes, int next_segment)
    : path_(std::move(path)),
      dataset_(std::move(dataset)),
      fingerprint_(fingerprint),
      options_(options),
      fd_(fd),
      active_bytes_(active_bytes),
      next_segment_(next_segment) {}

SessionJournal::~SessionJournal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    if (!degraded_ && unsynced_records_ > 0) {
      (void)::fsync(fd_);  // best effort; the process is leaving anyway
    }
    ::close(fd_);
    fd_ = -1;
  }
}

void SessionJournal::LogOpen(const std::string& client) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!recording_ || degraded_) return;
  AppendLocked(StrFormat("open %s %s %016llx", client.c_str(),
                         dataset_.c_str(),
                         static_cast<unsigned long long>(fingerprint_)));
}

void SessionJournal::LogClose(const std::string& client) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!recording_ || degraded_) return;
  AppendLocked("close " + client);
}

void SessionJournal::LogCommand(const std::string& client,
                                const SessionCommand& cmd) {
  FaultInjector::Global().MaybeCrash(faults::kCrashBeforeJournalAppend);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (recording_ && !degraded_) {
      AppendLocked("cmd " + client + " " + FormatSessionCommand(cmd));
    }
  }
  FaultInjector::Global().MaybeCrash(faults::kCrashAfterJournalAppend);
}

void SessionJournal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (degraded_ || fd_ < 0 || unsynced_records_ == 0) return;
  FsyncLocked();
}

bool SessionJournal::recording() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recording_;
}

void SessionJournal::set_recording(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  recording_ = on;
}

JournalStats SessionJournal::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  JournalStats stats = stats_;
  stats.degraded = degraded_;
  return stats;
}

void SessionJournal::AppendLocked(const std::string& payload) {
  if (fd_ < 0 || degraded_) return;
  const std::string record =
      StrFormat("%s %08x %d ", kMagic, JournalCrc32(payload),
                static_cast<int>(payload.size())) +
      payload + "\n";
  // O_APPEND makes each write() one atomic tail append; a crash mid-write
  // leaves at most one torn final record, which Read() truncates away.
  const char* p = record.data();
  size_t left = record.size();
  while (left > 0) {
    ssize_t n = ::write(fd_, p, left);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      // A failed append is handled like a failed fsync: this process can
      // no longer promise durability, so degrade loudly and keep serving.
      ++stats_.fsync_failures;
      degraded_ = true;
      std::fprintf(stderr,
                   "rankhow: journal %s write failed (%s): degrading to "
                   "journal-off mode\n",
                   path_.c_str(), std::strerror(errno));
      return;
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  active_bytes_ += static_cast<int64_t>(record.size());
  ++stats_.records_appended;
  ++unsynced_records_;
  if (options_.fsync_every > 0 && unsynced_records_ >= options_.fsync_every) {
    FsyncLocked();
  }
  if (!degraded_ && options_.rotate_bytes > 0 &&
      active_bytes_ >= options_.rotate_bytes) {
    RotateLocked();
  }
}

void SessionJournal::FsyncLocked() {
  // Bounded exponential backoff (1, 2, 4, ... ms), then journal-off mode.
  // Never propagates to the caller: a solve must not block on, or fail
  // because of, durability bookkeeping.
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    const bool injected =
        FaultInjector::Global().Hit(faults::kJournalFsyncFail);
    if (!injected && ::fsync(fd_) == 0) {
      unsynced_records_ = 0;
      ++stats_.fsyncs;
      return;
    }
    ++stats_.fsync_failures;
    if (attempt < options_.max_retries) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1LL << attempt));
    }
  }
  degraded_ = true;
  std::fprintf(stderr,
               "rankhow: journal %s fsync failed %d times: degrading to "
               "journal-off mode (sessions stay up, durability is lost)\n",
               path_.c_str(), options_.max_retries + 1);
}

void SessionJournal::RotateLocked() {
  // Flush the segment we are sealing first: a rotated file must be intact.
  FsyncLocked();
  if (degraded_) return;
  const std::string sealed = path_ + "." + std::to_string(next_segment_);
  const bool injected =
      FaultInjector::Global().Hit(faults::kJournalRotateFail);
  if (injected || ::rename(path_.c_str(), sealed.c_str()) != 0) {
    // Rotation is an optimization (bounded segment size), not a
    // correctness requirement — on failure keep appending to the oversize
    // active segment and retry at the next threshold crossing.
    std::fprintf(stderr,
                 "rankhow: journal rotate %s -> %s failed (%s); continuing "
                 "on the active segment\n",
                 path_.c_str(), sealed.c_str(),
                 injected ? "fault injected" : std::strerror(errno));
    active_bytes_ = 0;  // don't re-attempt on every single append
    return;
  }
  const int fresh =
      ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fresh < 0) {
    // The sealed file is safe; without a fresh segment we cannot journal.
    degraded_ = true;
    std::fprintf(stderr,
                 "rankhow: journal reopen after rotate failed (%s): "
                 "degrading to journal-off mode\n",
                 std::strerror(errno));
    return;
  }
  ::close(fd_);
  fd_ = fresh;
  active_bytes_ = 0;
  ++next_segment_;
  ++stats_.rotations;
}

namespace {

/// Parses one framed line into a record; false = corrupt (caller counts).
bool ParseRecordLine(const std::string& line, JournalRecord* out) {
  // "RHJ1 <crc8hex> <len> <payload>"
  if (!StartsWith(line, std::string(kMagic) + " ")) return false;
  const size_t crc_begin = sizeof(kMagic);  // skip "RHJ1 " (magic + space)
  const size_t crc_end = line.find(' ', crc_begin);
  if (crc_end == std::string::npos) return false;
  const size_t len_end = line.find(' ', crc_end + 1);
  if (len_end == std::string::npos) return false;
  uint32_t crc = 0;
  {
    const std::string hex = line.substr(crc_begin, crc_end - crc_begin);
    if (hex.size() != 8) return false;
    char* end = nullptr;
    crc = static_cast<uint32_t>(std::strtoul(hex.c_str(), &end, 16));
    if (end == nullptr || *end != '\0') return false;
  }
  auto len = ParseInt(line.substr(crc_end + 1, len_end - crc_end - 1));
  if (!len.ok() || *len < 0) return false;
  const std::string payload = line.substr(len_end + 1);
  if (static_cast<int64_t>(payload.size()) != *len) return false;
  if (JournalCrc32(payload) != crc) return false;

  // Payload grammar: "open C D FP" | "close C" | "cmd C <line>".
  std::vector<std::string> head = Split(payload, ' ');
  if (head.empty()) return false;
  JournalRecord record;
  if (head[0] == "open" && head.size() == 4) {
    record.kind = JournalRecord::Kind::kOpen;
    record.client = head[1];
    record.dataset = head[2];
    char* end = nullptr;
    record.fingerprint = std::strtoull(head[3].c_str(), &end, 16);
    if (end == nullptr || *end != '\0') return false;
  } else if (head[0] == "close" && head.size() == 2) {
    record.kind = JournalRecord::Kind::kClose;
    record.client = head[1];
  } else if (head[0] == "cmd" && head.size() >= 3) {
    record.kind = JournalRecord::Kind::kCommand;
    record.client = head[1];
    // The command text starts after "cmd <client> " — the space that ends
    // the client name is the first one at or past index 4.
    const size_t cmd_at = payload.find(' ', 4);
    record.command = payload.substr(cmd_at + 1);
  } else {
    return false;
  }
  *out = std::move(record);
  return true;
}

void ReadSegment(const std::string& path, JournalReadback* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return;  // missing segment = no history
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  size_t pos = 0;
  while (pos < text.size()) {
    const size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      // Torn tail: the crash landed mid-append. Everything before this
      // line is intact; the fragment is dropped and counted.
      ++out->truncated;
      break;
    }
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    JournalRecord record;
    if (ParseRecordLine(line, &record)) {
      out->records.push_back(std::move(record));
      ++out->replayed;
    } else {
      ++out->skipped;
    }
  }
}

}  // namespace

Result<JournalReadback> SessionJournal::Read(const std::string& path) {
  JournalReadback out;
  // Rotated segments first (in rotation order), then the active file —
  // the exact order the records were written.
  for (int seg = 1;; ++seg) {
    const std::string sealed = path + "." + std::to_string(seg);
    struct stat st;
    if (::stat(sealed.c_str(), &st) != 0) break;
    ReadSegment(sealed, &out);
  }
  ReadSegment(path, &out);
  return out;
}

}  // namespace rankhow
