#include "server/wire.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <functional>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <utility>

#include "net/fd_stream.h"
#include "util/string_util.h"

namespace rankhow {

namespace {

/// Splits "CLIENT rest-of-line" at the first run of whitespace.
void SplitHead(const std::string& line, std::string* head,
               std::string* tail) {
  size_t sep = line.find_first_of(" \t");
  if (sep == std::string::npos) {
    *head = line;
    tail->clear();
    return;
  }
  *head = line.substr(0, sep);
  *tail = std::string(Trim(line.substr(sep + 1)));
}

/// Folds FdStreamBuf's process-wide retry counter into the shared gauge
/// (delta since the last fold), so `stats`/`metrics` report one
/// writes_retried number covering both the reactor's partial sends and
/// the buffered-stream helpers.
void FoldStreamRetries(ServerMetrics* metrics) {
  static std::atomic<uint64_t> folded{0};
  const uint64_t total = FdStreamBuf::TotalWritesRetried();
  uint64_t prev = folded.exchange(total, std::memory_order_relaxed);
  if (total > prev) {
    metrics->writes_retried.fetch_add(static_cast<int64_t>(total - prev),
                                      std::memory_order_relaxed);
  }
}

uint64_t ElapsedUsec(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

Result<WireRequest> ParseWireLine(const std::string& raw) {
  std::string line(Trim(raw));
  if (size_t hash = line.find('#'); hash != std::string::npos) {
    line = std::string(Trim(line.substr(0, hash)));
  }
  if (line.empty()) return Status::NotFound("blank line");

  WireRequest request;
  std::string head, tail;
  SplitHead(line, &head, &tail);
  if (head == "quit" || head == "stats" || head == "metrics") {
    if (!tail.empty()) {
      return Status::Invalid("'" + head + "' takes no argument");
    }
    request.kind = head == "quit"    ? WireRequest::Kind::kQuit
                   : head == "stats" ? WireRequest::Kind::kStats
                                     : WireRequest::Kind::kMetrics;
    return request;
  }
  if (head == "open") {
    std::string client, dataset;
    SplitHead(tail, &client, &dataset);
    if (client.empty() ||
        dataset.find_first_of(" \t") != std::string::npos) {
      return Status::Invalid(
          "'open' takes a client name and an optional dataset id");
    }
    request.kind = WireRequest::Kind::kOpen;
    request.client = std::move(client);
    request.dataset = std::move(dataset);
    return request;
  }
  if (head == "deadline") {
    Result<int64_t> ms = ParseInt(tail);
    if (tail.empty() || !ms.ok() || *ms < 0) {
      return Status::Invalid(
          "'deadline' takes one non-negative millisecond count (0 restores "
          "the server default)");
    }
    request.kind = WireRequest::Kind::kDeadline;
    request.deadline_ms = *ms;
    return request;
  }
  if (head == "frame") {
    if (tail != "binary" && tail != "text") {
      return Status::Invalid("'frame' takes 'binary' or 'text'");
    }
    request.kind = WireRequest::Kind::kFrame;
    request.frame_binary = tail == "binary";
    return request;
  }
  if (head == "close") {
    if (tail.empty() || tail.find_first_of(" \t") != std::string::npos) {
      return Status::Invalid("'close' takes exactly one client name");
    }
    request.kind = WireRequest::Kind::kClose;
    request.client = tail;
    return request;
  }
  // CLIENT <session-script command>: reuse the script parser on the tail so
  // the wire grammar and --session files can never drift apart.
  if (tail.empty()) {
    return Status::Invalid("truncated request: '" + head +
                           "' (want CLIENT COMMAND..., open/close/stats/"
                           "metrics/deadline/frame/quit)");
  }
  RH_ASSIGN_OR_RETURN(std::vector<SessionCommand> parsed,
                      ParseSessionScript(tail));
  if (parsed.size() != 1) {
    return Status::Invalid("exactly one command per wire line");
  }
  request.kind = WireRequest::Kind::kCommand;
  request.client = head;
  request.command = std::move(parsed[0]);
  return request;
}

Result<WireResponseTag> ParseWireResponseTag(const std::string& response) {
  WireResponseTag tag;
  std::string head, rest;
  SplitHead(response, &head, &rest);
  if (head == "ok") {
    tag.ok = true;
  } else if (head == "err") {
    tag.ok = false;
  } else {
    return Status::Invalid("response without ok/err head: " + response);
  }
  std::string second, tail;
  SplitHead(rest, &second, &tail);
  if (second.empty()) {
    return Status::Invalid("response without a second token: " + response);
  }
  tag.client = second;
  std::string third, unused;
  SplitHead(tail, &third, &unused);
  if (StartsWith(third, "line=")) {
    Result<int64_t> line = ParseInt(third.substr(5));
    if (line.ok()) {
      tag.has_line = true;
      tag.line = *line;
    }
  }
  return tag;
}

std::string RewriteWireResponseLine(const std::string& response,
                                    int64_t line) {
  const size_t at = response.find(" line=");
  if (at == std::string::npos) return response;
  const size_t begin = at + std::strlen(" line=");
  size_t end = begin;
  while (end < response.size() && response[end] != ' ') ++end;
  return response.substr(0, begin) + std::to_string(line) +
         response.substr(end);
}

// ---------------------------------------------------------------------------
// Backends
// ---------------------------------------------------------------------------

WireBackend MakeWireBackend(SessionRegistry* registry) {
  WireBackend backend;
  backend.open = [registry](const std::string& client,
                            const std::string& dataset)
      -> Result<std::string> {
    if (!dataset.empty()) {
      return Status::Invalid(
          "this server serves a single dataset (open takes no dataset id)");
    }
    RH_RETURN_NOT_OK(registry->Open(client));
    return "open " + client;
  };
  backend.close = [registry](const std::string& client, bool graceful) {
    return registry->Close(client, graceful);
  };
  backend.submit = [registry](const std::string& client, SessionCommand cmd,
                              SessionCallback done) {
    return registry->Submit(client, std::move(cmd), std::move(done));
  };
  backend.stats_line = [registry] {
    SessionRegistryStats stats = registry->Stats();
    return StrFormat(
        "clients=%d datasets=%d commands=%lld forks=%lld "
        "shared_published=%lld shared_drawn=%lld pending=%d shed=%lld "
        "closed_graceful=%lld closed_aborted=%lld cache_hits=%lld "
        "cache_misses=%lld cache_demotions=%lld cache_publishes=%lld",
        stats.open_clients, stats.resident_dataset_copies,
        static_cast<long long>(stats.commands_executed),
        static_cast<long long>(stats.dataset_forks),
        static_cast<long long>(stats.shared_publishes),
        static_cast<long long>(stats.shared_draws), stats.pending_commands,
        static_cast<long long>(stats.commands_shed),
        static_cast<long long>(stats.closes_graceful),
        static_cast<long long>(stats.closes_aborted),
        static_cast<long long>(stats.cache_hits),
        static_cast<long long>(stats.cache_misses),
        static_cast<long long>(stats.cache_demotions),
        static_cast<long long>(stats.cache_publishes));
  };
  backend.drain_all = [registry] { registry->Drain(); };
  return backend;
}

WireBackend MakeWireBackend(RegistryRouter* router) {
  WireBackend backend;
  backend.open = [router](const std::string& client,
                          const std::string& dataset)
      -> Result<std::string> {
    bool adopted = false;
    RH_RETURN_NOT_OK(router->Open(client, dataset, &adopted));
    // Echo the dataset actually bound so `open C` reveals the default;
    // "recovered" tells a reconnecting client it adopted its journal-
    // rebuilt session, constraint state intact (see docs/PROTOCOL.md).
    return "open " + client + " " + router->ClientDataset(client) +
           (adopted ? " recovered" : "");
  };
  backend.close = [router](const std::string& client, bool graceful) {
    return router->Close(client, graceful);
  };
  backend.submit = [router](const std::string& client, SessionCommand cmd,
                            SessionCallback done) {
    return router->Submit(client, std::move(cmd), std::move(done));
  };
  backend.stats_line = [router] {
    RegistryRouterStats stats = router->Stats();
    return StrFormat(
        "registries=%d clients=%d datasets=%d commands=%lld forks=%lld "
        "loaded=%lld evicted_registries=%lld evicted_sessions=%lld "
        "shared_published=%lld shared_drawn=%lld pending=%d shed=%lld "
        "closed_graceful=%lld closed_aborted=%lld journal_records=%lld "
        "journal_fsyncs=%lld journal_fsync_failures=%lld "
        "journal_degraded=%d recover_replayed=%lld recover_truncated=%lld "
        "recover_skipped=%lld recover_sessions=%d cache_hits=%lld "
        "cache_misses=%lld cache_demotions=%lld cache_publishes=%lld "
        "cache_entries=%d cache_appended=%lld cache_loaded=%lld "
        "cache_skipped=%lld cache_degraded=%d",
        stats.resident_registries, stats.open_clients,
        stats.resident_dataset_copies,
        static_cast<long long>(stats.commands_executed),
        static_cast<long long>(stats.dataset_forks),
        static_cast<long long>(stats.datasets_loaded),
        static_cast<long long>(stats.registries_evicted),
        static_cast<long long>(stats.sessions_evicted),
        static_cast<long long>(stats.shared_publishes),
        static_cast<long long>(stats.shared_draws), stats.pending_commands,
        static_cast<long long>(stats.commands_shed),
        static_cast<long long>(stats.closes_graceful),
        static_cast<long long>(stats.closes_aborted),
        static_cast<long long>(stats.journal_records),
        static_cast<long long>(stats.journal_fsyncs),
        static_cast<long long>(stats.journal_fsync_failures),
        stats.journal_degraded,
        static_cast<long long>(stats.recovered.replayed),
        static_cast<long long>(stats.recovered.truncated),
        static_cast<long long>(stats.recovered.skipped),
        stats.recovered.sessions,
        static_cast<long long>(stats.cache_hits),
        static_cast<long long>(stats.cache_misses),
        static_cast<long long>(stats.cache_demotions),
        static_cast<long long>(stats.cache_publishes), stats.cache_entries,
        static_cast<long long>(stats.cache_appended),
        static_cast<long long>(stats.cache_loaded),
        static_cast<long long>(stats.cache_skipped), stats.cache_degraded);
  };
  backend.drain_all = [router] { router->Drain(); };
  return backend;
}

// ---------------------------------------------------------------------------
// WireConnection
// ---------------------------------------------------------------------------

WireConnection::WireConnection(std::shared_ptr<const WireBackend> backend,
                               const ServeStreamOptions& options,
                               WireConnectionHooks hooks)
    : backend_(std::move(backend)),
      options_(options),
      hooks_(std::move(hooks)) {}

void WireConnection::Emit(const std::string& message) {
  hooks_.emit(message);
}

void WireConnection::RecordVerb(WireVerb verb,
                                std::chrono::steady_clock::time_point start) {
  if (options_.metrics != nullptr) {
    options_.metrics->RecordVerb(verb, ElapsedUsec(start));
  }
}

bool WireConnection::Owns(const std::string& client) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::find(owned_.begin(), owned_.end(), client) != owned_.end();
}

bool WireConnection::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_;
}

void WireConnection::DoOpen(const WireRequest& request) {
  Result<std::string> ack = backend_->open(request.client, request.dataset);
  if (ack.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      owned_.push_back(request.client);
    }
    Emit("ok " + *ack);
  } else {
    Emit(StrFormat("err %s %s", request.client.c_str(),
                   ack.status().message().c_str()));
  }
}

void WireConnection::DoClose(const WireRequest& request) {
  // Graceful: the stream submitted this client's queued commands itself,
  // so `close` lets them finish instead of dropping them.
  Status status = backend_->close(request.client, /*graceful=*/true);
  if (status.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    owned_.erase(std::remove(owned_.begin(), owned_.end(), request.client),
                 owned_.end());
  }
  Emit(status.ok() ? "ok close " + request.client
                   : StrFormat("err %s %s", request.client.c_str(),
                               status.message().c_str()));
}

void WireConnection::DoQuit() {
  EndStream(/*graceful=*/true);
  {
    std::lock_guard<std::mutex> lock(mu_);
    finished_ = true;
  }
  // "ok quit" is the stream's last word: the owned clients' final
  // responses were emitted inside EndStream's graceful closes, which
  // block until each strand drained.
  Emit("ok quit");
  if (hooks_.request_close) hooks_.request_close();
}

void WireConnection::EndStream(bool graceful) {
  std::vector<std::string> owned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ended_) return;
    ended_ = true;
    owned.swap(owned_);
  }
  if (options_.connection_scoped_clients) {
    // Graceful (quit): queued commands finish and answer before the
    // session drops. Abort (transport death): cancel the in-flight solve,
    // fail the queue — the peer is gone anyway.
    for (const std::string& client : owned) {
      (void)backend_->close(client, graceful);
    }
  } else if (backend_->drain_all != nullptr) {
    backend_->drain_all();
  }
}

void WireConnection::HandleMessage(const std::string& payload) {
  const auto start = std::chrono::steady_clock::now();
  int line_no;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ended_) return;  // late pipelined input after quit
    line_no = ++line_no_;
  }
  auto request = ParseWireLine(payload);
  if (!request.ok()) {
    if (request.status().code() == StatusCode::kNotFound) return;  // blank
    Emit(StrFormat("err - wire line %d: %s", line_no,
                   request.status().message().c_str()));
    return;
  }
  switch (request->kind) {
    case WireRequest::Kind::kQuit: {
      auto work = [this, start] {
        DoQuit();
        RecordVerb(WireVerb::kQuit, start);
      };
      if (hooks_.defer) {
        hooks_.defer(std::move(work));
      } else {
        work();
      }
      break;
    }
    case WireRequest::Kind::kStats: {
      if (options_.metrics != nullptr) {
        FoldStreamRetries(options_.metrics);
        Emit("ok stats " + backend_->stats_line() + " " +
             options_.metrics->RenderStatsFields());
      } else {
        Emit("ok stats " + backend_->stats_line());
      }
      RecordVerb(WireVerb::kStats, start);
      break;
    }
    case WireRequest::Kind::kMetrics: {
      if (options_.metrics == nullptr) {
        Emit("err - metrics unavailable on this server");
        break;
      }
      FoldStreamRetries(options_.metrics);
      Emit("ok metrics " + options_.metrics->RenderWireLine());
      RecordVerb(WireVerb::kMetrics, start);
      break;
    }
    case WireRequest::Kind::kDeadline: {
      int64_t ms = request->deadline_ms;
      {
        std::lock_guard<std::mutex> lock(mu_);
        deadline_ms_ = ms;
      }
      Emit(StrFormat("ok deadline %lld", static_cast<long long>(ms)));
      RecordVerb(WireVerb::kDeadline, start);
      break;
    }
    case WireRequest::Kind::kFrame: {
      if (!hooks_.switch_mode) {
        Emit("err - frame negotiation requires the socket transport");
        break;
      }
      // The ack travels in the OLD framing (a text-mode client reads a
      // plain "ok frame binary" line and only then starts length-prefix
      // parsing); everything queued after switch_mode is framed anew.
      Emit(StrFormat("ok frame %s",
                     request->frame_binary ? "binary" : "text"));
      hooks_.switch_mode(request->frame_binary ? FrameMode::kBinary
                                               : FrameMode::kText);
      RecordVerb(WireVerb::kFrame, start);
      break;
    }
    case WireRequest::Kind::kOpen: {
      auto work = [this, request = *request, start] {
        DoOpen(request);
        RecordVerb(WireVerb::kOpen, start);
      };
      if (hooks_.defer) {
        hooks_.defer(std::move(work));
      } else {
        work();
      }
      break;
    }
    case WireRequest::Kind::kClose: {
      if (options_.connection_scoped_clients && !Owns(request->client)) {
        Emit(StrFormat("err %s no client named %s on this connection",
                       request->client.c_str(), request->client.c_str()));
        break;
      }
      auto work = [this, request = *request, start] {
        DoClose(request);
        RecordVerb(WireVerb::kClose, start);
      };
      if (hooks_.defer) {
        hooks_.defer(std::move(work));
      } else {
        work();
      }
      break;
    }
    case WireRequest::Kind::kCommand: {
      if (options_.connection_scoped_clients && !Owns(request->client)) {
        Emit(StrFormat("err %s no client named %s on this connection",
                       request->client.c_str(), request->client.c_str()));
        break;
      }
      const int request_line = line_no;
      {
        std::lock_guard<std::mutex> lock(mu_);
        request->command.deadline_ms = deadline_ms_;
      }
      const WireVerb verb = request->command.kind == SessionCommand::Kind::kSolve
                                ? WireVerb::kSolve
                                : WireVerb::kEdit;
      Status submitted = backend_->submit(
          request->client, request->command,
          [this, request_line, verb, start](
              const std::string& client,
              const Result<SessionStepOutcome>& outcome) {
            if (!outcome.ok()) {
              Emit(StrFormat("err %s line=%d %s", client.c_str(),
                             request_line,
                             outcome.status().message().c_str()));
            } else {
              const RankHowResult& r = outcome->result;
              Emit(StrFormat(
                  "ok %s line=%d error=%ld bound=%ld proven=%s "
                  "seconds=%.3f nodes=%lld",
                  client.c_str(), request_line, r.error, r.bound,
                  r.proven_optimal ? "yes" : "no", r.seconds,
                  static_cast<long long>(r.stats.nodes_explored)));
            }
            RecordVerb(verb, start);
          });
      if (!submitted.ok()) {
        Emit(StrFormat("err %s %s", request->client.c_str(),
                       submitted.message().c_str()));
        RecordVerb(verb, start);
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Reactor glue
// ---------------------------------------------------------------------------

namespace {

ReactorCallbacks MakeReactorCallbacksImpl(
    std::shared_ptr<const WireBackend> backend, ServeStreamOptions options) {
  // Every network connection owns its clients; PR 4's drain-the-world
  // stream semantics belong to stdin only.
  options.connection_scoped_clients = true;
  ReactorCallbacks callbacks;
  callbacks.on_open = [backend, options](ReactorConn& conn) -> void* {
    ReactorConn* c = &conn;
    WireConnectionHooks hooks;
    hooks.emit = [c](const std::string& message) { (void)c->Send(message); };
    hooks.switch_mode = [c](FrameMode mode) { c->SwitchMode(mode); };
    hooks.defer = [c](std::function<void()> fn) { c->Defer(std::move(fn)); };
    hooks.request_close = [c] { c->Close(); };
    return new WireConnection(backend, options, std::move(hooks));
  };
  callbacks.on_message = [](ReactorConn& conn, const std::string& payload) {
    static_cast<WireConnection*>(conn.user())->HandleMessage(payload);
  };
  callbacks.on_protocol_error = [](ReactorConn& conn,
                                   const std::string& error) {
    // Best-effort last word before the abort-close; a length-prefixed
    // stream cannot resync, so no recovery is offered.
    (void)conn.Send("err - " + error);
  };
  callbacks.on_close = [](ReactorConn& conn, CloseReason reason) {
    auto* wire = static_cast<WireConnection*>(conn.user());
    if (wire == nullptr) return;
    // kLocalClose follows a quit whose handler already ended the stream
    // gracefully (EndStream is idempotent). Everything else is the
    // vanished-peer abort path.
    wire->EndStream(/*graceful=*/reason == CloseReason::kLocalClose);
    delete wire;
  };
  return callbacks;
}

}  // namespace

ReactorCallbacks MakeWireReactorCallbacks(SessionRegistry* registry,
                                          ServeStreamOptions options) {
  return MakeReactorCallbacksImpl(
      std::make_shared<const WireBackend>(MakeWireBackend(registry)),
      options);
}

ReactorCallbacks MakeWireReactorCallbacks(RegistryRouter* router,
                                          ServeStreamOptions options) {
  return MakeReactorCallbacksImpl(
      std::make_shared<const WireBackend>(MakeWireBackend(router)),
      options);
}

// ---------------------------------------------------------------------------
// Stream transport (stdin mode, stringstream tests)
// ---------------------------------------------------------------------------

namespace {

Status ServeStreamImpl(std::shared_ptr<const WireBackend> backend,
                       std::istream& in, std::ostream& out,
                       const ServeStreamOptions& options) {
  // Whole-line writes under one mutex: strand completions race the serve
  // loop's own acks, and interleaved half-lines would be unparseable. The
  // mutex lives on the heap because solve callbacks of clients this stream
  // leaves open (non-connection-scoped mode) can outlive this frame.
  auto out_mu = std::make_shared<std::mutex>();
  std::ostream* outp = &out;
  WireConnectionHooks hooks;
  hooks.emit = [outp, out_mu](const std::string& message) {
    std::lock_guard<std::mutex> lock(*out_mu);
    *outp << message << "\n" << std::flush;
  };
  // No switch_mode (frame answers err), no defer (this loop may block),
  // no request_close (returning ends the stream).
  WireConnection conn(std::move(backend), options, std::move(hooks));
  std::string line;
  while (std::getline(in, line)) {
    conn.HandleMessage(line);
    if (conn.finished()) return Status();
  }
  // EOF without quit: the peer is gone (a socket surfaces a clean FIN and
  // a dead peer identically), so responses are undeliverable — abort the
  // owned clients (cancel in-flight, fail queued) rather than burn solve
  // budget nobody will read. A polite client says `quit`, which drains.
  conn.EndStream(/*graceful=*/false);
  return Status();
}

}  // namespace

Status ServeStream(SessionRegistry* registry, std::istream& in,
                   std::ostream& out, const ServeStreamOptions& options) {
  return ServeStreamImpl(
      std::make_shared<const WireBackend>(MakeWireBackend(registry)), in,
      out, options);
}

Status ServeStream(RegistryRouter* router, std::istream& in,
                   std::ostream& out, const ServeStreamOptions& options) {
  return ServeStreamImpl(
      std::make_shared<const WireBackend>(MakeWireBackend(router)), in, out,
      options);
}

Result<std::vector<ScriptedClientRun>> RunScriptedClients(
    SessionRegistry* registry,
    const std::vector<std::vector<SessionCommand>>& scripts,
    int num_clients) {
  if (scripts.empty() || num_clients < 1) {
    return Status::Invalid("scripted-client mode needs >= 1 script and "
                           ">= 1 client");
  }
  auto runs = std::make_shared<std::vector<ScriptedClientRun>>(num_clients);
  // Per-run mutation is safe without locks: callbacks of one client run on
  // its strand, serialized; runs never reallocates.
  for (int i = 0; i < num_clients; ++i) {
    ScriptedClientRun& run = (*runs)[i];
    run.client = "c" + std::to_string(i);
    RH_RETURN_NOT_OK(registry->Open(run.client));
  }
  for (int i = 0; i < num_clients; ++i) {
    ScriptedClientRun* run = &(*runs)[i];
    for (const SessionCommand& command :
         scripts[static_cast<size_t>(i) % scripts.size()]) {
      RH_RETURN_NOT_OK(registry->Submit(
          run->client, command,
          [runs, run](const std::string& client,
                      const Result<SessionStepOutcome>& outcome) {
            (void)client;
            if (outcome.ok()) {
              run->outcomes.push_back(*outcome);
            } else if (run->status.ok()) {
              run->status = outcome.status();
            }
          }));
    }
  }
  registry->Drain();
  return *runs;
}

}  // namespace rankhow
