#include "server/wire.h"

#include <istream>
#include <mutex>
#include <ostream>

#include "util/string_util.h"

namespace rankhow {

namespace {

/// Splits "CLIENT rest-of-line" at the first run of whitespace.
void SplitHead(const std::string& line, std::string* head,
               std::string* tail) {
  size_t sep = line.find_first_of(" \t");
  if (sep == std::string::npos) {
    *head = line;
    tail->clear();
    return;
  }
  *head = line.substr(0, sep);
  *tail = std::string(Trim(line.substr(sep + 1)));
}

}  // namespace

Result<WireRequest> ParseWireLine(const std::string& raw) {
  std::string line(Trim(raw));
  if (size_t hash = line.find('#'); hash != std::string::npos) {
    line = std::string(Trim(line.substr(0, hash)));
  }
  if (line.empty()) return Status::NotFound("blank line");

  WireRequest request;
  std::string head, tail;
  SplitHead(line, &head, &tail);
  if (head == "quit" || head == "stats") {
    if (!tail.empty()) {
      return Status::Invalid("'" + head + "' takes no argument");
    }
    request.kind =
        head == "quit" ? WireRequest::Kind::kQuit : WireRequest::Kind::kStats;
    return request;
  }
  if (head == "open" || head == "close") {
    if (tail.empty() || tail.find_first_of(" \t") != std::string::npos) {
      return Status::Invalid("'" + head + "' takes exactly one client name");
    }
    request.kind = head == "open" ? WireRequest::Kind::kOpen
                                  : WireRequest::Kind::kClose;
    request.client = tail;
    return request;
  }
  // CLIENT <session-script command>: reuse the script parser on the tail so
  // the wire grammar and --session files can never drift apart.
  if (tail.empty()) {
    return Status::Invalid("truncated request: '" + head +
                           "' (want CLIENT COMMAND..., open/close/stats/"
                           "quit)");
  }
  RH_ASSIGN_OR_RETURN(std::vector<SessionCommand> parsed,
                      ParseSessionScript(tail));
  if (parsed.size() != 1) {
    return Status::Invalid("exactly one command per wire line");
  }
  request.kind = WireRequest::Kind::kCommand;
  request.client = head;
  request.command = std::move(parsed[0]);
  return request;
}

Status ServeStream(SessionRegistry* registry, std::istream& in,
                   std::ostream& out) {
  // Whole-line writes under one mutex: strand completions race the serve
  // loop's own acks, and interleaved half-lines would be unparseable.
  std::mutex out_mu;
  auto emit = [&out, &out_mu](const std::string& line) {
    std::lock_guard<std::mutex> lock(out_mu);
    out << line << "\n" << std::flush;
  };

  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto request = ParseWireLine(line);
    if (!request.ok()) {
      if (request.status().code() == StatusCode::kNotFound) continue;  // blank
      emit(StrFormat("err - wire line %d: %s", line_no,
                     request.status().message().c_str()));
      continue;
    }
    switch (request->kind) {
      case WireRequest::Kind::kQuit:
        registry->Drain();
        emit("ok quit");
        return Status();
      case WireRequest::Kind::kStats: {
        SessionRegistryStats stats = registry->Stats();
        emit(StrFormat("ok stats clients=%d datasets=%d commands=%lld "
                       "forks=%lld",
                       stats.open_clients, stats.resident_dataset_copies,
                       static_cast<long long>(stats.commands_executed),
                       static_cast<long long>(stats.dataset_forks)));
        break;
      }
      case WireRequest::Kind::kOpen: {
        Status status = registry->Open(request->client);
        emit(status.ok() ? "ok open " + request->client
                         : StrFormat("err %s %s", request->client.c_str(),
                                     status.message().c_str()));
        break;
      }
      case WireRequest::Kind::kClose: {
        // Graceful: the stream submitted this client's queued commands
        // itself, so `close` lets them finish instead of dropping them.
        Status status = registry->Close(request->client, /*graceful=*/true);
        emit(status.ok() ? "ok close " + request->client
                         : StrFormat("err %s %s", request->client.c_str(),
                                     status.message().c_str()));
        break;
      }
      case WireRequest::Kind::kCommand: {
        const int request_line = line_no;
        Status submitted = registry->Submit(
            request->client, request->command,
            [emit, request_line](const std::string& client,
                                 const Result<SessionStepOutcome>& outcome) {
              if (!outcome.ok()) {
                emit(StrFormat("err %s line=%d %s", client.c_str(),
                               request_line,
                               outcome.status().message().c_str()));
                return;
              }
              const RankHowResult& r = outcome->result;
              emit(StrFormat(
                  "ok %s line=%d error=%ld bound=%ld proven=%s "
                  "seconds=%.3f",
                  client.c_str(), request_line, r.error, r.bound,
                  r.proven_optimal ? "yes" : "no", r.seconds));
            });
        if (!submitted.ok()) {
          emit(StrFormat("err %s %s", request->client.c_str(),
                         submitted.message().c_str()));
        }
        break;
      }
    }
  }
  registry->Drain();
  return Status();
}

Result<std::vector<ScriptedClientRun>> RunScriptedClients(
    SessionRegistry* registry,
    const std::vector<std::vector<SessionCommand>>& scripts,
    int num_clients) {
  if (scripts.empty() || num_clients < 1) {
    return Status::Invalid("scripted-client mode needs >= 1 script and "
                           ">= 1 client");
  }
  auto runs = std::make_shared<std::vector<ScriptedClientRun>>(num_clients);
  // Per-run mutation is safe without locks: callbacks of one client run on
  // its strand, serialized; runs never reallocates.
  for (int i = 0; i < num_clients; ++i) {
    ScriptedClientRun& run = (*runs)[i];
    run.client = "c" + std::to_string(i);
    RH_RETURN_NOT_OK(registry->Open(run.client));
  }
  for (int i = 0; i < num_clients; ++i) {
    ScriptedClientRun* run = &(*runs)[i];
    for (const SessionCommand& command :
         scripts[static_cast<size_t>(i) % scripts.size()]) {
      RH_RETURN_NOT_OK(registry->Submit(
          run->client, command,
          [runs, run](const std::string& client,
                      const Result<SessionStepOutcome>& outcome) {
            (void)client;
            if (outcome.ok()) {
              run->outcomes.push_back(*outcome);
            } else if (run->status.ok()) {
              run->status = outcome.status();
            }
          }));
    }
  }
  registry->Drain();
  return *runs;
}

}  // namespace rankhow
