#include "server/wire.h"

#include <algorithm>
#include <functional>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>

#include "util/string_util.h"

namespace rankhow {

namespace {

/// Splits "CLIENT rest-of-line" at the first run of whitespace.
void SplitHead(const std::string& line, std::string* head,
               std::string* tail) {
  size_t sep = line.find_first_of(" \t");
  if (sep == std::string::npos) {
    *head = line;
    tail->clear();
    return;
  }
  *head = line.substr(0, sep);
  *tail = std::string(Trim(line.substr(sep + 1)));
}

/// What ServeStream needs from a serving backend. The registry and router
/// overloads fill this in; the serve loop itself is backend-agnostic, so
/// the single-dataset and routed servers can never drift on protocol
/// behavior.
struct WireBackend {
  /// Returns the ack suffix after "ok " (e.g. "open alice nba").
  std::function<Result<std::string>(const std::string& client,
                                    const std::string& dataset)>
      open;
  std::function<Status(const std::string& client, bool graceful)> close;
  std::function<Status(const std::string& client, SessionCommand,
                       SessionCallback)>
      submit;
  /// The body after "ok stats ".
  std::function<std::string()> stats_line;
  /// Blocks until every strand is idle (the PR 4 stdin drain).
  std::function<void()> drain_all;
};

Status ServeStreamImpl(const WireBackend& backend, std::istream& in,
                       std::ostream& out,
                       const ServeStreamOptions& options) {
  // Whole-line writes under one mutex: strand completions race the serve
  // loop's own acks, and interleaved half-lines would be unparseable. The
  // mutex lives on the heap because solve callbacks of clients this stream
  // leaves open (non-connection-scoped mode) can outlive this frame.
  auto out_mu = std::make_shared<std::mutex>();
  auto emit = [&out, out_mu](const std::string& line) {
    std::lock_guard<std::mutex> lock(*out_mu);
    out << line << "\n" << std::flush;
  };

  // The clients this stream opened, in open order — connection-scoped
  // mode closes them when the stream ends, and only lets the stream
  // address its own clients: a response callback writes to *this*
  // connection's stream, so a submit against another connection's client
  // would outlive this frame when that connection keeps the session busy.
  std::vector<std::string> owned;
  auto owns = [&owned](const std::string& client) {
    return std::find(owned.begin(), owned.end(), client) != owned.end();
  };
  auto disown = [&owned](const std::string& client) {
    owned.erase(std::remove(owned.begin(), owned.end(), client),
                owned.end());
  };
  auto end_stream = [&](bool graceful) {
    if (options.connection_scoped_clients) {
      // Graceful (quit / clean EOF): queued commands finish and answer
      // before the session drops. Abort (transport death): cancel the
      // in-flight solve, fail the queue — the peer is gone anyway.
      for (const std::string& client : owned) {
        (void)backend.close(client, graceful);
      }
    } else if (backend.drain_all != nullptr) {
      backend.drain_all();
    }
  };

  std::string line;
  int line_no = 0;
  // Stream-scoped per-request deadline (the `deadline` verb): stamped onto
  // every subsequent command, capping that solve's wall-clock budget.
  int64_t deadline_ms = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto request = ParseWireLine(line);
    if (!request.ok()) {
      if (request.status().code() == StatusCode::kNotFound) continue;  // blank
      emit(StrFormat("err - wire line %d: %s", line_no,
                     request.status().message().c_str()));
      continue;
    }
    switch (request->kind) {
      case WireRequest::Kind::kQuit:
        end_stream(/*graceful=*/true);
        emit("ok quit");
        return Status();
      case WireRequest::Kind::kStats:
        emit("ok stats " + backend.stats_line());
        break;
      case WireRequest::Kind::kDeadline:
        deadline_ms = request->deadline_ms;
        emit(StrFormat("ok deadline %lld",
                       static_cast<long long>(deadline_ms)));
        break;
      case WireRequest::Kind::kOpen: {
        Result<std::string> ack =
            backend.open(request->client, request->dataset);
        if (ack.ok()) {
          owned.push_back(request->client);
          emit("ok " + *ack);
        } else {
          emit(StrFormat("err %s %s", request->client.c_str(),
                         ack.status().message().c_str()));
        }
        break;
      }
      case WireRequest::Kind::kClose: {
        if (options.connection_scoped_clients && !owns(request->client)) {
          emit(StrFormat("err %s no client named %s on this connection",
                         request->client.c_str(), request->client.c_str()));
          break;
        }
        // Graceful: the stream submitted this client's queued commands
        // itself, so `close` lets them finish instead of dropping them.
        Status status = backend.close(request->client, /*graceful=*/true);
        if (status.ok()) disown(request->client);
        emit(status.ok() ? "ok close " + request->client
                         : StrFormat("err %s %s", request->client.c_str(),
                                     status.message().c_str()));
        break;
      }
      case WireRequest::Kind::kCommand: {
        if (options.connection_scoped_clients && !owns(request->client)) {
          emit(StrFormat("err %s no client named %s on this connection",
                         request->client.c_str(), request->client.c_str()));
          break;
        }
        const int request_line = line_no;
        request->command.deadline_ms = deadline_ms;
        Status submitted = backend.submit(
            request->client, request->command,
            [emit, request_line](const std::string& client,
                                 const Result<SessionStepOutcome>& outcome) {
              if (!outcome.ok()) {
                emit(StrFormat("err %s line=%d %s", client.c_str(),
                               request_line,
                               outcome.status().message().c_str()));
                return;
              }
              const RankHowResult& r = outcome->result;
              emit(StrFormat(
                  "ok %s line=%d error=%ld bound=%ld proven=%s "
                  "seconds=%.3f",
                  client.c_str(), request_line, r.error, r.bound,
                  r.proven_optimal ? "yes" : "no", r.seconds));
            });
        if (!submitted.ok()) {
          emit(StrFormat("err %s %s", request->client.c_str(),
                         submitted.message().c_str()));
        }
        break;
      }
    }
  }
  // EOF without quit: the peer is gone (a socket surfaces a clean FIN and
  // a dead peer identically), so responses are undeliverable — abort the
  // owned clients (cancel in-flight, fail queued) rather than burn solve
  // budget nobody will read. A polite client says `quit`, which drains.
  end_stream(/*graceful=*/false);
  return Status();
}

}  // namespace

Result<WireRequest> ParseWireLine(const std::string& raw) {
  std::string line(Trim(raw));
  if (size_t hash = line.find('#'); hash != std::string::npos) {
    line = std::string(Trim(line.substr(0, hash)));
  }
  if (line.empty()) return Status::NotFound("blank line");

  WireRequest request;
  std::string head, tail;
  SplitHead(line, &head, &tail);
  if (head == "quit" || head == "stats") {
    if (!tail.empty()) {
      return Status::Invalid("'" + head + "' takes no argument");
    }
    request.kind =
        head == "quit" ? WireRequest::Kind::kQuit : WireRequest::Kind::kStats;
    return request;
  }
  if (head == "open") {
    std::string client, dataset;
    SplitHead(tail, &client, &dataset);
    if (client.empty() ||
        dataset.find_first_of(" \t") != std::string::npos) {
      return Status::Invalid(
          "'open' takes a client name and an optional dataset id");
    }
    request.kind = WireRequest::Kind::kOpen;
    request.client = std::move(client);
    request.dataset = std::move(dataset);
    return request;
  }
  if (head == "deadline") {
    Result<int64_t> ms = ParseInt(tail);
    if (tail.empty() || !ms.ok() || *ms < 0) {
      return Status::Invalid(
          "'deadline' takes one non-negative millisecond count (0 restores "
          "the server default)");
    }
    request.kind = WireRequest::Kind::kDeadline;
    request.deadline_ms = *ms;
    return request;
  }
  if (head == "close") {
    if (tail.empty() || tail.find_first_of(" \t") != std::string::npos) {
      return Status::Invalid("'close' takes exactly one client name");
    }
    request.kind = WireRequest::Kind::kClose;
    request.client = tail;
    return request;
  }
  // CLIENT <session-script command>: reuse the script parser on the tail so
  // the wire grammar and --session files can never drift apart.
  if (tail.empty()) {
    return Status::Invalid("truncated request: '" + head +
                           "' (want CLIENT COMMAND..., open/close/stats/"
                           "quit)");
  }
  RH_ASSIGN_OR_RETURN(std::vector<SessionCommand> parsed,
                      ParseSessionScript(tail));
  if (parsed.size() != 1) {
    return Status::Invalid("exactly one command per wire line");
  }
  request.kind = WireRequest::Kind::kCommand;
  request.client = head;
  request.command = std::move(parsed[0]);
  return request;
}

Status ServeStream(SessionRegistry* registry, std::istream& in,
                   std::ostream& out, const ServeStreamOptions& options) {
  WireBackend backend;
  backend.open = [registry](const std::string& client,
                            const std::string& dataset)
      -> Result<std::string> {
    if (!dataset.empty()) {
      return Status::Invalid(
          "this server serves a single dataset (open takes no dataset id)");
    }
    RH_RETURN_NOT_OK(registry->Open(client));
    return "open " + client;
  };
  backend.close = [registry](const std::string& client, bool graceful) {
    return registry->Close(client, graceful);
  };
  backend.submit = [registry](const std::string& client, SessionCommand cmd,
                              SessionCallback done) {
    return registry->Submit(client, std::move(cmd), std::move(done));
  };
  backend.stats_line = [registry] {
    SessionRegistryStats stats = registry->Stats();
    return StrFormat(
        "clients=%d datasets=%d commands=%lld forks=%lld "
        "shared_published=%lld shared_drawn=%lld pending=%d shed=%lld "
        "closed_graceful=%lld closed_aborted=%lld",
        stats.open_clients, stats.resident_dataset_copies,
        static_cast<long long>(stats.commands_executed),
        static_cast<long long>(stats.dataset_forks),
        static_cast<long long>(stats.shared_publishes),
        static_cast<long long>(stats.shared_draws), stats.pending_commands,
        static_cast<long long>(stats.commands_shed),
        static_cast<long long>(stats.closes_graceful),
        static_cast<long long>(stats.closes_aborted));
  };
  backend.drain_all = [registry] { registry->Drain(); };
  return ServeStreamImpl(backend, in, out, options);
}

Status ServeStream(RegistryRouter* router, std::istream& in,
                   std::ostream& out, const ServeStreamOptions& options) {
  WireBackend backend;
  backend.open = [router](const std::string& client,
                          const std::string& dataset)
      -> Result<std::string> {
    bool adopted = false;
    RH_RETURN_NOT_OK(router->Open(client, dataset, &adopted));
    // Echo the dataset actually bound so `open C` reveals the default;
    // "recovered" tells a reconnecting client it adopted its journal-
    // rebuilt session, constraint state intact (see docs/PROTOCOL.md).
    return "open " + client + " " + router->ClientDataset(client) +
           (adopted ? " recovered" : "");
  };
  backend.close = [router](const std::string& client, bool graceful) {
    return router->Close(client, graceful);
  };
  backend.submit = [router](const std::string& client, SessionCommand cmd,
                            SessionCallback done) {
    return router->Submit(client, std::move(cmd), std::move(done));
  };
  backend.stats_line = [router] {
    RegistryRouterStats stats = router->Stats();
    return StrFormat(
        "registries=%d clients=%d datasets=%d commands=%lld forks=%lld "
        "loaded=%lld evicted_registries=%lld evicted_sessions=%lld "
        "shared_published=%lld shared_drawn=%lld pending=%d shed=%lld "
        "closed_graceful=%lld closed_aborted=%lld journal_records=%lld "
        "journal_fsyncs=%lld journal_fsync_failures=%lld "
        "journal_degraded=%d recover_replayed=%lld recover_truncated=%lld "
        "recover_skipped=%lld recover_sessions=%d",
        stats.resident_registries, stats.open_clients,
        stats.resident_dataset_copies,
        static_cast<long long>(stats.commands_executed),
        static_cast<long long>(stats.dataset_forks),
        static_cast<long long>(stats.datasets_loaded),
        static_cast<long long>(stats.registries_evicted),
        static_cast<long long>(stats.sessions_evicted),
        static_cast<long long>(stats.shared_publishes),
        static_cast<long long>(stats.shared_draws), stats.pending_commands,
        static_cast<long long>(stats.commands_shed),
        static_cast<long long>(stats.closes_graceful),
        static_cast<long long>(stats.closes_aborted),
        static_cast<long long>(stats.journal_records),
        static_cast<long long>(stats.journal_fsyncs),
        static_cast<long long>(stats.journal_fsync_failures),
        stats.journal_degraded,
        static_cast<long long>(stats.recovered.replayed),
        static_cast<long long>(stats.recovered.truncated),
        static_cast<long long>(stats.recovered.skipped),
        stats.recovered.sessions);
  };
  backend.drain_all = [router] { router->Drain(); };
  return ServeStreamImpl(backend, in, out, options);
}

Result<std::vector<ScriptedClientRun>> RunScriptedClients(
    SessionRegistry* registry,
    const std::vector<std::vector<SessionCommand>>& scripts,
    int num_clients) {
  if (scripts.empty() || num_clients < 1) {
    return Status::Invalid("scripted-client mode needs >= 1 script and "
                           ">= 1 client");
  }
  auto runs = std::make_shared<std::vector<ScriptedClientRun>>(num_clients);
  // Per-run mutation is safe without locks: callbacks of one client run on
  // its strand, serialized; runs never reallocates.
  for (int i = 0; i < num_clients; ++i) {
    ScriptedClientRun& run = (*runs)[i];
    run.client = "c" + std::to_string(i);
    RH_RETURN_NOT_OK(registry->Open(run.client));
  }
  for (int i = 0; i < num_clients; ++i) {
    ScriptedClientRun* run = &(*runs)[i];
    for (const SessionCommand& command :
         scripts[static_cast<size_t>(i) % scripts.size()]) {
      RH_RETURN_NOT_OK(registry->Submit(
          run->client, command,
          [runs, run](const std::string& client,
                      const Result<SessionStepOutcome>& outcome) {
            (void)client;
            if (outcome.ok()) {
              run->outcomes.push_back(*outcome);
            } else if (run->status.ok()) {
              run->status = outcome.status();
            }
          }));
    }
  }
  registry->Drain();
  return *runs;
}

}  // namespace rankhow
