#ifndef RANKHOW_SERVER_WIRE_H_
#define RANKHOW_SERVER_WIRE_H_

/// \file wire.h
/// The serving wire protocol (`rankhow_cli --serve` / `--listen`) plus the
/// deterministic scripted-client runner (`--serve --clients=N`, the
/// bench/test harness mode that needs no transport at all).
///
/// The complete protocol reference — every verb, response format, error
/// reply, and a worked multi-client transcript — lives in docs/PROTOCOL.md;
/// this header keeps only the shape. One request per message (a text line
/// by default; a length-prefixed binary frame after `frame binary` — see
/// net/frame.h), over any byte stream (stdin/stdout pipe, or a connection
/// owned by the epoll reactor in net/reactor.h):
///
///   open CLIENT [DATASET]  create a session for CLIENT; DATASET selects a
///                          catalog entry on a router-backed server (the
///                          default dataset when omitted; single-registry
///                          servers reject the two-argument form)
///   close CLIENT           finish CLIENT's queued commands, then drop it
///   stats                  registry/router counters plus, on a metered
///                          server, transport fields (see PROTOCOL.md)
///   metrics                per-verb latency histograms and connection /
///                          backpressure gauges (see docs/OPERATIONS.md)
///   deadline MS            per-request deadline for this stream's later
///                          commands: each solve's wall-clock budget is
///                          capped at MS milliseconds (0 restores the
///                          server default). Stream-scoped, not journaled.
///   frame binary|text      switch this connection's message framing; the
///                          ack is sent in the OLD framing, everything
///                          after it in the new one. Socket transport
///                          only (the stdio stream answers `err`).
///   quit                   end this command stream
///   CLIENT <command>       one session-script command for CLIENT — the
///                          exact PR 3 grammar (solve / min-weight /
///                          max-weight / drop / order / eps* / objective /
///                          append; see app/cli_driver.h)
///
/// One response message per request, tagged with the client so
/// interleaving stays parseable (solves of different clients complete in
/// pool order; per client, responses arrive in submission order):
///
///   ok open CLIENT [DATASET]
///   ok CLIENT line=1 error=3 bound=3 proven=yes seconds=0.012 nodes=17
///   err CLIENT line=4 session script line 1: no weight constraint ...
///   ok stats clients=2 datasets=1 commands=17 forks=0 ...
///   ok metrics connections=3 ... solve.p99_us=41820 ...
///   ok frame binary
///   ok quit
///
/// (`line=` is the wire line of the request; the "script line" inside a
/// command error message is always 1 — each wire command is a one-line
/// script.)
///
/// A malformed or failing request answers `err ...` and never corrupts or
/// closes the named session. Parse and *edit* failures leave its state
/// byte-identical (edits validate before mutating) — asserted by the
/// fuzz-style negative suite in tests/server/session_server_test.cc and,
/// over a real socket, tests/net/socket_server_test.cc. A *solve* failure
/// is different: the edit already stuck, and the error message says "solve
/// failed after edit applied" so a client knows to reverse it explicitly
/// (e.g. `drop NAME`) rather than assume rejection. The one fatal class is
/// a *framing* error (oversized length prefix, unterminated megabyte
/// line): a length-prefixed stream cannot resynchronize, so the connection
/// abort-closes after a best-effort `err` — its sessions abort, siblings
/// are untouched.
///
/// Connection scoping: a stream served with
/// ServeStreamOptions::connection_scoped_clients (every network
/// connection) owns the clients it opened. `quit` gracefully closes them
/// (queued commands finish and answer first); EOF without `quit` — a
/// vanished peer and a clean FIN are indistinguishable on a socket, and
/// either way nobody reads the responses — abort-closes them (the
/// in-flight solve is cancelled cooperatively, queued commands fail).
/// Siblings on other connections are untouched either way. A connection
/// can only address the clients it opened (responses route to the opening
/// connection's stream). The PR 4 stdin mode instead drains everything and
/// leaves clients open (the process exits anyway).

#include <chrono>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "app/cli_driver.h"
#include "net/frame.h"
#include "net/reactor.h"
#include "server/registry_router.h"
#include "server/session_registry.h"
#include "util/histogram.h"
#include "util/status.h"

namespace rankhow {

/// One parsed wire line.
struct WireRequest {
  enum class Kind {
    kOpen,
    kClose,
    kStats,
    kMetrics,
    kQuit,
    kCommand,
    kDeadline,
    kFrame,
  };
  Kind kind = Kind::kCommand;
  std::string client;      // open/close/command
  std::string dataset;     // kOpen only; "" = the server's default
  SessionCommand command;  // kCommand only
  int64_t deadline_ms = 0;  // kDeadline only; 0 = restore the default
  bool frame_binary = false;  // kFrame only
};

/// Parses one request line (no trailing newline; '#' comments and blank
/// lines are kNotFound — callers skip those, they get no response).
/// kInvalidArgument for everything malformed: unknown verbs, missing
/// client, bad command grammar.
Result<WireRequest> ParseWireLine(const std::string& line);

/// The proxy hooks (PR 10): a routing tier in front of N workers
/// (src/coord/) forwards requests verbatim and must classify the
/// responses coming back — which client a response belongs to and whether
/// it is line-tagged (a session-command ack, matched to its request by
/// the worker-side wire line number) or a verb response (open / close /
/// stats / quit acks, answered in request order). Keeping the response
/// head grammar here, next to the code that EMITS those responses,
/// is what stops the coordinator and the server from drifting.
struct WireResponseTag {
  bool ok = false;       ///< "ok ..." vs "err ..."
  std::string client;    ///< second token ("-" for wire-level errors)
  bool has_line = false; ///< third token was "line=N"
  int64_t line = 0;      ///< N, when has_line
};

/// Classifies one response message. kInvalidArgument when the message
/// does not start with "ok "/"err " or has no second token — a proxy
/// treats that as a worker protocol violation.
Result<WireResponseTag> ParseWireResponseTag(const std::string& response);

/// Rewrites the "line=N" token of a line-tagged response to `line`. A
/// proxy counts wire lines per DOWNSTREAM stream, while each worker
/// counts the lines the proxy sent IT — so every forwarded ack's line
/// number is translated back before delivery (docs/PROTOCOL.md
/// "Coordinator transparency"). Returns the input unchanged when no
/// "line=" token exists.
std::string RewriteWireResponseLine(const std::string& response,
                                    int64_t line);

/// What the wire layer needs from a serving backend. MakeWireBackend
/// builds one over a SessionRegistry or a RegistryRouter; the protocol
/// machine itself is backend-agnostic, so the single-dataset and routed
/// servers can never drift on protocol behavior.
struct WireBackend {
  /// Returns the ack suffix after "ok " (e.g. "open alice nba"). May
  /// block (dataset CSV load).
  std::function<Result<std::string>(const std::string& client,
                                    const std::string& dataset)>
      open;
  /// May block (graceful close finishes the queued commands first).
  std::function<Status(const std::string& client, bool graceful)> close;
  /// Non-blocking: enqueues onto the client's strand or sheds.
  std::function<Status(const std::string& client, SessionCommand,
                       SessionCallback)>
      submit;
  /// The body after "ok stats ".
  std::function<std::string()> stats_line;
  /// Blocks until every strand is idle (the PR 4 stdin drain).
  std::function<void()> drain_all;
};

WireBackend MakeWireBackend(SessionRegistry* registry);
WireBackend MakeWireBackend(RegistryRouter* router);

struct ServeStreamOptions {
  /// Network semantics: the stream owns the clients it opened — `quit`
  /// gracefully closes them, EOF without `quit` abort-closes them, and
  /// the registry is NOT drained when the stream ends (sibling connections
  /// keep solving). Off = the PR 4 stdin semantics (drain everything at
  /// quit/EOF, leave clients open).
  bool connection_scoped_clients = false;
  /// Per-verb latency histograms + transport gauges; enables the
  /// `metrics` verb and the transport fields of `stats`. May be null
  /// (both degrade gracefully).
  ServerMetrics* metrics = nullptr;
};

/// How a WireConnection talks back to its transport. Only `emit` is
/// required; the rest degrade: no switch_mode → `frame` answers err, no
/// defer → blocking verbs run inline (the single-threaded stdio serve
/// loop), no request_close → `quit` just marks the stream finished.
struct WireConnectionHooks {
  /// Queues one response message on the transport. Must be callable from
  /// any thread (strand completions race the serve path) and must not
  /// block.
  std::function<void(const std::string& message)> emit;
  /// Switches the transport's framing (input and output). Called on the
  /// serve path right after the `frame` ack was emitted in the old mode.
  std::function<void(FrameMode mode)> switch_mode;
  /// Runs `fn` off the serve path with this connection's input paused
  /// (net/reactor.h Defer): `open`, `close`, and `quit` may block on
  /// dataset loads and strand drains, which must never stall an event
  /// loop.
  std::function<void(std::function<void()> fn)> defer;
  /// Asks the transport to gracefully close once queued responses flush
  /// (called after `ok quit` is emitted).
  std::function<void()> request_close;
};

/// The transport-free per-stream protocol machine: verb dispatch, owned
/// clients, the stream deadline, response formatting, per-verb latency
/// stamping. The stdio ServeStream wraps one around getline; the reactor
/// glue (MakeWireReactorCallbacks) hangs one off every connection.
///
/// Threading: HandleMessage runs on the transport's serve path (reactor
/// loop thread / the stdio loop); deferred verb handlers and EndStream run
/// on the reactor's ops thread. The transport guarantees those never
/// overlap for one connection (input is paused during a deferred verb;
/// teardown runs after delivery stopped), but the internal mutex keeps the
/// invariants local instead of relying on that at a distance.
class WireConnection {
 public:
  WireConnection(std::shared_ptr<const WireBackend> backend,
                 const ServeStreamOptions& options,
                 WireConnectionHooks hooks);

  /// Dispatches one complete request message (no framing, no newline).
  void HandleMessage(const std::string& payload);

  /// Ends the stream exactly once (idempotent): graceful finishes the
  /// owned clients' queued work, abort cancels it; non-connection-scoped
  /// streams drain the whole backend instead. Safe to call after `quit`
  /// already ended the stream (no-op).
  void EndStream(bool graceful);

  /// True once `quit` was processed — the stdio serve loop's exit signal.
  bool finished() const;

 private:
  void Emit(const std::string& message);
  void RecordVerb(WireVerb verb,
                  std::chrono::steady_clock::time_point start);
  /// The blocking-verb bodies (run deferred when hooks_.defer exists).
  void DoOpen(const WireRequest& request);
  void DoClose(const WireRequest& request);
  void DoQuit();
  bool Owns(const std::string& client) const;

  std::shared_ptr<const WireBackend> backend_;
  ServeStreamOptions options_;
  WireConnectionHooks hooks_;

  mutable std::mutex mu_;
  std::vector<std::string> owned_;
  int line_no_ = 0;
  int64_t deadline_ms_ = 0;
  bool ended_ = false;
  bool finished_ = false;
};

/// Reactor glue: callbacks that serve the wire protocol on every accepted
/// connection with connection-scoped client semantics (a WireConnection
/// per connection; `options.connection_scoped_clients` is forced on).
/// The registry/router must outlive the ReactorServer.
ReactorCallbacks MakeWireReactorCallbacks(SessionRegistry* registry,
                                          ServeStreamOptions options);
ReactorCallbacks MakeWireReactorCallbacks(RegistryRouter* router,
                                          ServeStreamOptions options);

/// Serves the line protocol over a stream pair until `quit` or EOF.
/// Thread-safe response writing (responses from concurrent strand
/// completions interleave whole-line). Returns the first transport-level
/// error; protocol-level errors are `err` responses. The registry overload
/// rejects the dataset form of `open` (one registry = one dataset); the
/// router overload routes it. `frame binary` answers err on this
/// transport (framing is a socket-transport concern).
Status ServeStream(SessionRegistry* registry, std::istream& in,
                   std::ostream& out,
                   const ServeStreamOptions& options = ServeStreamOptions());
Status ServeStream(RegistryRouter* router, std::istream& in,
                   std::ostream& out,
                   const ServeStreamOptions& options = ServeStreamOptions());

/// One scripted client's outcome under RunScriptedClients.
struct ScriptedClientRun {
  std::string client;
  /// Per-step outcomes in script order. Steps whose edit failed carry the
  /// error in `status` below and are absent here.
  std::vector<SessionStepOutcome> outcomes;
  /// First failed step's status (the remaining steps still ran — server
  /// semantics: a failed edit leaves the session intact).
  Status status;
};

/// Deterministic multi-client mode: opens `num_clients` clients
/// ("c0".."cN-1"), client i streaming scripts[i % scripts.size()], all
/// concurrently on the registry pool, then drains. This is the
/// transport-free harness the equivalence tests and the throughput bench
/// drive; per-client results are ordered and complete when it returns.
Result<std::vector<ScriptedClientRun>> RunScriptedClients(
    SessionRegistry* registry,
    const std::vector<std::vector<SessionCommand>>& scripts,
    int num_clients);

}  // namespace rankhow

#endif  // RANKHOW_SERVER_WIRE_H_
