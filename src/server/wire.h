#ifndef RANKHOW_SERVER_WIRE_H_
#define RANKHOW_SERVER_WIRE_H_

/// \file wire.h
/// The session server's line protocol (`rankhow_cli --serve`) plus the
/// deterministic scripted-client runner (`--serve --clients=N`, the
/// bench/test harness mode that needs no transport at all).
///
/// One request per line, over any byte stream (stdin/stdout pipe, socat, a
/// unix socket bridge — the server only sees an istream/ostream pair):
///
///   open CLIENT            create a session for CLIENT (shares the
///                          server's dataset snapshot copy-on-write)
///   close CLIENT           cancel + drop CLIENT's session
///   stats                  registry counters (clients, resident dataset
///                          copies, commands, forks)
///   quit                   drain everything and exit the serve loop
///   CLIENT <command>       one session-script command for CLIENT — the
///                          exact PR 3 grammar (solve / min-weight /
///                          max-weight / drop / order / eps* / objective /
///                          append; see app/cli_driver.h)
///
/// One response line per request, tagged with the client so interleaving
/// stays parseable (solves of different clients complete in pool order;
/// per client, responses arrive in submission order):
///
///   ok open CLIENT
///   ok CLIENT line=1 error=3 bound=3 proven=yes seconds=0.012
///   err CLIENT line=4 session script line 1: no weight constraint ...
///   ok stats clients=2 datasets=1 commands=17 forks=0
///   ok quit
///
/// (`line=` is the wire line of the request; the "script line" inside a
/// command error message is always 1 — each wire command is a one-line
/// script.)
///
/// A malformed or failing request answers `err ...` and never corrupts or
/// closes the named session. Parse and *edit* failures leave its state
/// byte-identical (edits validate before mutating) — asserted by the
/// fuzz-style negative suite in tests/server/session_server_test.cc. A
/// *solve* failure is different: the edit already stuck, and the error
/// message says "solve failed after edit applied" so a client knows to
/// reverse it explicitly (e.g. `drop NAME`) rather than assume rejection.

#include <iosfwd>
#include <string>
#include <vector>

#include "app/cli_driver.h"
#include "server/session_registry.h"
#include "util/status.h"

namespace rankhow {

/// One parsed wire line.
struct WireRequest {
  enum class Kind { kOpen, kClose, kStats, kQuit, kCommand };
  Kind kind = Kind::kCommand;
  std::string client;      // open/close/command
  SessionCommand command;  // kCommand only
};

/// Parses one request line (no trailing newline; '#' comments and blank
/// lines are kNotFound — callers skip those, they get no response).
/// kInvalidArgument for everything malformed: unknown verbs, missing
/// client, bad command grammar.
Result<WireRequest> ParseWireLine(const std::string& line);

/// Serves the line protocol over a stream pair until `quit` or EOF, then
/// drains the registry. Thread-safe response writing (responses from
/// concurrent strand completions interleave whole-line). Returns the first
/// transport-level error; protocol-level errors are `err` responses.
Status ServeStream(SessionRegistry* registry, std::istream& in,
                   std::ostream& out);

/// One scripted client's outcome under RunScriptedClients.
struct ScriptedClientRun {
  std::string client;
  /// Per-step outcomes in script order. Steps whose edit failed carry the
  /// error in `status` below and are absent here.
  std::vector<SessionStepOutcome> outcomes;
  /// First failed step's status (the remaining steps still ran — server
  /// semantics: a failed edit leaves the session intact).
  Status status;
};

/// Deterministic multi-client mode: opens `num_clients` clients
/// ("c0".."cN-1"), client i streaming scripts[i % scripts.size()], all
/// concurrently on the registry pool, then drains. This is the
/// transport-free harness the equivalence tests and the throughput bench
/// drive; per-client results are ordered and complete when it returns.
Result<std::vector<ScriptedClientRun>> RunScriptedClients(
    SessionRegistry* registry,
    const std::vector<std::vector<SessionCommand>>& scripts,
    int num_clients);

}  // namespace rankhow

#endif  // RANKHOW_SERVER_WIRE_H_
