#ifndef RANKHOW_SERVER_WIRE_H_
#define RANKHOW_SERVER_WIRE_H_

/// \file wire.h
/// The serving wire protocol (`rankhow_cli --serve` / `--listen`) plus the
/// deterministic scripted-client runner (`--serve --clients=N`, the
/// bench/test harness mode that needs no transport at all).
///
/// The complete protocol reference — every verb, response format, error
/// reply, and a worked multi-client transcript — lives in docs/PROTOCOL.md;
/// this header keeps only the shape. One request per line, over any byte
/// stream (stdin/stdout pipe, or a Unix-domain/TCP connection accepted by
/// net/socket_server.h):
///
///   open CLIENT [DATASET]  create a session for CLIENT; DATASET selects a
///                          catalog entry on a router-backed server (the
///                          default dataset when omitted; single-registry
///                          servers reject the two-argument form)
///   close CLIENT           finish CLIENT's queued commands, then drop it
///   stats                  registry/router counters (see PROTOCOL.md)
///   deadline MS            per-request deadline for this stream's later
///                          commands: each solve's wall-clock budget is
///                          capped at MS milliseconds (0 restores the
///                          server default). Stream-scoped, not journaled.
///   quit                   end this command stream
///   CLIENT <command>       one session-script command for CLIENT — the
///                          exact PR 3 grammar (solve / min-weight /
///                          max-weight / drop / order / eps* / objective /
///                          append; see app/cli_driver.h)
///
/// One response line per request, tagged with the client so interleaving
/// stays parseable (solves of different clients complete in pool order;
/// per client, responses arrive in submission order):
///
///   ok open CLIENT [DATASET]
///   ok CLIENT line=1 error=3 bound=3 proven=yes seconds=0.012
///   err CLIENT line=4 session script line 1: no weight constraint ...
///   ok stats clients=2 datasets=1 commands=17 forks=0 ...
///   ok quit
///
/// (`line=` is the wire line of the request; the "script line" inside a
/// command error message is always 1 — each wire command is a one-line
/// script.)
///
/// A malformed or failing request answers `err ...` and never corrupts or
/// closes the named session. Parse and *edit* failures leave its state
/// byte-identical (edits validate before mutating) — asserted by the
/// fuzz-style negative suite in tests/server/session_server_test.cc and,
/// over a real socket, tests/net/socket_server_test.cc. A *solve* failure
/// is different: the edit already stuck, and the error message says "solve
/// failed after edit applied" so a client knows to reverse it explicitly
/// (e.g. `drop NAME`) rather than assume rejection.
///
/// Connection scoping: a stream served with
/// ServeStreamOptions::connection_scoped_clients (every network
/// connection) owns the clients it opened. `quit` gracefully closes them
/// (queued commands finish and answer first); EOF without `quit` — a
/// vanished peer and a clean FIN are indistinguishable on a socket, and
/// either way nobody reads the responses — abort-closes them (the
/// in-flight solve is cancelled cooperatively, queued commands fail).
/// Siblings on other connections are untouched either way. A connection can only address the
/// clients it opened (responses route to the opening connection's stream).
/// The PR 4 stdin mode instead drains everything and leaves clients open
/// (the process exits anyway).

#include <iosfwd>
#include <string>
#include <vector>

#include "app/cli_driver.h"
#include "server/registry_router.h"
#include "server/session_registry.h"
#include "util/status.h"

namespace rankhow {

/// One parsed wire line.
struct WireRequest {
  enum class Kind { kOpen, kClose, kStats, kQuit, kCommand, kDeadline };
  Kind kind = Kind::kCommand;
  std::string client;      // open/close/command
  std::string dataset;     // kOpen only; "" = the server's default
  SessionCommand command;  // kCommand only
  int64_t deadline_ms = 0;  // kDeadline only; 0 = restore the default
};

/// Parses one request line (no trailing newline; '#' comments and blank
/// lines are kNotFound — callers skip those, they get no response).
/// kInvalidArgument for everything malformed: unknown verbs, missing
/// client, bad command grammar.
Result<WireRequest> ParseWireLine(const std::string& line);

struct ServeStreamOptions {
  /// Network semantics: the stream owns the clients it opened — `quit`
  /// gracefully closes them, EOF without `quit` abort-closes them, and
  /// the registry is NOT drained when the stream ends (sibling connections
  /// keep solving). Off = the PR 4 stdin semantics (drain everything at
  /// quit/EOF, leave clients open).
  bool connection_scoped_clients = false;
};

/// Serves the line protocol over a stream pair until `quit` or EOF.
/// Thread-safe response writing (responses from concurrent strand
/// completions interleave whole-line). Returns the first transport-level
/// error; protocol-level errors are `err` responses. The registry overload
/// rejects the dataset form of `open` (one registry = one dataset); the
/// router overload routes it.
Status ServeStream(SessionRegistry* registry, std::istream& in,
                   std::ostream& out,
                   const ServeStreamOptions& options = ServeStreamOptions());
Status ServeStream(RegistryRouter* router, std::istream& in,
                   std::ostream& out,
                   const ServeStreamOptions& options = ServeStreamOptions());

/// One scripted client's outcome under RunScriptedClients.
struct ScriptedClientRun {
  std::string client;
  /// Per-step outcomes in script order. Steps whose edit failed carry the
  /// error in `status` below and are absent here.
  std::vector<SessionStepOutcome> outcomes;
  /// First failed step's status (the remaining steps still ran — server
  /// semantics: a failed edit leaves the session intact).
  Status status;
};

/// Deterministic multi-client mode: opens `num_clients` clients
/// ("c0".."cN-1"), client i streaming scripts[i % scripts.size()], all
/// concurrently on the registry pool, then drains. This is the
/// transport-free harness the equivalence tests and the throughput bench
/// drive; per-client results are ordered and complete when it returns.
Result<std::vector<ScriptedClientRun>> RunScriptedClients(
    SessionRegistry* registry,
    const std::vector<std::vector<SessionCommand>>& scripts,
    int num_clients);

}  // namespace rankhow

#endif  // RANKHOW_SERVER_WIRE_H_
