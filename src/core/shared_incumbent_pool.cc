#include "core/shared_incumbent_pool.h"

#include <algorithm>
#include <cmath>

namespace rankhow {

namespace {

bool SameWeights(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) >= 1e-12) return false;
  }
  return true;
}

}  // namespace

SharedIncumbentPool::SharedIncumbentPool(int capacity)
    : capacity_(static_cast<size_t>(std::max(1, capacity))) {}

void SharedIncumbentPool::Publish(const void* snapshot_id,
                                  const void* publisher,
                                  const std::vector<double>& weights,
                                  long error,
                                  const WarmCache::Entry* durable) {
  if (weights.empty()) return;
  WarmCache* cache = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache = warm_cache_;
    ++published_;
    bool refreshed = false;
    for (Entry& have : entries_) {
      if (have.snapshot == snapshot_id && SameWeights(have.weights, weights)) {
        // Re-proven vector: refresh credentials in place. The sequence
        // stays put — siblings that saw it once must not re-validate it
        // per solve.
        have.error = error;
        have.publisher = publisher;
        refreshed = true;
        break;
      }
    }
    if (!refreshed) {
      Entry entry;
      entry.snapshot = snapshot_id;
      entry.publisher = publisher;
      entry.weights = weights;
      entry.error = error;
      entry.seq = next_seq_++;
      entries_.push_back(std::move(entry));
      if (entries_.size() > capacity_) entries_.erase(entries_.begin());
    }
  }
  // Write-through to the persistent cache, outside mu_ (the cache has its
  // own locks and never calls back). Pool refreshes still reach the cache:
  // its own dedup decides whether anything new needs persisting.
  if (cache != nullptr && durable != nullptr) cache->Publish(*durable);
}

void SharedIncumbentPool::AttachWarmCache(WarmCache* cache) {
  std::lock_guard<std::mutex> lock(mu_);
  warm_cache_ = cache;
}

bool SharedIncumbentPool::has_warm_cache() const {
  std::lock_guard<std::mutex> lock(mu_);
  return warm_cache_ != nullptr;
}

size_t SharedIncumbentPool::CollectNew(
    const void* snapshot_id, const void* drawer, uint64_t* seen_seq,
    std::vector<std::vector<double>>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t added = 0;
  for (const Entry& entry : entries_) {
    if (entry.seq <= *seen_seq) continue;
    if (entry.snapshot != snapshot_id || entry.publisher == drawer) continue;
    out->push_back(entry.weights);
    ++added;
  }
  *seen_seq = next_seq_ - 1;
  drawn_ += static_cast<int64_t>(added);
  return added;
}

SharedIncumbentPoolStats SharedIncumbentPool::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SharedIncumbentPoolStats stats;
  stats.size = static_cast<int>(entries_.size());
  stats.published = published_;
  stats.drawn = drawn_;
  return stats;
}

}  // namespace rankhow
