#ifndef RANKHOW_CORE_EPSILON_H_
#define RANKHOW_CORE_EPSILON_H_

/// \file epsilon.h
/// Section V-A machinery: choosing the indicator thresholds ε₁, ε₂ from the
/// tie tolerance ε and the solver's precision tolerance τ (Lemmas 2 and 3),
/// and the paper's binary-search heuristic for finding τ itself by probing
/// the solver and exactly verifying its answers.

#include <functional>

#include "core/opt_problem.h"
#include "util/status.h"

namespace rankhow {

/// Lemma 2/3 construction: ε₂ = ε − τ and ε₁ = ε + τ⁺ with τ⁺ minimally
/// greater than τ, so ε₁ − ε₂ > 2τ and the solver can never consider δ = 0
/// and δ = 1 simultaneously satisfiable.
EpsilonConfig DeriveEpsilons(double tie_eps, double tau);

struct TauSearchOptions {
  double tau_min = 1e-12;
  double tau_max = 1e-2;
  /// Geometric bisection steps.
  int max_steps = 16;
};

struct TauSearchResult {
  /// Smallest probed τ whose solutions verified.
  double tau = 0;
  /// The corresponding (ε, ε₁, ε₂).
  EpsilonConfig eps;
  /// Solver probes performed.
  int probes = 0;
};

/// The paper's τ heuristic: binary-search τ̂; on numerical problems
/// (detected as a failed exact verification) move up, otherwise down.
/// `solve_and_verify` must run the solver at the given EpsilonConfig and
/// report whether the result passed exact verification.
Result<TauSearchResult> FindPrecisionTolerance(
    double tie_eps,
    const std::function<Result<bool>(const EpsilonConfig&)>& solve_and_verify,
    TauSearchOptions options = TauSearchOptions());

}  // namespace rankhow

#endif  // RANKHOW_CORE_EPSILON_H_
