#include "core/search_coordinator.h"

namespace rankhow {

bool SearchCoordinator::OfferIncumbent(double objective,
                                       const std::vector<double>& values) {
  if (objective >= best_objective() - improvement_tol_) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (objective >=
      best_objective_.load(std::memory_order_relaxed) - improvement_tol_) {
    return false;
  }
  best_objective_.store(objective, std::memory_order_release);
  best_values_ = values;
  incumbent_updates_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::vector<double> SearchCoordinator::incumbent_values() const {
  std::lock_guard<std::mutex> lock(mu_);
  return best_values_;
}

void SearchCoordinator::ReportError(const Status& status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (first_error_.ok()) first_error_ = status;
  error_stop_.store(true, std::memory_order_release);
}

Status SearchCoordinator::first_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_error_;
}

}  // namespace rankhow
