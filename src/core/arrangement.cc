#include "core/arrangement.h"

#include <algorithm>
#include <cmath>

#include "data/kernels.h"
#include "ranking/objective.h"
#include "util/string_util.h"

namespace rankhow {

namespace {

/// The three vertices of the weight 2-simplex.
constexpr std::array<std::array<double, 3>, 3> kVertices = {{
    {1.0, 0.0, 0.0},
    {0.0, 1.0, 0.0},
    {0.0, 0.0, 1.0},
}};

}  // namespace

Result<std::vector<SimplexSegment>> TieBoundarySegments(
    const Dataset& data, const std::vector<int>& tuples, double level) {
  if (data.num_attributes() != 3) {
    return Status::Invalid(StrFormat(
        "TieBoundarySegments visualizes the 2-simplex and needs exactly 3 "
        "attributes, got %d",
        data.num_attributes()));
  }
  for (int t : tuples) {
    if (t < 0 || t >= data.num_tuples()) {
      return Status::Invalid(StrFormat("tuple id %d out of range", t));
    }
  }

  std::vector<SimplexSegment> segments;
  for (size_t i = 0; i < tuples.size(); ++i) {
    for (size_t j = i + 1; j < tuples.size(); ++j) {
      const int s = tuples[i];
      const int r = tuples[j];
      std::array<double, 3> d;
      data.DiffVectorInto(s, r, d.data());

      // Intersect {w·d = level} with the three simplex edges. On the edge
      // from vertex u to vertex v, w(t) = t·u + (1−t)·v has
      // w·d = t·d_u + (1−t)·d_v, so t* = (level − d_v) / (d_u − d_v).
      std::vector<std::array<double, 3>> points;
      for (int u = 0; u < 3; ++u) {
        for (int v = u + 1; v < 3; ++v) {
          const double du = d[u];
          const double dv = d[v];
          if (std::abs(du - dv) < 1e-15) {
            // Edge parallel to the hyperplane: either disjoint or the whole
            // edge lies on it; the latter is reported as the edge segment.
            if (std::abs(du - level) < 1e-12) {
              points.push_back(kVertices[u]);
              points.push_back(kVertices[v]);
            }
            continue;
          }
          const double t = (level - dv) / (du - dv);
          if (t < -1e-12 || t > 1 + 1e-12) continue;
          const double tc = std::clamp(t, 0.0, 1.0);
          std::array<double, 3> w{};
          for (int a = 0; a < 3; ++a) {
            w[a] = tc * kVertices[u][a] + (1 - tc) * kVertices[v][a];
          }
          points.push_back(w);
        }
      }
      // Deduplicate corner hits (a line through a vertex intersects both
      // adjacent edges at the same point).
      std::vector<std::array<double, 3>> unique;
      for (const auto& p : points) {
        bool dup = false;
        for (const auto& q : unique) {
          double dist = 0;
          for (int a = 0; a < 3; ++a) dist += std::abs(p[a] - q[a]);
          if (dist < 1e-9) {
            dup = true;
            break;
          }
        }
        if (!dup) unique.push_back(p);
      }
      if (unique.empty()) continue;  // hyperplane misses the simplex
      SimplexSegment segment;
      segment.a = unique.front();
      segment.b = unique.size() >= 2 ? unique[1] : unique.front();
      segment.s = s;
      segment.r = r;
      segment.level = level;
      segments.push_back(segment);
    }
  }
  return segments;
}

Result<std::vector<ErrorSample>> ErrorField(const Dataset& data,
                                            const Ranking& given,
                                            int resolution, double tie_eps,
                                            const RankingObjectiveSpec& spec) {
  if (data.num_attributes() != 3) {
    return Status::Invalid("ErrorField needs exactly 3 attributes");
  }
  if (data.num_tuples() != given.num_tuples()) {
    return Status::Invalid("dataset/ranking size mismatch");
  }
  if (resolution < 1) {
    return Status::Invalid("resolution must be >= 1");
  }
  std::vector<ErrorSample> samples;
  samples.reserve(static_cast<size_t>(resolution + 1) * (resolution + 2) / 2);
  // One scores buffer and one weight vector reused across the whole grid:
  // the O(resolution^2) sweep scores through the batched kernel instead of
  // allocating a fresh vector per sample.
  std::vector<double> scores(data.num_tuples());
  std::vector<double> w(3);
  for (int i = 0; i <= resolution; ++i) {
    for (int j = 0; j <= resolution - i; ++j) {
      ErrorSample sample;
      sample.w = {static_cast<double>(i) / resolution,
                  static_cast<double>(j) / resolution,
                  static_cast<double>(resolution - i - j) / resolution};
      w.assign(sample.w.begin(), sample.w.end());
      kernels::BatchScores(data, w, scores.data());
      sample.error = ObjectiveOfScores(data, given, scores, tie_eps, spec);
      samples.push_back(sample);
    }
  }
  return samples;
}

}  // namespace rankhow
