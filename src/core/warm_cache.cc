#include "core/warm_cache.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/string_util.h"

namespace rankhow {

namespace {

/// The zlib CRC-32 table, built once (polynomial 0xEDB88320). Shared with
/// the session journal: JournalCrc32 delegates here so both file formats
/// checksum identically.
const uint32_t* Crc32Table() {
  static uint32_t table[256];
  static bool built = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)built;
  return table;
}

void FnvMix(uint64_t* h, const void* bytes, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(bytes);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= 1099511628211ull;  // FNV-1a prime
  }
}

constexpr uint64_t kFnvOffset = 1469598103934665603ull;

constexpr char kMagic[] = "RHW1";
constexpr char kFileName[] = "warm.cache";

/// True when two weight vectors agree to 1e-12 per coordinate — the same
/// dedup tolerance as SharedIncumbentPool::SameWeights.
bool SameWeights(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::fabs(a[i] - b[i]) > 1e-12) return false;
  }
  return true;
}

std::string FormatEntry(const WarmCache::Entry& entry) {
  std::string payload = StrFormat(
      "win %016llx %016llx %d %ld %d",
      static_cast<unsigned long long>(entry.fp.dataset_fp),
      static_cast<unsigned long long>(entry.fp.problem_fp),
      entry.true_semantics ? 1 : 0, entry.error,
      static_cast<int>(entry.weights.size()));
  for (double w : entry.weights) {
    payload += StrFormat(" %.17g", w);
  }
  return payload;
}

bool ParseHex64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  *out = std::strtoull(s.c_str(), &end, 16);
  return end != nullptr && *end == '\0' && errno == 0;
}

/// Parses one framed line into an entry; false = corrupt (caller counts).
bool ParseRecordLine(const std::string& line, WarmCache::Entry* out) {
  // "RHW1 <crc8hex> <len> <payload>"
  if (!StartsWith(line, std::string(kMagic) + " ")) return false;
  const size_t crc_begin = sizeof(kMagic);  // skip "RHW1 " (magic + space)
  const size_t crc_end = line.find(' ', crc_begin);
  if (crc_end == std::string::npos) return false;
  const size_t len_end = line.find(' ', crc_end + 1);
  if (len_end == std::string::npos) return false;
  uint32_t crc = 0;
  {
    const std::string hex = line.substr(crc_begin, crc_end - crc_begin);
    if (hex.size() != 8) return false;
    char* end = nullptr;
    crc = static_cast<uint32_t>(std::strtoul(hex.c_str(), &end, 16));
    if (end == nullptr || *end != '\0') return false;
  }
  auto len = ParseInt(line.substr(crc_end + 1, len_end - crc_end - 1));
  if (!len.ok() || *len < 0) return false;
  const std::string payload = line.substr(len_end + 1);
  if (static_cast<int64_t>(payload.size()) != *len) return false;
  if (FrameCrc32(payload) != crc) return false;

  // Payload grammar: "win <dfp> <pfp> <sem> <error> <k> w1 ... wk".
  std::vector<std::string> fields = Split(payload, ' ');
  if (fields.size() < 6 || fields[0] != "win") return false;
  WarmCache::Entry entry;
  if (!ParseHex64(fields[1], &entry.fp.dataset_fp)) return false;
  if (!ParseHex64(fields[2], &entry.fp.problem_fp)) return false;
  if (fields[3] != "0" && fields[3] != "1") return false;
  entry.true_semantics = fields[3] == "1";
  auto error = ParseInt(fields[4]);
  if (!error.ok() || *error < 0) return false;
  entry.error = static_cast<long>(*error);
  auto k = ParseInt(fields[5]);
  if (!k.ok() || *k <= 0 ||
      fields.size() != static_cast<size_t>(6 + *k)) {
    return false;
  }
  entry.weights.reserve(static_cast<size_t>(*k));
  for (int64_t i = 0; i < *k; ++i) {
    auto w = ParseDouble(fields[static_cast<size_t>(6 + i)]);
    if (!w.ok() || !std::isfinite(*w)) return false;
    entry.weights.push_back(*w);
  }
  *out = std::move(entry);
  return true;
}

}  // namespace

uint32_t FrameCrc32(const std::string& payload) {
  const uint32_t* table = Crc32Table();
  uint32_t c = 0xFFFFFFFFu;
  for (unsigned char ch : payload) {
    c = table[(c ^ ch) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint64_t DatasetFingerprint(const Dataset& data, const Ranking& given) {
  uint64_t h = kFnvOffset;
  const int64_t n = data.num_tuples();
  const int64_t m = data.num_attributes();
  FnvMix(&h, &n, sizeof(n));
  FnvMix(&h, &m, sizeof(m));
  for (int a = 0; a < data.num_attributes(); ++a) {
    const std::string& name = data.attribute_name(a);
    FnvMix(&h, name.data(), name.size());
    for (int t = 0; t < data.num_tuples(); ++t) {
      const double v = data.value(t, a);
      FnvMix(&h, &v, sizeof(v));  // bit pattern, not rounded text
    }
  }
  for (int t : given.ranked_tuples()) {
    const int pos = given.position(t);
    FnvMix(&h, &t, sizeof(t));
    FnvMix(&h, &pos, sizeof(pos));
  }
  return h;
}

uint64_t HashWeightConstraints(const WeightConstraintSet& constraints) {
  // Serialize each constraint with its terms sorted by attribute, then sort
  // the serialized forms: {w0>=0.1, w1<=0.4} hashes the same no matter the
  // insertion order or the names the wire clients picked (names affect
  // removal semantics, not the feasible set).
  std::vector<std::string> keys;
  keys.reserve(constraints.size());
  for (const WeightConstraint& c : constraints.constraints()) {
    std::vector<std::pair<int, double>> terms = c.terms;
    std::sort(terms.begin(), terms.end());
    std::string key = StrFormat("%d %.17g", static_cast<int>(c.op), c.rhs);
    for (const auto& term : terms) {
      key += StrFormat(" %d:%.17g", term.first, term.second);
    }
    keys.push_back(std::move(key));
  }
  std::sort(keys.begin(), keys.end());
  uint64_t h = kFnvOffset;
  for (const std::string& key : keys) {
    FnvMix(&h, key.data(), key.size());
    const char sep = '\n';
    FnvMix(&h, &sep, 1);
  }
  return h;
}

ProblemFingerprint FingerprintProblem(uint64_t dataset_fp,
                                      uint64_t constraint_hash,
                                      const OptProblem& problem) {
  ProblemFingerprint fp;
  fp.dataset_fp = dataset_fp;
  uint64_t h = kFnvOffset;
  FnvMix(&h, &constraint_hash, sizeof(constraint_hash));
  // ε triple, bit patterns (a solver-visible parameter change must miss).
  FnvMix(&h, &problem.eps.tie_eps, sizeof(double));
  FnvMix(&h, &problem.eps.eps1, sizeof(double));
  FnvMix(&h, &problem.eps.eps2, sizeof(double));
  // Objective: kind + the integral penalty ladder.
  const int kind = static_cast<int>(problem.objective.kind);
  FnvMix(&h, &kind, sizeof(kind));
  const int64_t np = static_cast<int64_t>(problem.objective.penalties.size());
  FnvMix(&h, &np, sizeof(np));
  for (long p : problem.objective.penalties) {
    FnvMix(&h, &p, sizeof(p));
  }
  // Position bands, in order (duplicates/reorderings are different scripts
  // but the same feasible set is rare enough not to canonicalize; a false
  // mismatch costs a demotion, never correctness).
  std::vector<std::string> pos_keys;
  pos_keys.reserve(problem.position_constraints.size());
  for (const PositionConstraint& pc : problem.position_constraints) {
    pos_keys.push_back(
        StrFormat("%d %d %d", pc.tuple, pc.min_position, pc.max_position));
  }
  std::sort(pos_keys.begin(), pos_keys.end());
  for (const std::string& key : pos_keys) {
    FnvMix(&h, key.data(), key.size());
  }
  std::vector<std::string> ord_keys;
  ord_keys.reserve(problem.order_constraints.size());
  for (const PairwiseOrderConstraint& oc : problem.order_constraints) {
    ord_keys.push_back(StrFormat("%d %d", oc.above, oc.below));
  }
  std::sort(ord_keys.begin(), ord_keys.end());
  for (const std::string& key : ord_keys) {
    FnvMix(&h, key.data(), key.size());
  }
  fp.problem_fp = h;
  return fp;
}

Result<std::unique_ptr<WarmCache>> WarmCache::Open(const std::string& dir,
                                                   WarmCacheOptions options) {
  const std::string path = dir + "/" + kFileName;
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IoError("warm cache open(" + path +
                           "): " + std::strerror(errno));
  }
  std::unique_ptr<WarmCache> cache(new WarmCache(fd, path, options));

  // Load whatever intact history the file holds. Torn/corrupt records are
  // dropped and counted, never fatal: a vandalized cache degrades to fewer
  // warm starts, and the loud stderr line is the operator's cue.
  std::ifstream in(path, std::ios::binary);
  if (in) {
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    size_t pos = 0;
    while (pos < text.size()) {
      const size_t nl = text.find('\n', pos);
      if (nl == std::string::npos) {
        ++cache->stats_.truncated;
        break;
      }
      const std::string line = text.substr(pos, nl - pos);
      pos = nl + 1;
      if (line.empty()) continue;
      Entry entry;
      if (ParseRecordLine(line, &entry)) {
        cache->InsertLocked(entry);  // single-threaded here; lock not needed
        ++cache->stats_.loaded;
      } else {
        ++cache->stats_.skipped;
      }
    }
  }
  if (cache->stats_.skipped > 0 || cache->stats_.truncated > 0) {
    std::fprintf(stderr,
                 "rankhow: warm cache %s: dropped %lld corrupt and %lld torn "
                 "record(s); serving the %lld intact one(s)\n",
                 path.c_str(),
                 static_cast<long long>(cache->stats_.skipped),
                 static_cast<long long>(cache->stats_.truncated),
                 static_cast<long long>(cache->stats_.loaded));
  }
  cache->writer_ = std::thread(&WarmCache::WriterLoop, cache.get());
  return cache;
}

WarmCache::WarmCache(int fd, std::string path, WarmCacheOptions options)
    : path_(std::move(path)), options_(options), fd_(fd) {}

WarmCache::~WarmCache() {
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    writer_stop_ = true;
  }
  write_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool WarmCache::InsertLocked(const Entry& entry) {
  if (entry.weights.empty() || entry.error < 0) return false;
  std::vector<Entry>& group = by_dataset_[entry.fp.dataset_fp];
  if (group.empty()) key_order_.push_back(entry.fp.dataset_fp);

  // Dedup against same-fingerprint entries: a re-proof of the same problem
  // with the same weights refreshes in place (an improved error wins).
  int per_key = 0;
  for (Entry& existing : group) {
    if (existing.fp != entry.fp) continue;
    ++per_key;
    if (SameWeights(existing.weights, entry.weights)) {
      if (entry.error < existing.error ||
          (entry.true_semantics && !existing.true_semantics)) {
        existing.error = entry.error;
        existing.true_semantics = entry.true_semantics;
        ++generation_;
        return true;
      }
      return false;  // already known, nothing new to persist
    }
  }
  if (per_key >= options_.max_entries_per_key) {
    // Evict the oldest entry of this exact fingerprint.
    for (auto it = group.begin(); it != group.end(); ++it) {
      if (it->fp == entry.fp) {
        group.erase(it);
        --resident_;
        break;
      }
    }
  }
  group.push_back(entry);
  ++resident_;
  ++generation_;

  // Whole-group eviction at the resident cap (oldest dataset first). Pure
  // warm-start state: dropping entries costs warmth, never correctness.
  while (resident_ > options_.max_resident_entries && key_order_.size() > 1) {
    const uint64_t victim = key_order_.front();
    key_order_.pop_front();
    auto it = by_dataset_.find(victim);
    if (it != by_dataset_.end()) {
      resident_ -= static_cast<int>(it->second.size());
      by_dataset_.erase(it);
    }
  }
  return true;
}

void WarmCache::Publish(const Entry& entry) {
  bool persist = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.published;
    persist = InsertLocked(entry);
  }
  if (!persist) return;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (degraded_ || writer_stop_) return;
    write_queue_.push_back(FormatEntry(entry));
  }
  write_cv_.notify_one();
  if (options_.synchronous_appends) Flush();
}

WarmCache::Draw WarmCache::DrawFor(const ProblemFingerprint& fp,
                                   bool gap_semantics) {
  Draw draw;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_dataset_.find(fp.dataset_fp);
  if (it != by_dataset_.end()) {
    for (const Entry& entry : it->second) {
      if (entry.fp == fp) {
        // Exact match: candidate AND (semantics permitting) bound. A
        // true-semantics optimum never exceeds the gap optimum, so it may
        // seed a gap re-solve; the reverse direction is unsound.
        if (entry.true_semantics || gap_semantics) {
          draw.bound = std::max(draw.bound, entry.error);
        }
        draw.exact.push_back(entry);
      } else {
        // Same dataset, different problem: the weight vector is still a
        // plausible warm start (dimensions match by construction), but its
        // recorded error means nothing here. Candidate, never bound.
        draw.candidates.push_back(entry.weights);
      }
    }
  }
  if (!draw.exact.empty()) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  stats_.demotions += static_cast<int64_t>(draw.candidates.size());
  return draw;
}

uint64_t WarmCache::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

void WarmCache::Flush() {
  std::unique_lock<std::mutex> lock(write_mu_);
  drained_cv_.wait(lock, [this] {
    return (write_queue_.empty() && !writer_busy_) || degraded_;
  });
}

WarmCacheStats WarmCache::Stats() const {
  WarmCacheStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats = stats_;
    stats.entries = resident_;
  }
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    stats.degraded = degraded_;
    stats.appended = appended_;
  }
  return stats;
}

void WarmCache::WriterLoop() {
  std::unique_lock<std::mutex> lock(write_mu_);
  while (true) {
    write_cv_.wait(lock,
                   [this] { return writer_stop_ || !write_queue_.empty(); });
    if (write_queue_.empty()) {
      if (writer_stop_) return;
      continue;
    }
    std::vector<std::string> batch(write_queue_.begin(), write_queue_.end());
    write_queue_.clear();
    writer_busy_ = true;
    lock.unlock();
    AppendBatch(batch);
    lock.lock();
    writer_busy_ = false;
    drained_cv_.notify_all();
    if (writer_stop_ && write_queue_.empty()) return;
  }
}

void WarmCache::AppendBatch(const std::vector<std::string>& records) {
  // One write() per record (O_APPEND atomic tail append, like the journal:
  // a crash mid-write leaves at most one torn final record, which Open()
  // truncates away), one fsync per batch.
  std::string failure;
  for (const std::string& payload : records) {
    const std::string record =
        StrFormat("%s %08x %d ", kMagic, FrameCrc32(payload),
                  static_cast<int>(payload.size())) +
        payload + "\n";
    const char* p = record.data();
    size_t left = record.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        failure = StrFormat("write failed (%s)", std::strerror(errno));
        break;
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    if (!failure.empty()) break;
    {
      std::lock_guard<std::mutex> lock(write_mu_);
      ++appended_;
    }
  }
  if (failure.empty() && options_.fsync_appends && ::fsync(fd_) != 0) {
    failure = StrFormat("fsync failed (%s)", std::strerror(errno));
  }
  if (!failure.empty()) {
    // Degrade loudly to cache-off-for-writes: the resident entries keep
    // serving draws, but this process can no longer promise persistence.
    std::fprintf(stderr,
                 "rankhow: warm cache %s %s: degrading to cache-off for "
                 "writes (in-memory warm starts keep serving)\n",
                 path_.c_str(), failure.c_str());
    std::lock_guard<std::mutex> lock(write_mu_);
    degraded_ = true;
    write_queue_.clear();
    drained_cv_.notify_all();
  }
}

}  // namespace rankhow
