#include "core/solve_session.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "core/presolve.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace rankhow {

SolveSession::SolveSession(Dataset data, Ranking given,
                           RankHowOptions options)
    : SolveSession(SharedDataset(std::move(data)),
                   SharedRanking(std::move(given)), std::move(options)) {}

SolveSession::SolveSession(SharedDataset data, Ranking given,
                           RankHowOptions options)
    : SolveSession(std::move(data), SharedRanking(std::move(given)),
                   std::move(options)) {}

SolveSession::SolveSession(SharedDataset data, SharedRanking given,
                           RankHowOptions options)
    : data_(std::move(data)),
      given_(std::move(given)),
      options_(std::move(options)) {
  problem_.data = &data_.get();
  problem_.given = &given_.get();
  problem_.eps = options_.eps;
}

void SolveSession::NoteEdit(SessionDeltaKind kind) {
  switch (kind) {
    case SessionDeltaKind::kTighten:
      // Feasible set shrank, objective unchanged: the previous proven
      // optimum stays a valid lower bound (bound_valid_ untouched).
      break;
    case SessionDeltaKind::kRelax:
    case SessionDeltaKind::kStructural:
      bound_valid_ = false;
      model_dirty_ = true;
      pending_weight_rows_.clear();
      pending_order_rows_.clear();
      break;
  }
}

Status SolveSession::AddWeightConstraint(WeightConstraint constraint) {
  if (constraint.terms.empty()) {
    return Status::Invalid("weight constraint has no terms");
  }
  for (const auto& [attr, coeff] : constraint.terms) {
    (void)coeff;
    if (attr < 0 || attr >= data().num_attributes()) {
      return Status::Invalid(
          StrFormat("weight constraint references unknown attribute %d",
                    attr));
    }
  }
  problem_.constraints.Add(constraint);
  if (!model_dirty_) pending_weight_rows_.push_back(std::move(constraint));
  NoteEdit(SessionDeltaKind::kTighten);
  return Status();
}

Status SolveSession::RemoveWeightConstraint(const std::string& name) {
  if (problem_.constraints.RemoveByName(name) == 0) {
    return Status::NotFound("no weight constraint named " + name);
  }
  NoteEdit(SessionDeltaKind::kRelax);
  return Status();
}

Status SolveSession::AddOrderConstraint(int above, int below) {
  if (above < 0 || above >= data().num_tuples() || below < 0 ||
      below >= data().num_tuples() || above == below) {
    return Status::Invalid(
        StrFormat("bad order constraint %d > %d", above, below));
  }
  problem_.order_constraints.push_back({above, below});
  if (!model_dirty_) pending_order_rows_.push_back({above, below});
  NoteEdit(SessionDeltaKind::kTighten);
  return Status();
}

Status SolveSession::AddPositionConstraint(PositionConstraint constraint) {
  if (constraint.tuple < 0 || constraint.tuple >= data().num_tuples()) {
    return Status::Invalid(
        StrFormat("position constraint on unknown tuple %d",
                  constraint.tuple));
  }
  if (constraint.min_position < 1 ||
      constraint.min_position > constraint.max_position) {
    return Status::Invalid("position constraint range is empty");
  }
  problem_.position_constraints.push_back(constraint);
  // Semantically a tightening (the objective is untouched, so the bound
  // survives), but the compiled model lowers position ranges onto the
  // group's indicator variables — and an unranked tuple may need a whole
  // new group — so the model recompiles either way.
  model_dirty_ = true;
  pending_weight_rows_.clear();
  pending_order_rows_.clear();
  NoteEdit(SessionDeltaKind::kTighten);
  return Status();
}

Status SolveSession::SetEpsilon(const EpsilonConfig& eps) {
  if (!eps.Valid()) {
    return Status::Invalid("epsilons must satisfy eps2 <= eps < eps1");
  }
  const EpsilonConfig old = problem_.eps;
  problem_.eps = eps;
  options_.eps = eps;
  // ε only lives in indicator/order-row right-hand sides (and their
  // ε-linear big-M), so a compiled model moves to the new thresholds by an
  // in-place rhs patch — no recompile, warm bases and the incumbent pool
  // untouched. The patch refuses (and we fall back to a full rebuild) when
  // the move would un-fix an interval-fixed indicator the build baked in
  // as a constant.
  if (model_ != nullptr && !model_dirty_ &&
      PatchEpsilonInPlace(eps, model_.get())) {
    ++stats_.eps_patches;
  } else {
    model_dirty_ = true;
    pending_weight_rows_.clear();
    pending_order_rows_.clear();
  }
  // Bound validity is a separate question from patchability: raising ε₁
  // and lowering ε₂ shrinks the (w, δ) feasible set — strict separation
  // gets harder both ways — so the proven optimum survives as a lower
  // bound, exactly like a kTighten edit. Any other move (including a
  // tie_eps change, which rewrites what the objective counts as an error)
  // relaxes it.
  const bool tighten = eps.eps1 >= old.eps1 && eps.eps2 <= old.eps2 &&
                       eps.tie_eps == old.tie_eps;
  if (!tighten) bound_valid_ = false;
  return Status();
}

Status SolveSession::SetObjective(const RankingObjectiveSpec& objective) {
  problem_.objective = objective;
  NoteEdit(SessionDeltaKind::kStructural);
  return Status();
}

Status SolveSession::AppendTuple(const std::vector<double>& values,
                                 int* id_out) {
  if (static_cast<int>(values.size()) != data().num_attributes()) {
    return Status::Invalid(
        StrFormat("tuple has %d values, dataset has %d attributes",
                  static_cast<int>(values.size()), data().num_attributes()));
  }
  std::vector<int> positions = given_.get().positions();
  positions.push_back(kUnranked);
  RH_ASSIGN_OR_RETURN(Ranking grown, Ranking::Create(std::move(positions)));
  const int64_t forks_before = data_.forks();
  const int64_t rank_forks_before = given_.forks();
  // Copy-on-write: appending forks a private snapshot iff siblings share
  // this one; either way both handles may re-point, so the problem's
  // dataset and ranking views must be refreshed.
  int id = data_.AppendTuple(values);
  problem_.data = &data_.get();
  stats_.dataset_forks += data_.forks() - forks_before;
  given_.Reset(std::move(grown));
  problem_.given = &given_.get();
  stats_.ranking_forks += given_.forks() - rank_forks_before;
  have_dataset_fp_ = false;  // instance changed; re-fingerprint lazily
  if (id_out != nullptr) *id_out = id;
  NoteEdit(SessionDeltaKind::kStructural);
  return Status();
}

Result<const OptModel*> SolveSession::EnsureModel() {
  if (!model_dirty_ && model_ != nullptr) {
    for (const WeightConstraint& c : pending_weight_rows_) {
      AppendWeightConstraintRow(c, model_.get());
      ++stats_.model_patches;
    }
    for (const PairwiseOrderConstraint& oc : pending_order_rows_) {
      AppendOrderConstraintRow(problem_, oc, model_.get());
      ++stats_.model_patches;
    }
    pending_weight_rows_.clear();
    pending_order_rows_.clear();
    return model_.get();
  }
  RH_ASSIGN_OR_RETURN(
      OptModel built,
      BuildOptModel(problem_, WeightBox::FullSimplex(data().num_attributes()),
                    options_.use_indicator_fixing,
                    options_.use_strengthening_cuts,
                    options_.use_tight_big_m));
  model_ = std::make_unique<OptModel>(std::move(built));
  model_dirty_ = false;
  pending_weight_rows_.clear();
  pending_order_rows_.clear();
  ++stats_.model_builds;
  return model_.get();
}

ProblemFingerprint SolveSession::CurrentFingerprint() {
  if (!have_dataset_fp_) {
    cached_dataset_fp_ = DatasetFingerprint(data(), given());
    have_dataset_fp_ = true;
  }
  if (!have_constraint_hash_ ||
      cached_constraint_rev_ != problem_.constraints.revision()) {
    cached_constraint_hash_ = HashWeightConstraints(problem_.constraints);
    cached_constraint_rev_ = problem_.constraints.revision();
    have_constraint_hash_ = true;
  }
  return FingerprintProblem(cached_dataset_fp_, cached_constraint_hash_,
                            problem_);
}

Result<RankHowResult> SolveSession::Solve() {
  WallTimer timer;
  Deadline deadline(options_.time_limit_seconds);
  ++stats_.solves;
  const WeightBox box = WeightBox::FullSimplex(data().num_attributes());
  const SolveStrategy strategy =
      ResolveSolveStrategy(problem_, options_, box);
  // The semantics of what this solve will *prove*: the spatial strategy
  // proves the true ε-tie optimum, MILP/SAT the (ε₂, ε₁)-gap optimum,
  // which the true optimum never exceeds. Both the session's own bound
  // reuse and the warm-cache bound eligibility compare like with like.
  const bool gap_semantics = strategy != SolveStrategy::kSpatial;

  ExactSolveSeed seed;
  // Warm incumbent: revalidate the pool against the edited problem; fall
  // back to the cold multi-start only when nothing in the pool survives.
  // Both passes run under the clamped presolve budget so warm-start
  // discovery cannot eat the exact search's share of a tight time limit.
  const PresolveOptions presolve = ClampedPresolveOptions(options_, deadline);
  bool pool_warm = false;
  std::vector<std::vector<double>> pooled;
  pooled.reserve(pool_.size());
  for (const PoolEntry& entry : pool_) pooled.push_back(entry.weights);
  if (shared_pool_ != nullptr) {
    // Cross-client candidates: only the entries published since this
    // session's last draw (revision-checked — see shared_incumbent_pool.h).
    // They join the session's own pool in the revalidation pass below, so
    // they are re-evaluated under *this* session's problem before any use.
    stats_.shared_draws += static_cast<int64_t>(shared_pool_->CollectNew(
        data_.snapshot_id(), this, &shared_seen_seq_, &pooled));
  }
  ProblemFingerprint fp;
  if (warm_cache_ != nullptr) {
    fp = CurrentFingerprint();
    const uint64_t gen = warm_cache_->generation();
    // Generation-checked draw: an unchanged cache is not re-drawn for an
    // unchanged fingerprint + semantics (entries already drawn that proved
    // useful re-entered through the session pool).
    if (!cache_drawn_ || fp != cache_drawn_fp_ ||
        gen != cache_drawn_generation_ ||
        gap_semantics != cache_drawn_gap_semantics_) {
      WarmCache::Draw draw = warm_cache_->DrawFor(fp, gap_semantics);
      if (!draw.exact.empty()) {
        ++stats_.cache_hits;
      } else {
        ++stats_.cache_misses;
      }
      stats_.cache_demotions += static_cast<int64_t>(draw.candidates.size());
      // Exact matches and demoted candidates alike enter as revalidation
      // candidates (re-evaluated under *this* problem before any use);
      // only the exact matches' semantics-checked bound survives as is.
      for (WarmCache::Entry& entry : draw.exact) {
        pooled.push_back(std::move(entry.weights));
      }
      for (std::vector<double>& weights : draw.candidates) {
        pooled.push_back(std::move(weights));
      }
      cache_bound_ = draw.bound;
      cache_drawn_ = true;
      cache_drawn_fp_ = fp;
      cache_drawn_generation_ = gen;
      cache_drawn_gap_semantics_ = gap_semantics;
    }
  }
  if (!pooled.empty()) {
    auto re = RevalidateIncumbents(problem_, box, pooled, presolve);
    if (re.ok() && re->found()) {
      seed.warm_weights = std::move(re->weights);
      pool_warm = true;
      ++stats_.pool_hits;
    }
  }
  if (!pool_warm && options_.use_presolve) {
    auto pre = PresolveIncumbent(problem_, box, presolve);
    ++stats_.presolve_runs;
    if (pre.ok() && pre->found()) seed.warm_weights = std::move(pre->weights);
    // Presolve failure is non-fatal: the exact search runs cold.
  }

  // Bound reuse: valid only across constraints-only tightening edits, and
  // only comparing like semantics with like — a spatial bound also seeds a
  // gap re-solve but not vice versa (see gap_semantics above).
  if (have_proven_ && bound_valid_ && proven_optimum_ >= 0 &&
      (proven_true_semantics_ || gap_semantics)) {
    seed.lower_bound = proven_optimum_;
    ++stats_.bound_seeds;
  }
  // Warm-cache bound: an exact-fingerprint entry proved the optimum of
  // *this very problem* (semantics-checked in DrawFor), so it seeds the
  // same tighten-only external bound path. Mismatched entries never reach
  // here — DrawFor demotes them to candidates with no bound.
  if (warm_cache_ != nullptr && cache_bound_ >= 0 &&
      cache_bound_ > seed.lower_bound) {
    seed.lower_bound = cache_bound_;
    ++stats_.cache_bound_seeds;
  }

  RankHowResult result;
  if (strategy == SolveStrategy::kSpatial) {
    // One warm P-feasibility oracle across the whole query sequence.
    seed.box_oracle = EnsureWarmBoxOracle(problem_, options_, &box_oracle_);
    RH_ASSIGN_OR_RETURN(
        result, SolveOptSpatial(problem_, options_, box, seed, deadline));
  } else {
    RH_ASSIGN_OR_RETURN(const OptModel* model, EnsureModel());
    if (strategy == SolveStrategy::kSatBinarySearch) {
      RH_ASSIGN_OR_RETURN(result, SolveOptModelSat(problem_, options_,
                                                   *model, seed, deadline));
    } else {
      RH_ASSIGN_OR_RETURN(result, SolveOptModelMilp(problem_, options_,
                                                    *model, seed, deadline));
    }
  }
  result.strategy_used = strategy;
  result.seconds = timer.ElapsedSeconds();

  // Pool maintenance: the solve's winner first (with its verified error),
  // then the warm seed that fed it (they differ when the search improved
  // on the seed).
  Remember(result.function.weights, /*winner=*/true, result.error);
  Remember(seed.warm_weights, /*winner=*/false, /*known_error=*/-1);

  // Cross-client sharing publishes *proven* winners only: unproven
  // incumbents churn the siblings' revalidation passes for candidates the
  // publisher itself may discard next solve. The warm cache gets the same
  // winners, fingerprint-stamped — through the pool's write-through front
  // when one is attached, directly otherwise.
  const bool publish = result.proven_optimal && !result.function.weights.empty();
  WarmCache::Entry durable;
  if (publish && warm_cache_ != nullptr) {
    durable.fp = fp;
    durable.true_semantics = strategy == SolveStrategy::kSpatial;
    durable.error = result.claimed_error;
    durable.weights = result.function.weights;
  }
  if (shared_pool_ != nullptr && publish) {
    const bool through_pool =
        warm_cache_ != nullptr && shared_pool_->has_warm_cache();
    shared_pool_->Publish(data_.snapshot_id(), this, result.function.weights,
                          result.claimed_error,
                          through_pool ? &durable : nullptr);
    ++stats_.shared_publishes;
    if (warm_cache_ != nullptr && !through_pool) warm_cache_->Publish(durable);
  } else if (warm_cache_ != nullptr && publish) {
    warm_cache_->Publish(durable);
  }
  if (warm_cache_ != nullptr && publish) ++stats_.cache_publishes;

  have_proven_ = result.proven_optimal;
  proven_optimum_ = result.claimed_error;
  proven_true_semantics_ = strategy == SolveStrategy::kSpatial;
  bound_valid_ = true;
  return result;
}

std::vector<long> SolveSession::incumbent_pool_errors() const {
  std::vector<long> errors;
  errors.reserve(pool_.size());
  for (const PoolEntry& entry : pool_) errors.push_back(entry.error);
  return errors;
}

void SolveSession::Remember(const std::vector<double>& weights, bool winner,
                            long known_error) {
  if (weights.empty()) return;
  for (PoolEntry& have : pool_) {
    if (have.weights.size() != weights.size()) continue;
    double dist = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
      dist = std::max(dist, std::abs(have.weights[i] - weights[i]));
    }
    if (dist < 1e-12) {
      // Same vector re-surfaced: upgrade its credentials instead of
      // duplicating (a winner flag is sticky — once optimal for some past
      // constraint set, always "a past winner").
      have.winner = have.winner || winner;
      if (known_error >= 0) have.error = known_error;
      return;
    }
  }
  PoolEntry entry;
  entry.weights = weights;
  entry.winner = winner;
  entry.error = known_error >= 0
                    ? known_error
                    : EvaluateTrueError(problem_, weights).value_or(-1);
  pool_.insert(pool_.begin(), std::move(entry));
  const size_t cap =
      static_cast<size_t>(std::max(1, options_.incumbent_pool_cap));
  while (pool_.size() > cap) EvictOne();
}

void SolveSession::EvictOne() {
  // Dominated-entry eviction (ROADMAP's "keep only entries optimal for
  // some past constraint set"). Everything here is a warm-start heuristic:
  // pool entries are candidates, never bounds, so any policy is sound —
  // this one is chosen so a long tighten run does not flush the low-error
  // incumbents a later relax edit warm-starts from.
  //
  // Per-entry standing under the *current* problem: cur = the true ε-tie
  // objective, or nullopt when the entry violates the current constraints.
  // Objective values also refresh stale recorded errors (ε/objective may
  // have changed structurally since the entry was recorded).
  const size_t n = pool_.size();
  std::vector<std::optional<long>> cur(n);
  for (size_t i = 0; i < n; ++i) {
    cur[i] = EvaluateTrueError(problem_, pool_[i].weights);
    if (cur[i].has_value()) pool_[i].error = *cur[i];
  }
  auto evict = [this](size_t victim) {
    pool_.erase(pool_.begin() + victim);
    ++stats_.pool_evictions;
  };

  // 1. Seed echoes first: a non-winner that is currently infeasible, or
  //    whose objective another entry matches or beats, was never uniquely
  //    valuable. Stalest such entry goes (index n-1 is oldest).
  for (size_t i = n; i-- > 0;) {
    const PoolEntry& x = pool_[i];
    if (x.winner) continue;
    bool covered = !cur[i].has_value();
    for (size_t j = 0; j < n && !covered; ++j) {
      covered = j != i && cur[j].has_value() &&
                (!cur[i].has_value() || *cur[j] <= *cur[i]);
    }
    if (covered) return evict(i);
  }

  // 2. Winners: protect (a) the lowest-recorded-error anchor — it re-warms
  //    the deepest relax edits — and (b) the best currently-feasible entry,
  //    which is the next solve's warm start. Among the rest, evict the
  //    entry most redundant in error space: the one whose recorded error
  //    lies closest to another surviving entry's (its neighbor covers the
  //    relax depths it served). Ties: higher error, then oldest.
  size_t anchor = 0, best_feasible = n;
  for (size_t i = 0; i < n; ++i) {
    if (pool_[i].error >= 0 &&
        (pool_[anchor].error < 0 || pool_[i].error < pool_[anchor].error)) {
      anchor = i;
    }
    if (cur[i].has_value() &&
        (best_feasible == n || *cur[i] < *cur[best_feasible])) {
      best_feasible = i;
    }
  }
  size_t victim = n;
  long victim_gap = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i == anchor || i == best_feasible) continue;
    long gap = std::numeric_limits<long>::max();
    for (size_t j = 0; j < n; ++j) {
      if (j == i || pool_[j].error < 0 || pool_[i].error < 0) continue;
      gap = std::min(gap, std::abs(pool_[i].error - pool_[j].error));
    }
    const bool better =
        victim == n || gap < victim_gap ||
        (gap == victim_gap && (pool_[i].error > pool_[victim].error ||
                               (pool_[i].error == pool_[victim].error &&
                                i > victim)));
    if (better) {
      victim = i;
      victim_gap = gap;
    }
  }
  // Fallback (everything protected — a 2-entry pool): evict the oldest.
  evict(victim != n ? victim : n - 1);
}

}  // namespace rankhow
