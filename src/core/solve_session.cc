#include "core/solve_session.h"

#include <algorithm>
#include <cmath>

#include "core/presolve.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace rankhow {

SolveSession::SolveSession(Dataset data, Ranking given,
                           RankHowOptions options)
    : data_(std::move(data)),
      given_(std::move(given)),
      options_(std::move(options)) {
  problem_.data = &data_;
  problem_.given = &given_;
  problem_.eps = options_.eps;
}

void SolveSession::NoteEdit(SessionDeltaKind kind) {
  switch (kind) {
    case SessionDeltaKind::kTighten:
      // Feasible set shrank, objective unchanged: the previous proven
      // optimum stays a valid lower bound (bound_valid_ untouched).
      break;
    case SessionDeltaKind::kRelax:
    case SessionDeltaKind::kStructural:
      bound_valid_ = false;
      model_dirty_ = true;
      pending_weight_rows_.clear();
      pending_order_rows_.clear();
      break;
  }
}

Status SolveSession::AddWeightConstraint(WeightConstraint constraint) {
  if (constraint.terms.empty()) {
    return Status::Invalid("weight constraint has no terms");
  }
  for (const auto& [attr, coeff] : constraint.terms) {
    (void)coeff;
    if (attr < 0 || attr >= data_.num_attributes()) {
      return Status::Invalid(
          StrFormat("weight constraint references unknown attribute %d",
                    attr));
    }
  }
  problem_.constraints.Add(constraint);
  if (!model_dirty_) pending_weight_rows_.push_back(std::move(constraint));
  NoteEdit(SessionDeltaKind::kTighten);
  return Status();
}

Status SolveSession::RemoveWeightConstraint(const std::string& name) {
  if (problem_.constraints.RemoveByName(name) == 0) {
    return Status::NotFound("no weight constraint named " + name);
  }
  NoteEdit(SessionDeltaKind::kRelax);
  return Status();
}

Status SolveSession::AddOrderConstraint(int above, int below) {
  if (above < 0 || above >= data_.num_tuples() || below < 0 ||
      below >= data_.num_tuples() || above == below) {
    return Status::Invalid(
        StrFormat("bad order constraint %d > %d", above, below));
  }
  problem_.order_constraints.push_back({above, below});
  if (!model_dirty_) pending_order_rows_.push_back({above, below});
  NoteEdit(SessionDeltaKind::kTighten);
  return Status();
}

Status SolveSession::AddPositionConstraint(PositionConstraint constraint) {
  if (constraint.tuple < 0 || constraint.tuple >= data_.num_tuples()) {
    return Status::Invalid(
        StrFormat("position constraint on unknown tuple %d",
                  constraint.tuple));
  }
  if (constraint.min_position < 1 ||
      constraint.min_position > constraint.max_position) {
    return Status::Invalid("position constraint range is empty");
  }
  problem_.position_constraints.push_back(constraint);
  // Semantically a tightening (the objective is untouched, so the bound
  // survives), but the compiled model lowers position ranges onto the
  // group's indicator variables — and an unranked tuple may need a whole
  // new group — so the model recompiles either way.
  model_dirty_ = true;
  pending_weight_rows_.clear();
  pending_order_rows_.clear();
  NoteEdit(SessionDeltaKind::kTighten);
  return Status();
}

Status SolveSession::SetEpsilon(const EpsilonConfig& eps) {
  if (!eps.Valid()) {
    return Status::Invalid("epsilons must satisfy eps2 <= eps < eps1");
  }
  problem_.eps = eps;
  options_.eps = eps;
  NoteEdit(SessionDeltaKind::kStructural);
  return Status();
}

Status SolveSession::SetObjective(const RankingObjectiveSpec& objective) {
  problem_.objective = objective;
  NoteEdit(SessionDeltaKind::kStructural);
  return Status();
}

Status SolveSession::AppendTuple(const std::vector<double>& values,
                                 int* id_out) {
  if (static_cast<int>(values.size()) != data_.num_attributes()) {
    return Status::Invalid(
        StrFormat("tuple has %d values, dataset has %d attributes",
                  static_cast<int>(values.size()), data_.num_attributes()));
  }
  std::vector<int> positions = given_.positions();
  positions.push_back(kUnranked);
  RH_ASSIGN_OR_RETURN(Ranking grown, Ranking::Create(std::move(positions)));
  int id = data_.AppendTuple(values);
  given_ = std::move(grown);  // problem_.given points at given_; stays wired
  if (id_out != nullptr) *id_out = id;
  NoteEdit(SessionDeltaKind::kStructural);
  return Status();
}

Result<const OptModel*> SolveSession::EnsureModel() {
  if (!model_dirty_ && model_ != nullptr) {
    for (const WeightConstraint& c : pending_weight_rows_) {
      AppendWeightConstraintRow(c, model_.get());
      ++stats_.model_patches;
    }
    for (const PairwiseOrderConstraint& oc : pending_order_rows_) {
      AppendOrderConstraintRow(problem_, oc, model_.get());
      ++stats_.model_patches;
    }
    pending_weight_rows_.clear();
    pending_order_rows_.clear();
    return model_.get();
  }
  RH_ASSIGN_OR_RETURN(
      OptModel built,
      BuildOptModel(problem_, WeightBox::FullSimplex(data_.num_attributes()),
                    options_.use_indicator_fixing,
                    options_.use_strengthening_cuts,
                    options_.use_tight_big_m));
  model_ = std::make_unique<OptModel>(std::move(built));
  model_dirty_ = false;
  pending_weight_rows_.clear();
  pending_order_rows_.clear();
  ++stats_.model_builds;
  return model_.get();
}

Result<RankHowResult> SolveSession::Solve() {
  WallTimer timer;
  Deadline deadline(options_.time_limit_seconds);
  ++stats_.solves;
  const WeightBox box = WeightBox::FullSimplex(data_.num_attributes());
  const SolveStrategy strategy =
      ResolveSolveStrategy(problem_, options_, box);

  ExactSolveSeed seed;
  // Warm incumbent: revalidate the pool against the edited problem; fall
  // back to the cold multi-start only when nothing in the pool survives.
  // Both passes run under the clamped presolve budget so warm-start
  // discovery cannot eat the exact search's share of a tight time limit.
  const PresolveOptions presolve = ClampedPresolveOptions(options_, deadline);
  bool pool_warm = false;
  if (!pool_.empty()) {
    auto re = RevalidateIncumbents(problem_, box, pool_, presolve);
    if (re.ok() && re->found()) {
      seed.warm_weights = std::move(re->weights);
      pool_warm = true;
      ++stats_.pool_hits;
    }
  }
  if (!pool_warm && options_.use_presolve) {
    auto pre = PresolveIncumbent(problem_, box, presolve);
    ++stats_.presolve_runs;
    if (pre.ok() && pre->found()) seed.warm_weights = std::move(pre->weights);
    // Presolve failure is non-fatal: the exact search runs cold.
  }

  // Bound reuse: valid only across constraints-only tightening edits, and
  // only comparing like semantics with like — the spatial strategy's true
  // ε-tie optimum never exceeds the MILP/SAT (ε₂, ε₁)-gap optimum, so a
  // spatial bound also seeds a gap re-solve but not vice versa.
  const bool gap_semantics = strategy != SolveStrategy::kSpatial;
  if (have_proven_ && bound_valid_ && proven_optimum_ >= 0 &&
      (proven_true_semantics_ || gap_semantics)) {
    seed.lower_bound = proven_optimum_;
    ++stats_.bound_seeds;
  }

  RankHowResult result;
  if (strategy == SolveStrategy::kSpatial) {
    // One warm P-feasibility oracle across the whole query sequence.
    seed.box_oracle = EnsureWarmBoxOracle(problem_, options_, &box_oracle_);
    RH_ASSIGN_OR_RETURN(
        result, SolveOptSpatial(problem_, options_, box, seed, deadline));
  } else {
    RH_ASSIGN_OR_RETURN(const OptModel* model, EnsureModel());
    if (strategy == SolveStrategy::kSatBinarySearch) {
      RH_ASSIGN_OR_RETURN(result, SolveOptModelSat(problem_, options_,
                                                   *model, seed, deadline));
    } else {
      RH_ASSIGN_OR_RETURN(result, SolveOptModelMilp(problem_, options_,
                                                    *model, seed, deadline));
    }
  }
  result.strategy_used = strategy;
  result.seconds = timer.ElapsedSeconds();

  // Pool maintenance: the solve's winner first, then the warm seed that fed
  // it (they differ when the search improved on the seed). Dedup by
  // near-equality, cap at kPoolCap most-recent.
  auto remember = [this](const std::vector<double>& w) {
    if (w.empty()) return;
    for (const std::vector<double>& have : pool_) {
      if (have.size() != w.size()) continue;
      double dist = 0;
      for (size_t i = 0; i < w.size(); ++i) {
        dist = std::max(dist, std::abs(have[i] - w[i]));
      }
      if (dist < 1e-12) return;
    }
    pool_.insert(pool_.begin(), w);
    if (pool_.size() > kPoolCap) pool_.resize(kPoolCap);
  };
  remember(result.function.weights);
  remember(seed.warm_weights);

  have_proven_ = result.proven_optimal;
  proven_optimum_ = result.claimed_error;
  proven_true_semantics_ = strategy == SolveStrategy::kSpatial;
  bound_valid_ = true;
  return result;
}

}  // namespace rankhow
