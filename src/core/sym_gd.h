#ifndef RANKHOW_CORE_SYM_GD_H_
#define RANKHOW_CORE_SYM_GD_H_

/// \file sym_gd.h
/// Symbolic gradient descent (Section IV): "gradient descent on steroids".
/// From a seed weight vector, repeatedly find the TRUE optimum inside a cell
/// of size c around the current iterate (a small MILP — most indicators are
/// fixed by interval analysis inside a small cell), recenter, and repeat
/// until the error stops improving (Algorithm 1). The adaptive variant
/// doubles the cell size whenever the search stalls in a local optimum,
/// until the time budget runs out (Algorithm 2).
///
/// SYM-GD is a local search, so the seed decides which basin it descends
/// into (Section IV's seed-strategy discussion). `RunPortfolio` buys
/// solution quality with idle cores: it races one descent per seed of a
/// diverse portfolio (regression fits, the grid lower-bound search, random
/// draws from disjoint Rng::SplitStream streams) across a thread pool
/// under one shared wall-clock budget, and returns the best verified
/// function plus every seed's trajectory.

#include <atomic>
#include <string>
#include <vector>

#include "core/rankhow.h"
#include "util/status.h"

namespace rankhow {

struct SymGdOptions {
  /// Cell size c (0 < c < 2); Algorithm 1 keeps it constant, Algorithm 2
  /// starts here.
  double cell_size = 0.1;
  /// Total wall-clock budget t_total; 0 = unlimited (Algorithm 1 only).
  double time_budget_seconds = 0;
  /// Run Algorithm 2 (cell doubling on convergence) instead of Algorithm 1.
  bool adaptive = false;
  /// Safety cap on descent steps.
  int max_iterations = 1000;
  /// Portfolio size for RunPortfolio: how many diverse seeds race. 1 gives
  /// a single ordinal-regression-seeded descent; Run(seed) ignores this.
  int num_seeds = 4;
  /// Base of the deterministic Rng::SplitStream family that supplies the
  /// random portfolio seeds — portfolio results are a pure function of
  /// (instance, options), independent of thread schedule.
  uint64_t portfolio_seed = 17;
  /// Optional cooperative kill switch: when non-null and set, the descent
  /// stops at the next iteration boundary as if the budget expired (used
  /// by the portfolio to wind down losers after a perfect seed wins).
  const std::atomic<bool>* external_stop = nullptr;
  /// Inner exact-solver configuration (epsilons, verification, limits).
  /// `solver.num_threads` is also the portfolio's race width; each racing
  /// descent then runs its inner solves serially (the portfolio already
  /// saturates the pool — nested parallelism would oversubscribe).
  RankHowOptions solver;
};

/// One portfolio member's outcome (also useful for convergence plots:
/// which basin each seed descended into, and how fast).
struct SeedRun {
  /// Seed strategy name: "ordinal", "linear", "grid", "random-<i>".
  std::string seed_name;
  std::vector<double> seed_weights;
  /// Verified error the descent reached; -1 when the run failed or the
  /// budget expired before its first cell solve.
  long error = -1;
  int iterations = 0;
  std::vector<long> error_trajectory;
  double seconds = 0;
};

struct SymGdResult {
  ScoringFunction function;
  /// Verified position error of the returned function.
  long error = 0;
  /// Descent steps taken (cell solves; portfolio: the winning seed's).
  int iterations = 0;
  /// error after each solve, for convergence plots (portfolio: winner's).
  std::vector<long> error_trajectory;
  /// Final cell size (grows under Algorithm 2).
  double final_cell_size = 0;
  double seconds = 0;
  /// Aggregate MILP statistics across all cell solves (portfolio: summed
  /// over every racing descent, not just the winner).
  long total_nodes = 0;
  long total_free_indicators = 0;
  /// Aggregate LP effort across all cell solves: total simplex pivots and
  /// the warm/cold solve split (see BnbStats) — the figures bench_fig3jkl
  /// uses to quantify the warm-start win.
  long total_lp_pivots = 0;
  long total_lp_warm_solves = 0;
  long total_lp_cold_solves = 0;
  /// Per-seed trajectories (RunPortfolio only; index 0 is the winner's
  /// seed order position, not its rank).
  std::vector<SeedRun> portfolio;
  /// Which portfolio member won (index into `portfolio`; -1 for Run).
  int winning_seed = -1;
};

/// The SYM-GD optimizer over a fixed problem instance.
class SymGd {
 public:
  SymGd(const Dataset& data, const Ranking& given,
        SymGdOptions options = SymGdOptions());

  /// Access the problem to add constraints (shared with the inner solver).
  OptProblem& problem() { return solver_.problem(); }

  /// Runs the descent from a seed weight vector (must lie on the simplex).
  Result<SymGdResult> Run(const std::vector<double>& seed) const;

  /// Multi-seed portfolio race (see the file comment): builds
  /// `options.num_seeds` diverse seeds, runs one descent per seed across
  /// `options.solver.num_threads` pool workers under the shared
  /// time_budget_seconds, and returns the best verified function with all
  /// trajectories attached. Fails only if *every* seed fails.
  Result<SymGdResult> RunPortfolio() const;

 private:
  SymGdOptions options_;
  RankHow solver_;
};

}  // namespace rankhow

#endif  // RANKHOW_CORE_SYM_GD_H_
