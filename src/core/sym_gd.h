#ifndef RANKHOW_CORE_SYM_GD_H_
#define RANKHOW_CORE_SYM_GD_H_

/// \file sym_gd.h
/// Symbolic gradient descent (Section IV): "gradient descent on steroids".
/// From a seed weight vector, repeatedly find the TRUE optimum inside a cell
/// of size c around the current iterate (a small MILP — most indicators are
/// fixed by interval analysis inside a small cell), recenter, and repeat
/// until the error stops improving (Algorithm 1). The adaptive variant
/// doubles the cell size whenever the search stalls in a local optimum,
/// until the time budget runs out (Algorithm 2).

#include <vector>

#include "core/rankhow.h"
#include "util/status.h"

namespace rankhow {

struct SymGdOptions {
  /// Cell size c (0 < c < 2); Algorithm 1 keeps it constant, Algorithm 2
  /// starts here.
  double cell_size = 0.1;
  /// Total wall-clock budget t_total; 0 = unlimited (Algorithm 1 only).
  double time_budget_seconds = 0;
  /// Run Algorithm 2 (cell doubling on convergence) instead of Algorithm 1.
  bool adaptive = false;
  /// Safety cap on descent steps.
  int max_iterations = 1000;
  /// Inner exact-solver configuration (epsilons, verification, limits).
  RankHowOptions solver;
};

struct SymGdResult {
  ScoringFunction function;
  /// Verified position error of the returned function.
  long error = 0;
  /// Descent steps taken (cell solves).
  int iterations = 0;
  /// error after each solve, for convergence plots.
  std::vector<long> error_trajectory;
  /// Final cell size (grows under Algorithm 2).
  double final_cell_size = 0;
  double seconds = 0;
  /// Aggregate MILP statistics across all cell solves.
  long total_nodes = 0;
  long total_free_indicators = 0;
  /// Aggregate LP effort across all cell solves: total simplex pivots and
  /// the warm/cold solve split (see BnbStats) — the figures bench_fig3jkl
  /// uses to quantify the warm-start win.
  long total_lp_pivots = 0;
  long total_lp_warm_solves = 0;
  long total_lp_cold_solves = 0;
};

/// The SYM-GD optimizer over a fixed problem instance.
class SymGd {
 public:
  SymGd(const Dataset& data, const Ranking& given,
        SymGdOptions options = SymGdOptions());

  /// Access the problem to add constraints (shared with the inner solver).
  OptProblem& problem() { return solver_.problem(); }

  /// Runs the descent from a seed weight vector (must lie on the simplex).
  Result<SymGdResult> Run(const std::vector<double>& seed) const;

 private:
  SymGdOptions options_;
  RankHow solver_;
};

}  // namespace rankhow

#endif  // RANKHOW_CORE_SYM_GD_H_
