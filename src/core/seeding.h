#ifndef RANKHOW_CORE_SEEDING_H_
#define RANKHOW_CORE_SEEDING_H_

/// \file seeding.h
/// Seed-point strategies for SYM-GD (Sec. IV-B). The paper's default is an
/// ordinal-regression fit ("optimizes the wrong loss, but that loss is
/// correlated with rank-position error"); alternatives are linear
/// regression, the grid-lower-bound search over weight-space cells, and
/// plain random draws.

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "math/simplex_box.h"
#include "ranking/ranking.h"
#include "util/random.h"
#include "util/status.h"

namespace rankhow {

/// Clamps negatives to zero and rescales to Σw = 1 (uniform fallback when
/// everything is non-positive). Positive rescaling never changes the
/// induced ranking, so this is a safe way to move regression coefficients
/// onto the simplex.
std::vector<double> ProjectWeightsToSimplex(std::vector<double> weights);

/// Ordinal-regression seed (the SYM-GD default; margin = eps1).
Result<std::vector<double>> OrdinalRegressionSeed(const Dataset& data,
                                                  const Ranking& given,
                                                  double eps1);

/// Linear-regression seed (OLS projected onto the simplex).
Result<std::vector<double>> LinearRegressionSeed(const Dataset& data,
                                                 const Ranking& given);

struct GridSeedOptions {
  /// Stop refining a cell once its width falls to this size.
  double target_cell_size = 0.1;
  /// Budget on cell-bound evaluations.
  int max_cells = 2000;
  double eps1 = 1e-9;
  double eps2 = 0.0;
};

/// The paper's second strategy: search weight-space cells by error lower
/// bound (Sec. IV-B). Implemented as best-first box subdivision — cells are
/// refined in ascending lower-bound order instead of enumerating all
/// (1/c)^m at once, which visits the same cells the exhaustive grid would
/// but reaches the winning one much sooner.
Result<std::vector<double>> GridLowerBoundSeed(
    const Dataset& data, const Ranking& given,
    const GridSeedOptions& options = GridSeedOptions());

/// Uniform random simplex point.
std::vector<double> RandomSeed(int num_attributes, uint64_t seed);

/// Uniform random simplex point drawn from a caller-owned stream — the
/// parallel-friendly variant: hand each worker `base.SplitStream(i)` and
/// every draw is deterministic and disjoint across workers.
std::vector<double> RandomSeed(int num_attributes, Rng* rng);

/// A named member of a SYM-GD portfolio (Sec. IV seed strategies).
struct PortfolioSeed {
  std::string name;
  std::vector<double> weights;
};

/// Builds `count` diverse seeds for the SYM-GD portfolio, in fixed order:
/// ordinal regression (the paper's default), linear regression, the grid
/// lower-bound search, then uniform random draws — each random draw from
/// its own disjoint `Rng(stream_seed).SplitStream(i)` stream, so the set
/// is a pure function of (data, given, count, stream_seed) regardless of
/// which worker later runs which seed. Deterministic generators that fail
/// (singular fits, budget exhaustion) or duplicate an earlier seed are
/// replaced by random draws, so exactly `count` seeds come back.
std::vector<PortfolioSeed> BuildPortfolioSeeds(const Dataset& data,
                                               const Ranking& given,
                                               double eps1, int count,
                                               uint64_t stream_seed);

}  // namespace rankhow

#endif  // RANKHOW_CORE_SEEDING_H_
