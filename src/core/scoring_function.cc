#include "core/scoring_function.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace rankhow {

ScoringFunction ScoringFunction::FromWeights(const Dataset& data,
                                             std::vector<double> weights) {
  RH_CHECK(static_cast<int>(weights.size()) == data.num_attributes());
  return ScoringFunction{std::move(weights), data.attribute_names()};
}

std::string ScoringFunction::ToString(int precision, double min_weight) const {
  std::string out;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (std::abs(weights[i]) < min_weight) continue;
    if (!out.empty()) out += " + ";
    out += StrFormat("%.*f*%s", precision, weights[i],
                     i < attribute_names.size()
                         ? attribute_names[i].c_str()
                         : StrFormat("A%zu", i + 1).c_str());
  }
  if (out.empty()) out = "0";
  return out;
}

std::vector<double> ScoringFunction::Score(const Dataset& data) const {
  return data.Scores(weights);
}

}  // namespace rankhow
