#ifndef RANKHOW_CORE_SCORING_FUNCTION_H_
#define RANKHOW_CORE_SCORING_FUNCTION_H_

/// \file scoring_function.h
/// The synthesized artifact: a linear scoring function f_W over named
/// attributes, e.g. "0.02*REB + 0.14*AST + 0.84*BLK" from the paper's
/// Example 1.

#include <string>
#include <vector>

#include "data/dataset.h"

namespace rankhow {

/// A linear scoring function with named attributes.
struct ScoringFunction {
  std::vector<double> weights;
  std::vector<std::string> attribute_names;

  static ScoringFunction FromWeights(const Dataset& data,
                                     std::vector<double> weights);

  /// Human-readable rendering; weights below `min_weight` are omitted.
  std::string ToString(int precision = 2, double min_weight = 0.005) const;

  /// Scores every tuple of a dataset with matching attribute count.
  std::vector<double> Score(const Dataset& data) const;
};

}  // namespace rankhow

#endif  // RANKHOW_CORE_SCORING_FUNCTION_H_
