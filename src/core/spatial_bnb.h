#ifndef RANKHOW_CORE_SPATIAL_BNB_H_
#define RANKHOW_CORE_SPATIAL_BNB_H_

/// \file spatial_bnb.h
/// An exact OPT strategy that branches on *weight space* instead of on
/// indicator variables: best-first branch-and-bound over axis-aligned boxes
/// of the simplex, bounding each box with the interval indicator fixing of
/// Section IV-A (the same structure SYM-GD exploits) and the per-tuple
/// "beats bracket" error bounds of Section IV-B.
///
/// Relationship to the paper's algorithms:
///  * The MILP branch-and-bound (milp/branch_and_bound.h) is the paper's
///    R"ANKHOW" solver — it branches on δ_sr like Gurobi does.
///  * TREE (baselines/tree.h) enumerates the hyperplane-arrangement cells
///    with one LP per cell and no cross-branch pruning.
///  * SpatialBnb sits between them: like TREE it works in weight space, but
///    like the MILP solver it keeps a global incumbent and prunes whole
///    subtrees by bound — the "holistic reasoning" Section III-B credits for
///    the MILP solver's advantage. For few attributes (the dimension of the
///    box subdivision) it is dramatically faster than branching on the
///    O(kn) indicators; for many attributes the subdivision curse flips the
///    comparison. RankHowOptions::strategy == kAuto picks per instance, and
///    bench_ablations quantifies the crossover.
///
/// Semantics note: SpatialBnb optimizes the *true* ε-tie objective of
/// Definitions 2–4 (a pair beats iff its score difference exceeds ε). The
/// MILP path optimizes the (ε₂, ε₁)-gap relaxation of Section V-A, which
/// excludes weight vectors placing any pair inside the gap; its optimum can
/// therefore be marginally worse. Both are verified by the same exact
/// arithmetic.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/opt_problem.h"
#include "lp/incremental.h"
#include "math/simplex_box.h"
#include "util/status.h"

namespace rankhow {

/// Warm-started feasibility oracle for box ∩ simplex ∩ P queries. The LP's
/// *structure* (weight variables, the Σw = 1 row, the predicate-P rows) is
/// box-independent — only the variable bounds change between queries — so
/// one compiled IncrementalLp serves every box of a subdivision, and every
/// cell of a SYM-GD sweep, resolving each adjacent query from the previous
/// basis in a few dual pivots. See DESIGN.md "Incremental LP architecture".
class BoxFeasibilityOracle {
 public:
  BoxFeasibilityOracle(int num_attributes,
                       const WeightConstraintSet& constraints);

  /// A point of box ∩ simplex ∩ P, kInfeasible when that region is empty,
  /// or another LP error.
  Result<std::vector<double>> FeasiblePoint(const WeightBox& box);

  /// The constraint-set revision the oracle was compiled at (cache validity
  /// check: any Add/Remove on the set bumps the revision, so holders rebuild
  /// on mismatch — see WeightConstraintSet::revision).
  uint64_t constraints_revision() const { return constraints_revision_; }
  const IncrementalLpStats& stats() const { return lp_.stats(); }

 private:
  int num_attributes_;
  uint64_t constraints_revision_;
  IncrementalLp lp_;
};

struct SpatialBnbOptions {
  /// Wall-clock budget; 0 = unlimited.
  double time_limit_seconds = 0;
  /// Box-expansion cap; 0 = unlimited.
  int64_t max_boxes = 0;
  /// Boxes narrower than this in every dimension are resolved by point
  /// evaluation instead of further splitting. Points inside such a box sit
  /// within floating-point noise of an indicator hyperplane — exactly the
  /// region the paper's ε-gap machinery excludes from solutions anyway.
  double min_box_width = 1e-9;
  /// Per-box P-feasibility LPs through a warm-started BoxFeasibilityOracle
  /// (default) instead of building + cold-solving an LpModel per box.
  bool use_warm_start = true;
  /// Parallel subdivision: workers pull boxes from a sharded best-first
  /// frontier, each owning a private BoxFeasibilityOracle (the oracle's
  /// tableau is not thread-safe, and adjacent pops on one worker still
  /// warm-start each other), and publish incumbents through a shared
  /// SearchCoordinator. 1 = serial (default), 0 = all hardware threads.
  /// With > 1 worker an injected SetOracle oracle is ignored — cross-cell
  /// basis sharing is a serial-sweep optimization.
  int num_threads = 1;
  /// Warm-start incumbent (e.g. from presolve); empty = none.
  std::vector<double> initial_weights;
  /// Externally proven lower bound on the true ε-tie optimum over the root
  /// box (errors are non-negative, so 0 is the no-op default). Seeds the
  /// root's bound the same way BnbOptions::external_lower_bound does for the
  /// indicator MILP: a session re-solve after a tightening edit closes at
  /// the root when a pooled incumbent already meets the old proven optimum.
  /// Soundness is the caller's obligation.
  long external_lower_bound = 0;
  /// Cooperative external cancellation (see SearchCoordinator): workers
  /// poll this alongside the deadline and wind down within one box,
  /// reporting the result as budget-limited. nullptr = never cancelled.
  /// The flag must outlive the solve.
  const std::atomic<bool>* cancel = nullptr;
};

struct SpatialBnbStats {
  int64_t boxes_explored = 0;
  int64_t boxes_pruned_bound = 0;
  int64_t boxes_pruned_infeasible = 0;
  int64_t incumbent_updates = 0;
  /// Boxes that hit min_box_width with bound < evaluation — the only source
  /// of proof loss (see proven_optimal).
  int64_t floor_misses = 0;
  /// P-feasibility LP queries and the simplex pivots they cost (zero when P
  /// has no general rows — pure box/simplex feasibility needs no LP at
  /// all). lp_warm_solves counts oracle resolves from a persisted basis;
  /// lp_cold_solves counts fresh factorizations (the oracle's first solve,
  /// its rebuilds, and every per-box cold SimplexSolver query).
  int64_t lp_solves = 0;
  int64_t lp_pivots = 0;
  int64_t lp_warm_solves = 0;
  int64_t lp_cold_solves = 0;
  double seconds = 0;
};

struct SpatialBnbResult {
  /// Best weights found; empty if no feasible point was ever evaluated.
  std::vector<double> weights;
  /// True ε-tie OPT error of `weights`; -1 if none found.
  long error = -1;
  /// Proven lower bound on the optimum over the searched region.
  long bound = 0;
  /// True iff the search completed with bound == error and no floor miss
  /// below the incumbent.
  bool proven_optimal = false;
  SpatialBnbStats stats;
};

/// Weight-space exact solver for an OPT instance. Supports the full problem:
/// predicate P (box bounds natively; general rows via per-box LP feasibility
/// pruning), pairwise order constraints, and position-range constraints.
class SpatialBnb {
 public:
  SpatialBnb(const OptProblem& problem, SpatialBnbOptions options)
      : problem_(problem), options_(std::move(options)) {}

  /// Injects a shared feasibility oracle (non-owning; must outlive Solve).
  /// RankHow passes one oracle across a whole SYM-GD cell sweep so adjacent
  /// cells warm-start each other; without it Solve builds its own per call.
  void SetOracle(BoxFeasibilityOracle* oracle) { external_oracle_ = oracle; }

  /// Solves over `box` ∩ simplex ∩ P. kInfeasible when that region is empty.
  Result<SpatialBnbResult> Solve(const WeightBox& box) const;

 private:
  const OptProblem& problem_;
  SpatialBnbOptions options_;
  BoxFeasibilityOracle* external_oracle_ = nullptr;
};

}  // namespace rankhow

#endif  // RANKHOW_CORE_SPATIAL_BNB_H_
