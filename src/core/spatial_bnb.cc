#include "core/spatial_bnb.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "core/indicator_fixing.h"
#include "core/presolve.h"
#include "core/search_coordinator.h"
#include "lp/simplex.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace rankhow {

namespace {

/// A subdivision node: a box with the lower bound its parent proved for it
/// (tightened on expansion).
struct Node {
  WeightBox box;
  long lb;
  int depth;

  /// Exact for every reachable error value (longs far below 2^53).
  double frontier_bound() const { return static_cast<double>(lb); }
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    if (a.lb != b.lb) return a.lb > b.lb;  // lowest bound first
    return a.depth < b.depth;              // then dive
  }
};

double MaxWidth(const WeightBox& box) {
  double w = 0;
  for (int i = 0; i < box.dim(); ++i) w = std::max(w, box.hi[i] - box.lo[i]);
  return w;
}

/// What bounding a box concluded.
struct BoxBound {
  long lb = 0;
  bool feasible = true;   // false: prune (no valid weight vector inside)
  bool all_fixed = true;  // every indicator constant over the box
};

LpModel BuildFeasibilityModel(int m, const WeightConstraintSet& constraints) {
  LpModel lp;
  std::vector<int> weight_vars(m);
  LinearExpr sum;
  for (int a = 0; a < m; ++a) {
    weight_vars[a] = lp.AddVariable(0.0, 1.0, "w");
    sum += LinearExpr::Term(weight_vars[a], 1.0);
  }
  lp.AddConstraint(std::move(sum), RelOp::kEq, 1.0, "simplex");
  constraints.AppendTo(&lp, weight_vars);
  return lp;
}

/// Search-global state for one (possibly parallel) subdivision.
struct SearchShared {
  const OptProblem& problem;
  const SpatialBnbOptions& options;
  const Dataset& data;
  const Ranking& given;
  int m;
  double tie_eps;
  double fix_one_at;
  double fix_zero_at;
  const std::vector<int>& tuples;
  bool has_general_rows;
  int num_workers;
  SearchCoordinator coordinator;
  ShardedFrontier<Node, NodeOrder> frontier;
  /// Global box counter (max_boxes enforcement + final stats).
  std::atomic<int64_t> boxes_explored{0};
  /// Serial-sweep oracle injected by RankHow (num_workers == 1 only).
  BoxFeasibilityOracle* external_oracle = nullptr;
};

/// One worker's mutable state: its private warm oracle (or the injected
/// serial-sweep one), the legacy cold solver, scratch, and private partial
/// stats merged after the join.
struct WorkerState {
  BoxFeasibilityOracle* oracle = nullptr;  // may alias local_oracle
  std::unique_ptr<BoxFeasibilityOracle> local_oracle;
  SimplexSolver cold_solver;
  std::vector<double> diff;  // scratch for order-constraint ranges
  int64_t pruned_bound = 0;
  int64_t pruned_infeasible = 0;
  int64_t cold_lp_solves = 0;
  int64_t cold_lp_pivots = 0;
  int64_t floor_misses = 0;
  long floor_lb_min = std::numeric_limits<long>::max();
  // Oracle counter baselines (nonzero only for the injected shared oracle,
  // which carries counts from earlier cells of a SYM-GD sweep).
  int64_t oracle_solves0 = 0;
  int64_t oracle_pivots0 = 0;
  int64_t oracle_warm0 = 0;
  int64_t oracle_cold0 = 0;
};

/// Bounds a box. Also prunes via order constraints and position brackets.
Result<BoxBound> BoundBox(const SearchShared& sh, WorkerState& ws,
                          const WeightBox& box) {
  BoxBound out;
  for (const PairwiseOrderConstraint& oc : sh.problem.order_constraints) {
    for (int a = 0; a < sh.m; ++a) {
      ws.diff[a] = sh.data.value(oc.above, a) - sh.data.value(oc.below, a);
    }
    RH_ASSIGN_OR_RETURN(DotRange range, DotRangeOnSimplexBox(ws.diff, box));
    if (range.max <= sh.tie_eps) {  // can never rank `above` higher here
      out.feasible = false;
      return out;
    }
    // Satisfied at some points but not all: the box must keep splitting
    // even when every indicator is fixed, or a single rejected evaluation
    // would wrongly discard the satisfying part.
    if (range.min < sh.fix_one_at) out.all_fixed = false;
  }
  RH_ASSIGN_OR_RETURN(FixingSummary fixing,
                      ComputeIndicatorFixing(sh.data, sh.tuples, box,
                                             sh.fix_one_at, sh.fix_zero_at));
  for (const TupleFixing& group : fixing.groups) {
    const long beats_min = group.fixed_one;
    const long beats_max =
        group.fixed_one + static_cast<long>(group.free.size());
    if (!group.free.empty()) out.all_fixed = false;
    for (const PositionConstraint& pc : sh.problem.position_constraints) {
      if (pc.tuple != group.tuple) continue;
      if (beats_min + 1 > pc.max_position ||
          beats_max + 1 < pc.min_position) {
        out.feasible = false;
        return out;
      }
    }
    if (!sh.given.IsRanked(group.tuple)) continue;
    const long target = sh.given.position(group.tuple) - 1;
    const long penalty =
        sh.problem.objective.PenaltyAt(sh.given.position(group.tuple));
    if (target < beats_min) {
      out.lb += penalty * (beats_min - target);
    } else if (target > beats_max) {
      out.lb += penalty * (target - beats_max);
    }
  }
  return out;
}

/// Feasibility of box ∩ simplex ∩ P(general rows); returns a point inside
/// when one is needed (for incumbent evaluation).
Result<std::vector<double>> FeasiblePoint(const SearchShared& sh,
                                          WorkerState& ws,
                                          const WeightBox& box) {
  if (!sh.has_general_rows) return AnyPointOnSimplexBox(box);
  if (ws.oracle != nullptr) {
    auto point = ws.oracle->FeasiblePoint(box);
    if (point.ok() || point.status().code() == StatusCode::kInfeasible) {
      return point;
    }
    // Numerical trouble in the worker's tableau: answer this query cold
    // instead of aborting the whole subdivision.
  }
  // Per-box cold query: the same model the oracle compiles, rebuilt and
  // solved from scratch (the legacy path, and the per-query fallback when
  // the warm oracle hits numerical trouble).
  LpModel lp = BuildFeasibilityModel(sh.m, sh.problem.constraints);
  for (int a = 0; a < sh.m; ++a) {
    lp.mutable_variable(a).lower = box.lo[a];
    lp.mutable_variable(a).upper = box.hi[a];
  }
  auto sol = ws.cold_solver.Solve(lp);
  ++ws.cold_lp_solves;
  if (!sol.ok()) return sol.status();
  ws.cold_lp_pivots += sol->iterations;
  return std::move(sol->values);
}

/// Evaluates `w` as a candidate incumbent through the coordinator.
void OfferIncumbent(SearchShared& sh, const std::vector<double>& w) {
  auto err = EvaluateTrueError(sh.problem, w);
  if (err.has_value()) {
    sh.coordinator.OfferIncumbent(static_cast<double>(*err), w);
  }
}

/// Explores one box; pushes surviving children onto the frontier. A hard
/// error (LP layer, bound computation) is reported to the coordinator and
/// stops the search.
void ProcessBox(SearchShared& sh, WorkerState& ws, Node node) {
  auto bb = BoundBox(sh, ws, node.box);
  if (!bb.ok()) {
    sh.coordinator.ReportError(bb.status());
    sh.frontier.RequestStop();
    return;
  }
  if (!bb->feasible) {
    ++ws.pruned_infeasible;
    return;
  }
  long lb = std::max(node.lb, bb->lb);
  if (static_cast<double>(lb) >= sh.coordinator.best_objective()) {
    ++ws.pruned_bound;
    return;
  }
  // General P rows can empty a box that the interval bounds cannot see.
  auto point = FeasiblePoint(sh, ws, node.box);
  if (!point.ok()) {
    if (point.status().code() == StatusCode::kInfeasible) {
      ++ws.pruned_infeasible;
      return;
    }
    sh.coordinator.ReportError(point.status());
    sh.frontier.RequestStop();
    return;
  }
  OfferIncumbent(sh, *point);
  if (static_cast<double>(lb) >= sh.coordinator.best_objective()) {
    ++ws.pruned_bound;
    return;
  }

  if (bb->all_fixed) {
    // Every indicator is constant over the box, so the error is constant
    // and the evaluated point realized it (incumbent updated above) —
    // unless a position constraint rejected it, which then rejects the
    // whole box identically (positions are functions of the fixed
    // indicators; order constraints hold everywhere here by the
    // all_fixed test; the LP point satisfies P).
    return;
  }
  if (MaxWidth(node.box) <= sh.options.min_box_width) {
    // Resolution floor: the box straddles a hyperplane within numerical
    // noise. The evaluation above settled it unless its value is above
    // the bound — then the proof has a hole we must report. (A stale
    // incumbent read can only over-report a miss — conservative.)
    if (sh.coordinator.best_objective() > static_cast<double>(lb)) {
      ++ws.floor_misses;
      ws.floor_lb_min = std::min(ws.floor_lb_min, lb);
    }
    return;
  }

  // Split the widest dimension at its midpoint (closed halves: the cover
  // keeps hyperplane-boundary points in both children).
  int dim = 0;
  double widest = -1;
  for (int i = 0; i < sh.m; ++i) {
    double w = node.box.hi[i] - node.box.lo[i];
    if (w > widest) {
      widest = w;
      dim = i;
    }
  }
  double mid = 0.5 * (node.box.lo[dim] + node.box.hi[dim]);
  for (int side = 0; side < 2; ++side) {
    Node child{node.box, lb, node.depth + 1};
    (side == 0 ? child.box.hi : child.box.lo)[dim] = mid;
    if (!child.box.IntersectsSimplex()) continue;
    sh.frontier.Push(std::move(child));
  }
}

/// One worker's subdivision loop (see milp/branch_and_bound.cc for the
/// protocol; this is the same pop → prune-or-process → repeat shape over
/// weight-space boxes).
void RunWorker(SearchShared& sh, WorkerState& ws) {
  ws.diff.resize(sh.m);
  // Warm path: adjacent boxes differ only in variable bounds, so one
  // compiled oracle per worker resolves each query from the previous
  // basis. Serial solves reuse the oracle RankHow injects to span a whole
  // SYM-GD cell sweep; parallel workers compile their own.
  if (sh.has_general_rows && sh.options.use_warm_start) {
    if (sh.external_oracle != nullptr) {
      ws.oracle = sh.external_oracle;
      ws.oracle_solves0 = ws.oracle->stats().solves;
      ws.oracle_pivots0 = ws.oracle->stats().total_pivots();
      ws.oracle_warm0 = ws.oracle->stats().warm_solves;
      ws.oracle_cold0 = ws.oracle->stats().cold_solves;
    } else {
      ws.local_oracle = std::make_unique<BoxFeasibilityOracle>(
          sh.m, sh.problem.constraints);
      ws.oracle = ws.local_oracle.get();
    }
  }
  while (!sh.coordinator.StopRequested()) {
    if (sh.coordinator.deadline().Expired() ||
        sh.coordinator.ExternalCancelRequested()) {
      sh.coordinator.RequestLimitStop();
      sh.frontier.RequestStop();
      break;
    }
    std::optional<Node> node = sh.frontier.Pop();
    if (!node.has_value()) break;  // exhausted or stopped
    if (sh.options.max_boxes > 0 &&
        sh.boxes_explored.load(std::memory_order_relaxed) >=
            sh.options.max_boxes) {
      sh.frontier.Push(std::move(*node));
      sh.frontier.Done();
      sh.coordinator.RequestLimitStop();
      sh.frontier.RequestStop();
      break;
    }
    if (static_cast<double>(node->lb) >= sh.coordinator.best_objective()) {
      // Best-first: this subtree cannot improve the incumbent, so discard
      // it. A single worker just popped the global frontier minimum, so
      // everything left is equally prunable: the search is over (see
      // milp/branch_and_bound.cc for why this exit is single-worker-only).
      ++ws.pruned_bound;
      sh.frontier.Done();
      if (sh.num_workers == 1) {
        sh.frontier.RequestStop();  // completion — not a limit stop
        break;
      }
      continue;
    }
    sh.boxes_explored.fetch_add(1, std::memory_order_relaxed);
    ProcessBox(sh, ws, std::move(*node));
    sh.frontier.Done();
  }
}

}  // namespace

BoxFeasibilityOracle::BoxFeasibilityOracle(
    int num_attributes, const WeightConstraintSet& constraints)
    : num_attributes_(num_attributes),
      constraints_revision_(constraints.revision()),
      lp_(BuildFeasibilityModel(num_attributes, constraints)) {}

Result<std::vector<double>> BoxFeasibilityOracle::FeasiblePoint(
    const WeightBox& box) {
  for (int a = 0; a < num_attributes_; ++a) {
    lp_.SetVariableBounds(a, box.lo[a], box.hi[a]);
  }
  RH_ASSIGN_OR_RETURN(LpSolution sol, lp_.Solve());
  return std::move(sol.values);
}

Result<SpatialBnbResult> SpatialBnb::Solve(const WeightBox& root_box) const {
  RH_RETURN_NOT_OK(problem_.Validate());
  if (problem_.objective.kind == ObjectiveKind::kInversions) {
    // The beats-bracket bound does not transfer to pair-inversion counting;
    // RankHow routes inversion objectives to the indicator MILP.
    return Status::Invalid(
        "SpatialBnb supports position-error objectives only; use "
        "SolveStrategy::kIndicatorMilp for inversion objectives");
  }
  const Dataset& data = *problem_.data;
  const Ranking& given = *problem_.given;
  const int m = data.num_attributes();
  const double tie_eps = problem_.eps.tie_eps;
  // True-semantics fixing thresholds: a pair beats iff diff > ε, so it is
  // fixed to 1 when min diff exceeds ε (η guards the strict inequality) and
  // fixed to 0 when max diff <= ε.
  const double eta = std::max(1e-15, 1e-9 * tie_eps);
  const double fix_one_at = tie_eps + eta;
  const double fix_zero_at = tie_eps;

  WeightBox root = problem_.constraints.TightenBox(root_box);
  if (!root.IntersectsSimplex()) {
    return Status::Infeasible("spatial root box ∩ simplex ∩ P bounds empty");
  }

  // Tuples needing beat brackets: ranked ones (objective) plus
  // position-constrained extras (pruning only).
  std::vector<int> tuples = given.ranked_tuples();
  for (const PositionConstraint& pc : problem_.position_constraints) {
    if (!given.IsRanked(pc.tuple)) tuples.push_back(pc.tuple);
  }

  const bool has_general_rows = [&] {
    for (const WeightConstraint& c : problem_.constraints.constraints()) {
      if (c.terms.size() > 1) return true;
    }
    return false;
  }();

  const int num_workers =
      ThreadPool::ResolveThreadCount(options_.num_threads);
  WallTimer timer;
  // improvement_tol 0: errors are integral longs, strict `<` is exact.
  SearchShared shared{problem_,
                      options_,
                      data,
                      given,
                      m,
                      tie_eps,
                      fix_one_at,
                      fix_zero_at,
                      tuples,
                      has_general_rows,
                      num_workers,
                      SearchCoordinator(options_.time_limit_seconds, 0.0,
                                        options_.cancel),
                      ShardedFrontier<Node, NodeOrder>(num_workers),
                      {},
                      num_workers == 1 ? external_oracle_ : nullptr};

  if (!options_.initial_weights.empty()) {
    // Same path as a worker's discovery so the update is counted — serial
    // parity with the old offer_incumbent(initial_weights).
    OfferIncumbent(shared, options_.initial_weights);
  }
  // Children inherit max(parent lb, box bound), so the externally proven
  // bound (if any) lifts the whole subdivision.
  shared.frontier.Push(Node{root, std::max(0L, options_.external_lower_bound), 0});

  std::vector<WorkerState> workers(num_workers);
  if (num_workers == 1) {
    RunWorker(shared, workers[0]);
  } else {
    ThreadPool pool(num_workers - 1);
    TaskGroup group(&pool);
    for (int i = 1; i < num_workers; ++i) {
      group.Spawn([&shared, &workers, i] { RunWorker(shared, workers[i]); });
    }
    RunWorker(shared, workers[0]);
    group.Wait();
  }

  if (shared.coordinator.has_error()) {
    return shared.coordinator.first_error();
  }

  SpatialBnbResult result;
  SpatialBnbStats& stats = result.stats;
  stats.boxes_explored = shared.boxes_explored.load();
  stats.incumbent_updates = shared.coordinator.incumbent_updates();
  long floor_lb_min = std::numeric_limits<long>::max();
  for (const WorkerState& ws : workers) {
    stats.boxes_pruned_bound += ws.pruned_bound;
    stats.boxes_pruned_infeasible += ws.pruned_infeasible;
    stats.floor_misses += ws.floor_misses;
    floor_lb_min = std::min(floor_lb_min, ws.floor_lb_min);
    if (ws.oracle != nullptr) {
      stats.lp_solves += ws.oracle->stats().solves - ws.oracle_solves0;
      stats.lp_pivots += ws.oracle->stats().total_pivots() - ws.oracle_pivots0;
      stats.lp_warm_solves += ws.oracle->stats().warm_solves - ws.oracle_warm0;
      stats.lp_cold_solves += ws.oracle->stats().cold_solves - ws.oracle_cold0;
    }
    stats.lp_solves += ws.cold_lp_solves;
    stats.lp_pivots += ws.cold_lp_pivots;
    stats.lp_cold_solves += ws.cold_lp_solves;
  }
  stats.seconds = timer.ElapsedSeconds();

  const bool limits_hit = shared.coordinator.limit_stop();
  const double best_objective = shared.coordinator.best_objective();
  if (!std::isfinite(best_objective)) {
    if (limits_hit) {
      return Status::ResourceExhausted(
          "spatial search limits reached before finding a feasible point");
    }
    return Status::Infeasible(
        "no weight vector satisfies the side constraints in the box");
  }
  const long incumbent = static_cast<long>(best_objective);
  result.weights = shared.coordinator.incumbent_values();
  result.error = incumbent;
  // Stopping workers re-push their unfinished boxes, so the frontier holds
  // every unexplored subtree; its min bound is the proof limit.
  long frontier_lb = std::numeric_limits<long>::max();
  if (limits_hit) {
    double fb = shared.frontier.MinBound();
    if (std::isfinite(fb)) frontier_lb = static_cast<long>(fb);
  }
  long proven = !limits_hit ? incumbent : frontier_lb;
  proven = std::min(proven, floor_lb_min);
  result.bound = std::min(proven, incumbent);
  result.proven_optimal = !limits_hit && result.bound >= incumbent;
  return result;
}

}  // namespace rankhow
