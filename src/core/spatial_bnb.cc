#include "core/spatial_bnb.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/indicator_fixing.h"
#include "core/presolve.h"
#include "lp/simplex.h"
#include "util/logging.h"
#include "util/timer.h"

namespace rankhow {

namespace {

/// A subdivision node: a box with the lower bound its parent proved for it
/// (tightened on expansion).
struct Node {
  WeightBox box;
  long lb;
  int depth;
};

struct NodeOrder {
  bool operator()(const Node& a, const Node& b) const {
    if (a.lb != b.lb) return a.lb > b.lb;  // lowest bound first
    return a.depth < b.depth;              // then dive
  }
};

double MaxWidth(const WeightBox& box) {
  double w = 0;
  for (int i = 0; i < box.dim(); ++i) w = std::max(w, box.hi[i] - box.lo[i]);
  return w;
}

/// What bounding a box concluded.
struct BoxBound {
  long lb = 0;
  bool feasible = true;   // false: prune (no valid weight vector inside)
  bool all_fixed = true;  // every indicator constant over the box
};

}  // namespace

namespace {

LpModel BuildFeasibilityModel(int m, const WeightConstraintSet& constraints) {
  LpModel lp;
  std::vector<int> weight_vars(m);
  LinearExpr sum;
  for (int a = 0; a < m; ++a) {
    weight_vars[a] = lp.AddVariable(0.0, 1.0, "w");
    sum += LinearExpr::Term(weight_vars[a], 1.0);
  }
  lp.AddConstraint(std::move(sum), RelOp::kEq, 1.0, "simplex");
  constraints.AppendTo(&lp, weight_vars);
  return lp;
}

}  // namespace

BoxFeasibilityOracle::BoxFeasibilityOracle(
    int num_attributes, const WeightConstraintSet& constraints)
    : num_attributes_(num_attributes),
      num_constraints_(constraints.size()),
      lp_(BuildFeasibilityModel(num_attributes, constraints)) {}

Result<std::vector<double>> BoxFeasibilityOracle::FeasiblePoint(
    const WeightBox& box) {
  for (int a = 0; a < num_attributes_; ++a) {
    lp_.SetVariableBounds(a, box.lo[a], box.hi[a]);
  }
  RH_ASSIGN_OR_RETURN(LpSolution sol, lp_.Solve());
  return std::move(sol.values);
}

Result<SpatialBnbResult> SpatialBnb::Solve(const WeightBox& root_box) const {
  RH_RETURN_NOT_OK(problem_.Validate());
  if (problem_.objective.kind == ObjectiveKind::kInversions) {
    // The beats-bracket bound does not transfer to pair-inversion counting;
    // RankHow routes inversion objectives to the indicator MILP.
    return Status::Invalid(
        "SpatialBnb supports position-error objectives only; use "
        "SolveStrategy::kIndicatorMilp for inversion objectives");
  }
  const Dataset& data = *problem_.data;
  const Ranking& given = *problem_.given;
  const int m = data.num_attributes();
  const double tie_eps = problem_.eps.tie_eps;
  // True-semantics fixing thresholds: a pair beats iff diff > ε, so it is
  // fixed to 1 when min diff exceeds ε (η guards the strict inequality) and
  // fixed to 0 when max diff <= ε.
  const double eta = std::max(1e-15, 1e-9 * tie_eps);
  const double fix_one_at = tie_eps + eta;
  const double fix_zero_at = tie_eps;

  WeightBox root = problem_.constraints.TightenBox(root_box);
  if (!root.IntersectsSimplex()) {
    return Status::Infeasible("spatial root box ∩ simplex ∩ P bounds empty");
  }

  // Tuples needing beat brackets: ranked ones (objective) plus
  // position-constrained extras (pruning only).
  std::vector<int> tuples = given.ranked_tuples();
  for (const PositionConstraint& pc : problem_.position_constraints) {
    if (!given.IsRanked(pc.tuple)) tuples.push_back(pc.tuple);
  }

  const bool has_general_rows = [&] {
    for (const WeightConstraint& c : problem_.constraints.constraints()) {
      if (c.terms.size() > 1) return true;
    }
    return false;
  }();
  SimplexSolver lp_solver;  // cold path for general-row feasibility checks

  // Warm path: adjacent boxes differ only in variable bounds, so one
  // compiled oracle (injected by RankHow to span a whole cell sweep, or
  // local to this call) resolves each query from the previous basis.
  std::unique_ptr<BoxFeasibilityOracle> local_oracle;
  BoxFeasibilityOracle* oracle = external_oracle_;
  if (has_general_rows && options_.use_warm_start && oracle == nullptr) {
    local_oracle = std::make_unique<BoxFeasibilityOracle>(
        m, problem_.constraints);
    oracle = local_oracle.get();
  }
  const int64_t oracle_solves0 = oracle ? oracle->stats().solves : 0;
  const int64_t oracle_pivots0 = oracle ? oracle->stats().total_pivots() : 0;
  const int64_t oracle_warm0 = oracle ? oracle->stats().warm_solves : 0;
  const int64_t oracle_cold0 = oracle ? oracle->stats().cold_solves : 0;
  int64_t cold_lp_solves = 0;
  int64_t cold_lp_pivots = 0;

  // Per-box cold query: the same model the oracle compiles, rebuilt and
  // solved from scratch (the legacy path, and the per-query fallback when
  // the shared oracle hits numerical trouble).
  auto cold_feasible_point =
      [&](const WeightBox& box) -> Result<std::vector<double>> {
    LpModel lp = BuildFeasibilityModel(m, problem_.constraints);
    for (int a = 0; a < m; ++a) {
      lp.mutable_variable(a).lower = box.lo[a];
      lp.mutable_variable(a).upper = box.hi[a];
    }
    auto sol = lp_solver.Solve(lp);
    ++cold_lp_solves;
    if (!sol.ok()) return sol.status();
    cold_lp_pivots += sol->iterations;
    return std::move(sol->values);
  };

  // Feasibility of box ∩ simplex ∩ P(general rows); returns a point inside
  // when one is needed (for incumbent evaluation), or empty when the caller
  // only needs the verdict.
  auto feasible_point =
      [&](const WeightBox& box) -> Result<std::vector<double>> {
    if (!has_general_rows) return AnyPointOnSimplexBox(box);
    if (oracle != nullptr) {
      auto point = oracle->FeasiblePoint(box);
      if (point.ok() || point.status().code() == StatusCode::kInfeasible) {
        return point;
      }
      // Numerical trouble in the shared tableau: answer this query cold
      // instead of aborting the whole subdivision.
    }
    return cold_feasible_point(box);
  };

  // Bounds a box. Also prunes via order constraints and position brackets.
  std::vector<double> diff(m);
  auto bound_box = [&](const WeightBox& box) -> Result<BoxBound> {
    BoxBound out;
    for (const PairwiseOrderConstraint& oc : problem_.order_constraints) {
      for (int a = 0; a < m; ++a) {
        diff[a] = data.value(oc.above, a) - data.value(oc.below, a);
      }
      RH_ASSIGN_OR_RETURN(DotRange range, DotRangeOnSimplexBox(diff, box));
      if (range.max <= tie_eps) {  // can never rank `above` higher here
        out.feasible = false;
        return out;
      }
      // Satisfied at some points but not all: the box must keep splitting
      // even when every indicator is fixed, or a single rejected evaluation
      // would wrongly discard the satisfying part.
      if (range.min < fix_one_at) out.all_fixed = false;
    }
    RH_ASSIGN_OR_RETURN(
        FixingSummary fixing,
        ComputeIndicatorFixing(data, tuples, box, fix_one_at, fix_zero_at));
    for (const TupleFixing& group : fixing.groups) {
      const long beats_min = group.fixed_one;
      const long beats_max =
          group.fixed_one + static_cast<long>(group.free.size());
      if (!group.free.empty()) out.all_fixed = false;
      for (const PositionConstraint& pc : problem_.position_constraints) {
        if (pc.tuple != group.tuple) continue;
        if (beats_min + 1 > pc.max_position ||
            beats_max + 1 < pc.min_position) {
          out.feasible = false;
          return out;
        }
      }
      if (!given.IsRanked(group.tuple)) continue;
      const long target = given.position(group.tuple) - 1;
      const long penalty =
          problem_.objective.PenaltyAt(given.position(group.tuple));
      if (target < beats_min) {
        out.lb += penalty * (beats_min - target);
      } else if (target > beats_max) {
        out.lb += penalty * (target - beats_max);
      }
    }
    return out;
  };

  Deadline deadline(options_.time_limit_seconds);
  WallTimer timer;
  SpatialBnbResult result;
  SpatialBnbStats& stats = result.stats;

  long incumbent = std::numeric_limits<long>::max();
  std::vector<double> incumbent_weights;
  auto offer_incumbent = [&](const std::vector<double>& w) {
    auto err = EvaluateTrueError(problem_, w);
    if (err.has_value() && *err < incumbent) {
      incumbent = *err;
      incumbent_weights = w;
      ++stats.incumbent_updates;
    }
  };
  if (!options_.initial_weights.empty()) {
    offer_incumbent(options_.initial_weights);
  }

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open;
  open.push(Node{root, 0, 0});
  long floor_lb_min = std::numeric_limits<long>::max();
  bool limits_hit = false;
  long frontier_lb = std::numeric_limits<long>::max();  // once exhausted

  while (!open.empty()) {
    if (deadline.Expired() ||
        (options_.max_boxes > 0 && stats.boxes_explored >= options_.max_boxes)) {
      limits_hit = true;
      frontier_lb = open.top().lb;
      break;
    }
    Node node = open.top();
    open.pop();
    if (node.lb >= incumbent) {
      // Best-first: every remaining box is at least this bad.
      frontier_lb = node.lb;
      break;
    }
    ++stats.boxes_explored;

    RH_ASSIGN_OR_RETURN(BoxBound bb, bound_box(node.box));
    if (!bb.feasible) {
      ++stats.boxes_pruned_infeasible;
      continue;
    }
    long lb = std::max(node.lb, bb.lb);
    if (lb >= incumbent) {
      ++stats.boxes_pruned_bound;
      continue;
    }
    // General P rows can empty a box that the interval bounds cannot see.
    auto point = feasible_point(node.box);
    if (!point.ok()) {
      if (point.status().code() == StatusCode::kInfeasible) {
        ++stats.boxes_pruned_infeasible;
        continue;
      }
      return point.status();
    }
    offer_incumbent(*point);
    if (lb >= incumbent) {
      ++stats.boxes_pruned_bound;
      continue;
    }

    if (bb.all_fixed) {
      // Every indicator is constant over the box, so the error is constant
      // and the evaluated point realized it (incumbent updated above) —
      // unless a position constraint rejected it, which then rejects the
      // whole box identically (positions are functions of the fixed
      // indicators; order constraints hold everywhere here by the
      // all_fixed test; the LP point satisfies P).
      continue;
    }
    if (MaxWidth(node.box) <= options_.min_box_width) {
      // Resolution floor: the box straddles a hyperplane within numerical
      // noise. The evaluation above settled it unless its value is above
      // the bound — then the proof has a hole we must report.
      if (incumbent > lb) {
        ++stats.floor_misses;
        floor_lb_min = std::min(floor_lb_min, lb);
      }
      continue;
    }

    // Split the widest dimension at its midpoint (closed halves: the cover
    // keeps hyperplane-boundary points in both children).
    int dim = 0;
    double widest = -1;
    for (int i = 0; i < m; ++i) {
      double w = node.box.hi[i] - node.box.lo[i];
      if (w > widest) {
        widest = w;
        dim = i;
      }
    }
    double mid = 0.5 * (node.box.lo[dim] + node.box.hi[dim]);
    for (int side = 0; side < 2; ++side) {
      Node child{node.box, lb, node.depth + 1};
      (side == 0 ? child.box.hi : child.box.lo)[dim] = mid;
      if (!child.box.IntersectsSimplex()) continue;
      open.push(std::move(child));
    }
  }

  stats.seconds = timer.ElapsedSeconds();
  if (oracle != nullptr) {
    stats.lp_solves = oracle->stats().solves - oracle_solves0;
    stats.lp_pivots = oracle->stats().total_pivots() - oracle_pivots0;
    stats.lp_warm_solves = oracle->stats().warm_solves - oracle_warm0;
    stats.lp_cold_solves = oracle->stats().cold_solves - oracle_cold0;
  }
  stats.lp_solves += cold_lp_solves;
  stats.lp_pivots += cold_lp_pivots;
  stats.lp_cold_solves += cold_lp_solves;
  if (incumbent == std::numeric_limits<long>::max()) {
    if (limits_hit) {
      return Status::ResourceExhausted(
          "spatial search limits reached before finding a feasible point");
    }
    return Status::Infeasible(
        "no weight vector satisfies the side constraints in the box");
  }
  result.weights = std::move(incumbent_weights);
  result.error = incumbent;
  long proven = open.empty() && !limits_hit ? incumbent : frontier_lb;
  proven = std::min(proven, floor_lb_min);
  result.bound = std::min(proven, incumbent);
  result.proven_optimal = !limits_hit && result.bound >= incumbent;
  return result;
}

}  // namespace rankhow
