#ifndef RANKHOW_CORE_INDICATOR_FIXING_H_
#define RANKHOW_CORE_INDICATOR_FIXING_H_

/// \file indicator_fixing.h
/// Interval fixing of the indicator variables δ_sr over a weight box. This
/// single primitive implements two ideas of the paper:
///
///  * Section V-B's dominator/dominatee elimination is the special case of
///    fixing over the *whole simplex*: if s dominates r then w·d(s,r) >= ε₁
///    for every admissible w, so δ_sr ≡ 1 (and symmetrically ≡ 0).
///  * Section IV-A's SYM-GD cell reduction is fixing over a *small box*:
///    few indicator hyperplanes intersect a small cell, so almost all δ
///    become constants and the local MILP collapses toward an LP.
///
/// Ranges of w·d over box ∩ simplex are computed exactly with the greedy
/// support function in math/simplex_box.h.

#include <limits>
#include <vector>

#include "data/dataset.h"
#include "math/simplex_box.h"
#include "util/status.h"

namespace rankhow {

/// An undetermined pair: s may or may not outscore the group's tuple r
/// within the box. [diff_min, diff_max] is the exact range of w·d(s,r).
struct FreePair {
  int s = -1;
  double diff_min = 0;
  double diff_max = 0;
};

/// Fixing summary for one "group" tuple r (a ranked tuple or a
/// position-constrained one).
struct TupleFixing {
  int tuple = -1;
  /// Number of s with δ_sr fixed to 1 (s certainly outscores r in the box).
  int fixed_one = 0;
  /// Number of s with δ_sr fixed to 0.
  int fixed_zero = 0;
  /// The undetermined pairs.
  std::vector<FreePair> free;
};

struct FixingSummary {
  std::vector<TupleFixing> groups;
  long total_fixed_one = 0;
  long total_fixed_zero = 0;
  long total_free = 0;
  /// Slack of the fixing decisions against the ε thresholds: the smallest
  /// diff_min among fixed-one pairs and the largest diff_max among
  /// fixed-zero pairs. A later ε move keeps every fixing valid exactly when
  /// eps1' <= min_fixed_one_diff and eps2' >= max_fixed_zero_diff — the
  /// test that lets SetEpsilon patch a compiled model's rhs in place
  /// instead of recompiling (±inf when nothing was fixed: always valid).
  double min_fixed_one_diff = std::numeric_limits<double>::infinity();
  double max_fixed_zero_diff = -std::numeric_limits<double>::infinity();
};

/// Computes δ_sr fixing for every group tuple r in `tuples` against all
/// other tuples s, over `box` ∩ simplex:
///   min w·d >= eps1  ⇒ δ = 1,   max w·d <= eps2  ⇒ δ = 0,   else free.
/// Fails with kInfeasible when box ∩ simplex is empty.
///
/// With `enable_fixing == false` every pair is reported as free (ranges are
/// still computed, so big-M stays tight) — the ablation knob for measuring
/// what Sec. V-B's pruning buys.
Result<FixingSummary> ComputeIndicatorFixing(const Dataset& data,
                                             const std::vector<int>& tuples,
                                             const WeightBox& box,
                                             double eps1, double eps2,
                                             bool enable_fixing = true);

}  // namespace rankhow

#endif  // RANKHOW_CORE_INDICATOR_FIXING_H_
