#ifndef RANKHOW_CORE_CELL_BOUNDS_H_
#define RANKHOW_CORE_CELL_BOUNDS_H_

/// \file cell_bounds.h
/// Error bounds for weight-space regions (Sec. IV-B): for any box, each
/// indicator δ_sr is fixed 1, fixed 0, or free, which brackets every ranked
/// tuple's induced position and therefore the total position error of EVERY
/// weight vector in the box. Used by the grid-lower-bound seeding strategy.

#include "core/indicator_fixing.h"
#include "data/dataset.h"
#include "math/simplex_box.h"
#include "ranking/ranking.h"
#include "util/status.h"

namespace rankhow {

struct CellErrorBounds {
  /// No weight vector in the box achieves error below this.
  long lower = 0;
  /// Some weight vector in the box is guaranteed to achieve at most this
  /// (conservative: derived from the same interval brackets).
  long upper = 0;
};

/// Bounds the position error over box ∩ simplex. eps1/eps2 are the indicator
/// thresholds of Equation (2).
Result<CellErrorBounds> ComputeCellErrorBounds(const Dataset& data,
                                               const Ranking& given,
                                               const WeightBox& box,
                                               double eps1, double eps2);

}  // namespace rankhow

#endif  // RANKHOW_CORE_CELL_BOUNDS_H_
