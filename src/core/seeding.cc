#include "core/seeding.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "baselines/linear_regression.h"
#include "baselines/ordinal_regression.h"
#include "core/cell_bounds.h"
#include "util/logging.h"
#include "util/random.h"

namespace rankhow {

std::vector<double> ProjectWeightsToSimplex(std::vector<double> weights) {
  double total = 0;
  for (double& w : weights) {
    if (w < 0) w = 0;
    total += w;
  }
  if (total <= 0) {
    std::fill(weights.begin(), weights.end(), 1.0 / weights.size());
    return weights;
  }
  for (double& w : weights) w /= total;
  return weights;
}

Result<std::vector<double>> OrdinalRegressionSeed(const Dataset& data,
                                                  const Ranking& given,
                                                  double eps1) {
  OrdinalRegressionOptions options;
  options.margin = eps1;
  RH_ASSIGN_OR_RETURN(OrdinalRegressionFit fit,
                      FitOrdinalRegression(data, given, options));
  return ProjectWeightsToSimplex(std::move(fit.weights));
}

Result<std::vector<double>> LinearRegressionSeed(const Dataset& data,
                                                 const Ranking& given) {
  RH_ASSIGN_OR_RETURN(LinearRegressionFit fit,
                      FitLinearRegression(data, given));
  return ProjectWeightsToSimplex(std::move(fit.weights));
}

namespace {

struct ScoredBox {
  long lower_bound;
  long upper_bound;
  double width;
  WeightBox box;
};

struct BoxOrder {
  bool operator()(const ScoredBox& a, const ScoredBox& b) const {
    if (a.lower_bound != b.lower_bound) return a.lower_bound > b.lower_bound;
    return a.upper_bound > b.upper_bound;
  }
};

double MaxWidth(const WeightBox& box) {
  double w = 0;
  for (int i = 0; i < box.dim(); ++i) w = std::max(w, box.hi[i] - box.lo[i]);
  return w;
}

}  // namespace

Result<std::vector<double>> GridLowerBoundSeed(const Dataset& data,
                                               const Ranking& given,
                                               const GridSeedOptions& options) {
  const int m = data.num_attributes();
  std::priority_queue<ScoredBox, std::vector<ScoredBox>, BoxOrder> open;

  auto push_box = [&](WeightBox box) -> Status {
    if (!box.IntersectsSimplex()) return Status::OK();
    auto bounds = ComputeCellErrorBounds(data, given, box, options.eps1,
                                         options.eps2);
    if (!bounds.ok()) return bounds.status();
    open.push(ScoredBox{bounds->lower, bounds->upper, MaxWidth(box),
                        std::move(box)});
    return Status::OK();
  };

  RH_RETURN_NOT_OK(push_box(WeightBox::FullSimplex(m)));

  int evaluations = 1;
  std::vector<double> best_point;
  long best_upper = -1;
  while (!open.empty() && evaluations < options.max_cells) {
    ScoredBox top = open.top();
    open.pop();
    if (best_upper >= 0 && top.lower_bound >= best_upper) {
      // Even the most promising cell cannot beat the best certified cell.
      break;
    }
    if (top.width <= options.target_cell_size ||
        top.lower_bound == top.upper_bound) {
      auto point = AnyPointOnSimplexBox(top.box);
      if (point.ok() &&
          (best_upper < 0 || top.upper_bound < best_upper)) {
        best_upper = top.upper_bound;
        best_point = *point;
        if (best_upper == 0) break;
      }
      continue;
    }
    // Split the widest dimension.
    int dim = 0;
    double widest = -1;
    for (int i = 0; i < m; ++i) {
      double w = top.box.hi[i] - top.box.lo[i];
      if (w > widest) {
        widest = w;
        dim = i;
      }
    }
    double mid = 0.5 * (top.box.lo[dim] + top.box.hi[dim]);
    WeightBox left = top.box;
    left.hi[dim] = mid;
    WeightBox right = top.box;
    right.lo[dim] = mid;
    RH_RETURN_NOT_OK(push_box(std::move(left)));
    RH_RETURN_NOT_OK(push_box(std::move(right)));
    evaluations += 2;
  }
  // Budget exhausted: fall back to the most promising remaining cell.
  if (best_point.empty() && !open.empty()) {
    auto point = AnyPointOnSimplexBox(open.top().box);
    if (point.ok()) best_point = *point;
  }
  if (best_point.empty()) {
    return Status::ResourceExhausted(
        "grid seed found no evaluable cell within its budget");
  }
  return best_point;
}

std::vector<double> RandomSeed(int num_attributes, uint64_t seed) {
  Rng rng(seed ^ 0x53454544ULL);
  return rng.NextSimplexPoint(num_attributes);
}

std::vector<double> RandomSeed(int num_attributes, Rng* rng) {
  return rng->NextSimplexPoint(num_attributes);
}

std::vector<PortfolioSeed> BuildPortfolioSeeds(const Dataset& data,
                                               const Ranking& given,
                                               double eps1, int count,
                                               uint64_t stream_seed) {
  const int m = data.num_attributes();
  std::vector<PortfolioSeed> seeds;
  if (count <= 0) return seeds;
  seeds.reserve(count);

  auto near_duplicate = [&](const std::vector<double>& w) {
    for (const PortfolioSeed& s : seeds) {
      double dist = 0;
      for (int a = 0; a < m; ++a) {
        dist = std::max(dist, std::abs(s.weights[a] - w[a]));
      }
      if (dist < 1e-9) return true;
    }
    return false;
  };
  auto try_add = [&](const char* name, Result<std::vector<double>> w) {
    if (static_cast<int>(seeds.size()) >= count) return;
    if (!w.ok() || near_duplicate(*w)) return;  // random draw fills the slot
    seeds.push_back(PortfolioSeed{name, *std::move(w)});
  };

  try_add("ordinal", OrdinalRegressionSeed(data, given, eps1));
  try_add("linear", LinearRegressionSeed(data, given));
  GridSeedOptions grid_options;
  grid_options.eps1 = eps1;
  try_add("grid", GridLowerBoundSeed(data, given, grid_options));
  // Random tail: stream i is disjoint from every other by construction,
  // and tied to its slot index — dropping a failed deterministic seed
  // never reshuffles which random points the survivors get. Duplicate
  // draws are astronomically unlikely for m >= 2, but for m == 1 the
  // simplex is the single point {1}, so after a bounded number of
  // rejections the draw is accepted anyway — exactly `count` seeds always
  // come back, never an infinite loop.
  Rng base(stream_seed ^ 0x504F5254ULL);
  int rejected = 0;
  for (int i = 0; static_cast<int>(seeds.size()) < count; ++i) {
    Rng stream = base.SplitStream(i);
    std::vector<double> w = RandomSeed(m, &stream);
    if (near_duplicate(w) && ++rejected <= 2 * count + 8) continue;
    seeds.push_back(
        PortfolioSeed{"random-" + std::to_string(i), std::move(w)});
  }
  return seeds;
}

}  // namespace rankhow
