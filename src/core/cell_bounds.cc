#include "core/cell_bounds.h"

#include <algorithm>
#include <cmath>

namespace rankhow {

Result<CellErrorBounds> ComputeCellErrorBounds(const Dataset& data,
                                               const Ranking& given,
                                               const WeightBox& box,
                                               double eps1, double eps2) {
  RH_ASSIGN_OR_RETURN(
      FixingSummary fixing,
      ComputeIndicatorFixing(data, given.ranked_tuples(), box, eps1, eps2));
  CellErrorBounds bounds;
  for (const TupleFixing& group : fixing.groups) {
    long beats_min = group.fixed_one;
    long beats_max = group.fixed_one + static_cast<long>(group.free.size());
    long target = given.position(group.tuple) - 1;
    // Positions bracket [beats_min+1, beats_max+1]; distance of target+1 to
    // the bracket is a valid per-tuple lower bound; the farthest endpoint a
    // valid upper bound.
    long lo = 0;
    if (target < beats_min) {
      lo = beats_min - target;
    } else if (target > beats_max) {
      lo = target - beats_max;
    }
    long hi = std::max(std::labs(target - beats_min),
                       std::labs(target - beats_max));
    bounds.lower += lo;
    bounds.upper += hi;
  }
  return bounds;
}

}  // namespace rankhow
