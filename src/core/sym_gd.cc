#include "core/sym_gd.h"

#include <algorithm>
#include <cmath>

#include "core/seeding.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace rankhow {

SymGd::SymGd(const Dataset& data, const Ranking& given, SymGdOptions options)
    : options_(std::move(options)), solver_(data, given, options_.solver) {}

Result<SymGdResult> SymGd::Run(const std::vector<double>& seed) const {
  // Cell size is user input (Sec. IV-C: any value in (0, 2)); report
  // misuse as a status, not a crash.
  if (!(options_.cell_size > 0 && options_.cell_size < 2)) {
    return Status::Invalid(StrFormat("cell size must lie in (0, 2), got %g",
                                     options_.cell_size));
  }
  const int m = solver_.problem().data->num_attributes();
  if (static_cast<int>(seed.size()) != m) {
    return Status::Invalid("seed weight arity mismatch");
  }
  double seed_sum = 0;
  for (double w : seed) {
    if (!(w >= -1e-9)) {
      return Status::Invalid("seed weights must be non-negative");
    }
    seed_sum += w;
  }
  if (std::abs(seed_sum - 1.0) > 1e-6) {
    return Status::Invalid(StrFormat(
        "seed weights must sum to 1 (got %g): SYM-GD cells are boxes "
        "around a point on the weight simplex",
        seed_sum));
  }
  Deadline deadline(options_.time_budget_seconds);
  WallTimer timer;
  // The portfolio's kill switch reads like an expired budget: the descent
  // winds down at the next iteration boundary and keeps its best iterate.
  auto stopped = [&] {
    return deadline.Expired() ||
           (options_.external_stop != nullptr &&
            options_.external_stop->load(std::memory_order_relaxed));
  };

  SymGdResult result;
  std::vector<double> current = seed;
  long current_error = -1;  // unknown until the first solve
  double cell = options_.cell_size;

  // Outer loop = Algorithm 2's cell doubling; a single pass when
  // non-adaptive (Algorithm 1).
  while (true) {
    bool converged = false;
    // Inner loop = Algorithm 1: move to the cell optimum until stuck.
    while (result.iterations < options_.max_iterations) {
      if (stopped()) break;
      // Budget the inner MILP so one oversized cell cannot eat t_total
      // (Sec. IV-C's motivation for the adaptive variant).
      RankHow inner = solver_;
      if (deadline.HasBudget()) {
        // RemainingOrZero clamps a live budget away from 0, which every
        // downstream time_limit field reads as "unlimited".
        double remaining = deadline.RemainingOrZero();
        double prior = inner.options().time_limit_seconds;
        inner.options().time_limit_seconds =
            prior > 0 ? std::min(prior, remaining) : remaining;
      }
      WeightBox box = WeightBox::CellAround(current, cell);
      auto step = inner.SolveInBox(box, &current);
      if (!step.ok()) {
        if (step.status().code() == StatusCode::kResourceExhausted) break;
        return step.status();
      }
      ++result.iterations;
      result.error_trajectory.push_back(step->error);
      result.total_nodes += step->stats.nodes_explored;
      result.total_free_indicators += step->num_free_indicators;
      result.total_lp_pivots += step->stats.lp_iterations;
      result.total_lp_warm_solves += step->stats.lp_warm_solves;
      result.total_lp_cold_solves += step->stats.lp_cold_solves;

      bool improved = current_error < 0 || step->error < current_error;
      if (current_error < 0 || step->error <= current_error) {
        current = step->function.weights;
        current_error = step->error;
        result.function = std::move(step->function);
        result.error = step->error;
      }
      if (!improved && result.iterations > 1) {
        converged = true;  // error(W_i) == error(W_{i-1}): local optimum
        break;
      }
      if (current_error == 0) {
        converged = true;  // perfect ranking; nothing to improve
        break;
      }
    }
    (void)converged;
    if (!options_.adaptive || stopped() ||
        result.iterations >= options_.max_iterations || current_error == 0) {
      break;
    }
    cell = std::min(cell * 2, 1.999);  // Algorithm 2, line 6
  }

  result.final_cell_size = cell;
  result.seconds = timer.ElapsedSeconds();
  if (current_error < 0) {
    return Status::ResourceExhausted(
        "SYM-GD budget expired before the first cell solve finished");
  }
  return result;
}

Result<SymGdResult> SymGd::RunPortfolio() const {
  const OptProblem& problem = solver_.problem();
  const Dataset& data = *problem.data;
  const Ranking& given = *problem.given;
  const int num_seeds = std::max(1, options_.num_seeds);
  std::vector<PortfolioSeed> seeds =
      BuildPortfolioSeeds(data, given, options_.solver.eps.eps1, num_seeds,
                          options_.portfolio_seed);
  RH_CHECK(static_cast<int>(seeds.size()) == num_seeds);

  Deadline deadline(options_.time_budget_seconds);
  WallTimer timer;
  std::atomic<bool> stop{false};
  std::vector<Result<SymGdResult>> outcomes(
      seeds.size(), Status::ResourceExhausted(
                        "portfolio budget expired before this seed started"));

  // One independent descent per seed. Each runner is a fresh SymGd (its
  // RankHow gets a private spatial-oracle slot — the shared slot is a
  // serial-sweep optimization, and sharing it across racing descents
  // would race one tableau), seeded with whatever budget remains when the
  // task actually starts (on a narrow pool, later seeds start later).
  auto run_seed = [&](int i) {
    if (stop.load(std::memory_order_relaxed) || deadline.Expired()) return;
    SymGdOptions run_options = options_;
    run_options.num_seeds = 1;
    run_options.external_stop = &stop;
    // The race already saturates the pool; nested search parallelism
    // would oversubscribe the hardware.
    run_options.solver.num_threads = 1;
    if (deadline.HasBudget()) {
      // Clamped: an exactly-exhausted budget must not hand this seed an
      // unlimited (0) one.
      run_options.time_budget_seconds = deadline.RemainingOrZero();
    }
    SymGd runner(data, given, run_options);
    // Whole-struct copy so every customization the caller made through
    // problem() — eps included, and any field added later — carries over;
    // the data/given pointers already reference the same objects.
    runner.problem() = problem;
    outcomes[i] = runner.Run(seeds[i].weights);
    if (outcomes[i].ok() && outcomes[i]->error == 0) {
      // A perfect function cannot be beaten: wind the other descents down.
      stop.store(true, std::memory_order_relaxed);
    }
  };

  const int race_width =
      std::min(ThreadPool::ResolveThreadCount(options_.solver.num_threads),
               static_cast<int>(seeds.size()));
  if (race_width <= 1) {
    for (size_t i = 0; i < seeds.size(); ++i) run_seed(static_cast<int>(i));
  } else {
    ThreadPool pool(race_width);
    TaskGroup group(&pool);
    for (size_t i = 0; i < seeds.size(); ++i) {
      group.Spawn([&run_seed, i] { run_seed(static_cast<int>(i)); });
    }
    group.Wait();
  }

  // Winner: smallest verified error; ties break to the earlier seed (the
  // portfolio order is deterministic, so the result is too).
  SymGdResult result;
  int winner = -1;
  for (size_t i = 0; i < seeds.size(); ++i) {
    if (!outcomes[i].ok()) continue;
    if (winner < 0 || outcomes[i]->error < outcomes[winner]->error) {
      winner = static_cast<int>(i);
    }
  }
  if (winner < 0) {
    // Every descent failed; surface the first real failure.
    for (const auto& outcome : outcomes) {
      if (!outcome.ok()) return outcome.status();
    }
    return Status::Internal("empty portfolio");
  }
  result = *outcomes[winner];
  result.winning_seed = winner;
  result.total_nodes = 0;
  result.total_free_indicators = 0;
  result.total_lp_pivots = 0;
  result.total_lp_warm_solves = 0;
  result.total_lp_cold_solves = 0;
  result.portfolio.reserve(seeds.size());
  for (size_t i = 0; i < seeds.size(); ++i) {
    SeedRun run;
    run.seed_name = seeds[i].name;
    run.seed_weights = seeds[i].weights;
    if (outcomes[i].ok()) {
      run.error = outcomes[i]->error;
      run.iterations = outcomes[i]->iterations;
      run.error_trajectory = outcomes[i]->error_trajectory;
      run.seconds = outcomes[i]->seconds;
      result.total_nodes += outcomes[i]->total_nodes;
      result.total_free_indicators += outcomes[i]->total_free_indicators;
      result.total_lp_pivots += outcomes[i]->total_lp_pivots;
      result.total_lp_warm_solves += outcomes[i]->total_lp_warm_solves;
      result.total_lp_cold_solves += outcomes[i]->total_lp_cold_solves;
    }
    result.portfolio.push_back(std::move(run));
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace rankhow
