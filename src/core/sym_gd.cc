#include "core/sym_gd.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace rankhow {

SymGd::SymGd(const Dataset& data, const Ranking& given, SymGdOptions options)
    : options_(std::move(options)), solver_(data, given, options_.solver) {}

Result<SymGdResult> SymGd::Run(const std::vector<double>& seed) const {
  // Cell size is user input (Sec. IV-C: any value in (0, 2)); report
  // misuse as a status, not a crash.
  if (!(options_.cell_size > 0 && options_.cell_size < 2)) {
    return Status::Invalid(StrFormat("cell size must lie in (0, 2), got %g",
                                     options_.cell_size));
  }
  const int m = solver_.problem().data->num_attributes();
  if (static_cast<int>(seed.size()) != m) {
    return Status::Invalid("seed weight arity mismatch");
  }
  double seed_sum = 0;
  for (double w : seed) {
    if (!(w >= -1e-9)) {
      return Status::Invalid("seed weights must be non-negative");
    }
    seed_sum += w;
  }
  if (std::abs(seed_sum - 1.0) > 1e-6) {
    return Status::Invalid(StrFormat(
        "seed weights must sum to 1 (got %g): SYM-GD cells are boxes "
        "around a point on the weight simplex",
        seed_sum));
  }
  Deadline deadline(options_.time_budget_seconds);
  WallTimer timer;

  SymGdResult result;
  std::vector<double> current = seed;
  long current_error = -1;  // unknown until the first solve
  double cell = options_.cell_size;

  // Outer loop = Algorithm 2's cell doubling; a single pass when
  // non-adaptive (Algorithm 1).
  while (true) {
    bool converged = false;
    // Inner loop = Algorithm 1: move to the cell optimum until stuck.
    while (result.iterations < options_.max_iterations) {
      if (deadline.Expired()) break;
      // Budget the inner MILP so one oversized cell cannot eat t_total
      // (Sec. IV-C's motivation for the adaptive variant).
      RankHow inner = solver_;
      if (deadline.HasBudget()) {
        double remaining = deadline.RemainingSeconds();
        double prior = inner.options().time_limit_seconds;
        inner.options().time_limit_seconds =
            prior > 0 ? std::min(prior, remaining) : remaining;
      }
      WeightBox box = WeightBox::CellAround(current, cell);
      auto step = inner.SolveInBox(box, &current);
      if (!step.ok()) {
        if (step.status().code() == StatusCode::kResourceExhausted) break;
        return step.status();
      }
      ++result.iterations;
      result.error_trajectory.push_back(step->error);
      result.total_nodes += step->stats.nodes_explored;
      result.total_free_indicators += step->num_free_indicators;
      result.total_lp_pivots += step->stats.lp_iterations;
      result.total_lp_warm_solves += step->stats.lp_warm_solves;
      result.total_lp_cold_solves += step->stats.lp_cold_solves;

      bool improved = current_error < 0 || step->error < current_error;
      if (current_error < 0 || step->error <= current_error) {
        current = step->function.weights;
        current_error = step->error;
        result.function = std::move(step->function);
        result.error = step->error;
      }
      if (!improved && result.iterations > 1) {
        converged = true;  // error(W_i) == error(W_{i-1}): local optimum
        break;
      }
      if (current_error == 0) {
        converged = true;  // perfect ranking; nothing to improve
        break;
      }
    }
    (void)converged;
    if (!options_.adaptive || deadline.Expired() ||
        result.iterations >= options_.max_iterations || current_error == 0) {
      break;
    }
    cell = std::min(cell * 2, 1.999);  // Algorithm 2, line 6
  }

  result.final_cell_size = cell;
  result.seconds = timer.ElapsedSeconds();
  if (current_error < 0) {
    return Status::ResourceExhausted(
        "SYM-GD budget expired before the first cell solve finished");
  }
  return result;
}

}  // namespace rankhow
