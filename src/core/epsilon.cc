#include "core/epsilon.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace rankhow {

EpsilonConfig DeriveEpsilons(double tie_eps, double tau) {
  RH_CHECK(tau > 0) << "precision tolerance must be positive";
  EpsilonConfig eps;
  eps.tie_eps = tie_eps;
  eps.eps2 = tie_eps - tau;
  // τ⁺: minimally greater than τ in double precision.
  double tau_plus =
      std::nextafter(tau, std::numeric_limits<double>::infinity());
  eps.eps1 = tie_eps + tau_plus;
  return eps;
}

Result<TauSearchResult> FindPrecisionTolerance(
    double tie_eps,
    const std::function<Result<bool>(const EpsilonConfig&)>& solve_and_verify,
    TauSearchOptions options) {
  RH_CHECK(options.tau_min > 0 && options.tau_max > options.tau_min);
  TauSearchResult result;

  // The largest tolerance must verify, otherwise the instance is outside
  // the search range (τ genuinely above tau_max).
  EpsilonConfig hi_eps = DeriveEpsilons(tie_eps, options.tau_max);
  RH_ASSIGN_OR_RETURN(bool hi_ok, solve_and_verify(hi_eps));
  ++result.probes;
  if (!hi_ok) {
    return Status::Numerical(
        "even the largest probed precision tolerance fails verification");
  }
  double lo = options.tau_min;  // may fail verification
  double hi = options.tau_max;  // verifies
  result.tau = hi;
  result.eps = hi_eps;

  for (int step = 0; step < options.max_steps; ++step) {
    double mid = std::sqrt(lo * hi);  // geometric bisection
    EpsilonConfig eps = DeriveEpsilons(tie_eps, mid);
    RH_ASSIGN_OR_RETURN(bool ok, solve_and_verify(eps));
    ++result.probes;
    if (ok) {
      hi = mid;
      result.tau = mid;
      result.eps = eps;
    } else {
      lo = mid;
    }
  }
  return result;
}

}  // namespace rankhow
