#ifndef RANKHOW_CORE_WEIGHT_CONSTRAINTS_H_
#define RANKHOW_CORE_WEIGHT_CONSTRAINTS_H_

/// \file weight_constraints.h
/// The predicate P of the OPT problem (Definition 4): a conjunction of
/// linear constraints Σ αᵢwᵢ ≤ α₀ on the weight vector, beyond the implicit
/// simplex constraints w ≥ 0, Σw = 1. This is how a user enforces prior
/// knowledge ("points scored must weigh at least 0.1", "defensive skills at
/// most 0.4 total" — Example 1).

#include <string>
#include <vector>

#include "lp/model.h"
#include "math/simplex_box.h"
#include "util/status.h"

namespace rankhow {

/// One linear constraint Σ terms.coeff · w_terms.attr (op) rhs.
struct WeightConstraint {
  std::vector<std::pair<int, double>> terms;  // (attribute index, coefficient)
  RelOp op = RelOp::kLe;
  double rhs = 0.0;
  std::string name;
};

/// Appends one constraint as a row of `model` (weight_vars maps attribute
/// index -> model variable id; unnamed constraints get row name "P"). The
/// shared body of WeightConstraintSet::AppendTo and the session delta-patch
/// path (opt_model_builder's AppendWeightConstraintRow) — one place owns
/// the row-naming convention and the attribute-range check.
void AppendWeightConstraintTo(const WeightConstraint& constraint,
                              LpModel* model,
                              const std::vector<int>& weight_vars);

/// A conjunction of weight constraints with convenience builders.
class WeightConstraintSet {
 public:
  /// w_attr >= lo.
  void AddMinWeight(int attr, double lo, std::string name = "");
  /// w_attr <= hi.
  void AddMaxWeight(int attr, double hi, std::string name = "");
  /// Σ_{a ∈ attrs} w_a (op) rhs — e.g. bound the total weight of all
  /// defensive skills.
  void AddGroupBound(const std::vector<int>& attrs, RelOp op, double rhs,
                     std::string name = "");
  /// General Σ αᵢwᵢ (op) α₀.
  void Add(WeightConstraint constraint);

  /// Removes every constraint carrying `name` (a relaxing session edit).
  /// Returns the number removed (0 = unknown name; callers decide whether
  /// that is an error). Unnamed constraints can never be removed this way.
  size_t RemoveByName(const std::string& name);

  /// True iff some constraint carries `name` (the session script layer
  /// rejects duplicate names before adding; empty names never match).
  bool ContainsName(const std::string& name) const;

  const std::vector<WeightConstraint>& constraints() const {
    return constraints_;
  }
  bool empty() const { return constraints_.empty(); }
  size_t size() const { return constraints_.size(); }

  /// Monotonic edit counter, bumped by every Add*/RemoveByName. Compiled
  /// artifacts (BoxFeasibilityOracle tableaus, cached OptModels) record the
  /// revision they were built at and rebuild on mismatch — a size()
  /// comparison is not enough once removal exists (remove + add restores
  /// the count with different content).
  uint64_t revision() const { return revision_; }

  /// Appends the constraints as rows of `model` (weight_vars maps attribute
  /// index -> model variable id).
  void AppendTo(LpModel* model, const std::vector<int>& weight_vars) const;

  /// Shrinks a weight box using the single-variable constraints (sound for
  /// indicator fixing: the result still contains the feasible set).
  WeightBox TightenBox(const WeightBox& base) const;

  /// Checks a weight vector against all constraints.
  bool IsSatisfied(const std::vector<double>& weights,
                   double tol = 1e-9) const;

 private:
  std::vector<WeightConstraint> constraints_;
  uint64_t revision_ = 0;
};

}  // namespace rankhow

#endif  // RANKHOW_CORE_WEIGHT_CONSTRAINTS_H_
