#ifndef RANKHOW_CORE_RANKHOW_H_
#define RANKHOW_CORE_RANKHOW_H_

/// \file rankhow.h
/// The RANKHOW exact solver (Sections III and V of the paper): synthesize a
/// linear scoring function minimizing position-based error against a given
/// ranking, under flexible weight constraints, by solving the Equation-(2)
/// MILP holistically with branch-and-bound — with dominance/interval
/// pruning, tight big-M, a true-error primal heuristic supplying the
/// cross-branch incumbents, and exact-arithmetic verification of the result.
///
/// Typical use:
///   RankHow solver(data, given_ranking, options);
///   solver.problem().constraints.AddMinWeight(pts_index, 0.1);
///   auto result = solver.Solve();
///   std::cout << result->function.ToString() << "  error=" << result->error;

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "core/opt_model_builder.h"
#include "core/opt_problem.h"
#include "core/presolve.h"
#include "core/scoring_function.h"
#include "core/spatial_bnb.h"
#include "lp/simplex.h"
#include "milp/branch_and_bound.h"
#include "ranking/verifier.h"
#include "util/status.h"
#include "util/timer.h"

namespace rankhow {

/// Which exact search runs under RankHow::Solve.
enum class SolveStrategy {
  /// Pick per instance: spatial subdivision when the weight-space dimension
  /// is small and the pair count moderate, indicator MILP otherwise.
  kAuto,
  /// The paper's Equation-(2) MILP, solved by branch-and-bound on the δ
  /// indicator variables (what Gurobi does).
  kIndicatorMilp,
  /// Weight-space branch-and-bound (core/spatial_bnb.h): exact under the
  /// true ε-tie semantics, fastest for few attributes.
  kSpatial,
  /// The Section III-A alternative the paper sketches for SMT solvers (Z3):
  /// convert OPT into a series of satisfiability problems and binary-search
  /// the smallest error bound E for which `Equation-(2) constraints ∧
  /// objective <= E` admits a solution. Each probe is a feasibility MILP.
  /// Exact like kIndicatorMilp but typically slower (infeasible probes must
  /// exhaust their search tree) — measured in bench_ablations (A9).
  kSatBinarySearch,
};

const char* SolveStrategyName(SolveStrategy strategy);

struct RankHowOptions {
  EpsilonConfig eps;
  SolveStrategy strategy = SolveStrategy::kAuto;
  /// Wall-clock budget for one solve; 0 = unlimited.
  double time_limit_seconds = 0;
  /// Branch-and-bound node cap; 0 = unlimited.
  int64_t max_nodes = 0;
  /// Run the multi-start presolve (core/presolve.h) to warm-start the exact
  /// search with a strong incumbent. Skipped when the caller supplies
  /// initial weights (SYM-GD's iterates) — those play the same role.
  bool use_presolve = true;
  PresolveOptions presolve;
  /// Evaluate the true error of each node's weight vector as an incumbent
  /// (Sec. III-B's "cross-branch information"). Disabling this is the
  /// "naive TREE-like solver" ablation.
  bool use_primal_heuristic = true;
  /// Substitute interval-fixed indicators as constants (Sec. V-B pruning).
  bool use_indicator_fixing = true;
  /// Add mutual-exclusion + transitivity strengthening rows (tighter LP
  /// bounds at the cost of larger node LPs).
  bool use_strengthening_cuts = true;
  /// Lazy row generation in the MILP branch-and-bound (see BnbOptions).
  /// Disabling is the full-relaxation ablation.
  bool use_lazy_separation = true;
  /// Warm-started incremental node LPs (see BnbOptions::use_warm_start and
  /// lp/incremental.h): branch-and-bound resolves each node from its
  /// parent's basis on one shared tableau, and the spatial strategy reuses
  /// one box-feasibility LP across boxes/cells. Disabling restores the
  /// cold-start engines (the equivalence oracle).
  bool use_warm_start = true;
  /// Tight per-pair big-M from the simplex-box support function (default).
  /// Disabling lets the relaxation auto-derive loose Ms from variable
  /// bounds — the textbook formulation the paper implicitly improves on.
  bool use_tight_big_m = true;
  /// Re-compute the final error in exact arithmetic (Sec. V-A).
  bool verify = true;
  /// Worker threads for the exact searches (both the indicator MILP and
  /// the spatial subdivision) and for the SYM-GD seed portfolio: 1 =
  /// serial (default), 0 = all hardware threads, n = exactly n. Thread
  /// count never changes which optimum is *proven* — only how fast — but
  /// node/pivot counts and unproven incumbents under a budget can differ.
  int num_threads = 1;
  /// Cooperative cancellation: when non-null, the exact searches poll this
  /// flag at node/box/probe granularity (through SearchCoordinator) and
  /// wind down exactly like a deadline expiry — a budget-limited result,
  /// never an error. The session server points this at the per-client
  /// cancel flag so cancelling one client aborts its in-flight solve
  /// without touching siblings on the same pool. The flag must outlive the
  /// solve. The multi-start presolve does not poll it (its own clamped
  /// time budget bounds the latency instead).
  const std::atomic<bool>* cancel = nullptr;
  /// Capacity of SolveSession's cross-query incumbent pool. Overflow does
  /// dominated-entry eviction rather than pure recency (see DESIGN.md
  /// "Session architecture"), so long tighten runs keep low-error anchors
  /// warm for later relax edits.
  int incumbent_pool_cap = 8;
  SimplexOptions lp_options;
};

struct RankHowResult {
  ScoringFunction function;
  /// Position-based error of `function` — exact-arithmetic value when
  /// verification is on, otherwise the solver's claimed objective.
  long error = 0;
  /// The objective the solver claimed for its solution.
  long claimed_error = 0;
  /// Proven lower bound on the optimum.
  long bound = 0;
  /// True iff the exact search completed (bound == claimed objective).
  bool proven_optimal = false;
  /// Which strategy actually ran (resolves kAuto).
  SolveStrategy strategy_used = SolveStrategy::kIndicatorMilp;
  /// Present when options.verify; consistent == false flags a numerical
  /// false positive (Table III's phenomenon).
  std::optional<VerificationReport> verification;
  BnbStats stats;
  long num_free_indicators = 0;
  long num_fixed_indicators = 0;
  /// Satisfiability probes issued (kSatBinarySearch only).
  long sat_probes = 0;
  double seconds = 0;
};

/// Warm state threaded into one exact solve — how SolveSession (and RankHow
/// itself) passes cross-query knowledge into the per-strategy drivers.
struct ExactSolveSeed {
  /// Warm incumbent weights (empty = none): the presolve winner, a SYM-GD
  /// iterate, or the best revalidated pool incumbent of a session.
  std::vector<double> warm_weights;
  /// Externally proven lower bound on the current problem's optimum under
  /// the target strategy's semantics; -1 = none. Sound after a
  /// constraints-only tightening edit of a proven solve (see
  /// BnbOptions::external_lower_bound).
  long lower_bound = -1;
  /// Shared warm box-feasibility oracle for serial spatial solves
  /// (non-owning; nullptr = the search compiles its own).
  BoxFeasibilityOracle* box_oracle = nullptr;
};

/// Presolve options clamped to the solve's time budget: both façades cap
/// warm-start discovery (multi-start presolve, session pool revalidation)
/// at a quarter of the time limit so the exact search keeps the lion's
/// share.
PresolveOptions ClampedPresolveOptions(const RankHowOptions& options,
                                       const Deadline& deadline);

/// Rebuilds (on constraint-set revision mismatch) and returns the
/// cross-query warm box-feasibility oracle serial spatial solves thread
/// through ExactSolveSeed::box_oracle, or nullptr when the solve is
/// parallel or cold-start (each worker then compiles its own).
BoxFeasibilityOracle* EnsureWarmBoxOracle(
    const OptProblem& problem, const RankHowOptions& options,
    std::unique_ptr<BoxFeasibilityOracle>* slot);

/// Per-strategy exact drivers shared by the one-shot RankHow façade and the
/// persistent SolveSession. Each runs one search over the already-prepared
/// inputs — no presolve, no strategy resolution — and post-processes the
/// result (verification, indicator accounting) identically.
SolveStrategy ResolveSolveStrategy(const OptProblem& problem,
                                   const RankHowOptions& options,
                                   const WeightBox& box);
Result<RankHowResult> SolveOptModelMilp(const OptProblem& problem,
                                        const RankHowOptions& options,
                                        const OptModel& model,
                                        const ExactSolveSeed& seed,
                                        const Deadline& deadline);
Result<RankHowResult> SolveOptModelSat(const OptProblem& problem,
                                       const RankHowOptions& options,
                                       const OptModel& model,
                                       const ExactSolveSeed& seed,
                                       const Deadline& deadline);
Result<RankHowResult> SolveOptSpatial(const OptProblem& problem,
                                      const RankHowOptions& options,
                                      const WeightBox& box,
                                      const ExactSolveSeed& seed,
                                      const Deadline& deadline);

/// The exact OPT solver. Holds a mutable OptProblem so callers can layer
/// constraints between solves (the Example-1 exploration workflow).
/// One-shot façade over the drivers above: every Solve() rebuilds the model
/// and presolves from scratch. For interactive edit-and-re-solve traffic use
/// SolveSession (core/solve_session.h), which reuses all of that work.
class RankHow {
 public:
  RankHow(const Dataset& data, const Ranking& given,
          RankHowOptions options = RankHowOptions());

  /// The problem instance; add weight/position/order constraints here.
  /// Edit `problem().constraints` in place (Add/RemoveByName) rather than
  /// assigning a whole new WeightConstraintSet over it: the cached spatial
  /// feasibility oracle is revalidated by the set's monotonic revision()
  /// counter, and wholesale replacement can smuggle in a different set at
  /// a coincidentally equal revision, silently reusing a stale oracle.
  OptProblem& problem() { return problem_; }
  const OptProblem& problem() const { return problem_; }
  RankHowOptions& options() { return options_; }

  /// Global solve over the whole weight simplex.
  Result<RankHowResult> Solve(
      const std::vector<double>* initial_weights = nullptr) const;

  /// Solve restricted to a weight box (SYM-GD cells; Sec. IV).
  Result<RankHowResult> SolveInBox(
      const WeightBox& box,
      const std::vector<double>* initial_weights = nullptr) const;

  /// Evaluates a weight vector the way the MILP sees it: returns the
  /// Equation-(2) objective if every score difference is outside the
  /// (ε₂, ε₁) gap and all side constraints hold; nullopt otherwise.
  std::optional<long> MilpConsistentError(
      const std::vector<double>& weights) const;

 private:
  const Dataset& data_;
  const Ranking& given_;
  OptProblem problem_;
  RankHowOptions options_;
  /// Lazily-built warm P-feasibility oracle for the spatial strategy. Held
  /// through a shared slot so the copies SYM-GD makes per cell (to re-budget
  /// time limits) keep feeding one oracle: adjacent cells then resolve their
  /// box-feasibility LPs from each other's bases. Rebuilt if the caller
  /// grows problem().constraints between solves.
  struct BoxOracleSlot {
    std::unique_ptr<BoxFeasibilityOracle> oracle;
  };
  std::shared_ptr<BoxOracleSlot> box_oracle_slot_ =
      std::make_shared<BoxOracleSlot>();
};

}  // namespace rankhow

#endif  // RANKHOW_CORE_RANKHOW_H_
