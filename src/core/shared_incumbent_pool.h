#ifndef RANKHOW_CORE_SHARED_INCUMBENT_POOL_H_
#define RANKHOW_CORE_SHARED_INCUMBENT_POOL_H_

/// \file shared_incumbent_pool.h
/// The registry-level cross-client incumbent pool (ROADMAP's "cross-client
/// incumbent sharing"; see DESIGN.md "Network transport & routing").
///
/// Shape: N clients solve over ONE immutable dataset snapshot with
/// overlapping constraint sets — the classic what-if crowd, where many
/// clients probe the same region of weight space. Each client's
/// SolveSession already pools its *own* winners; this pool lets sessions
/// share them: a session publishes every proven winner here, and every
/// solve draws the entries its siblings published since its last draw.
///
/// Soundness is inherited, not re-argued: a drawn entry enters the drawing
/// session exactly where its own pool entries do — as a *candidate* for
/// `RevalidateIncumbents`, re-evaluated under the drawing session's current
/// problem before any use. A stale or cross-constrained entry costs one
/// evaluation, never correctness, and no bound information crosses clients
/// (proven bounds stay per-session, where the tighten-only rule that makes
/// them sound is enforceable).
///
/// Entries are tagged with the snapshot id they were proven over, and draws
/// filter on the drawer's current snapshot: a client that COW-forked its
/// dataset stops matching the base snapshot's entries (they would merely
/// waste revalidation time — the filter is an optimization, not a soundness
/// requirement). Draws are *revision-checked*: every entry carries a
/// monotonic sequence number and each session remembers the last sequence
/// it drew, so an unchanged pool costs one atomic read per solve and a
/// session never re-validates an entry it has already seen (a drawn entry
/// that proved useful re-enters through the session's own pool).
///
/// Thread-safety: fully internally locked — sessions on different registry
/// strands publish and draw concurrently. The pool must outlive every
/// session pointed at it (the registry owns both and destroys sessions
/// first).

#include <cstdint>
#include <mutex>
#include <vector>

#include "core/warm_cache.h"

namespace rankhow {

/// Aggregate counters (snapshot; for registry Stats() and the wire `stats`
/// verb).
struct SharedIncumbentPoolStats {
  int size = 0;
  int64_t published = 0;
  int64_t drawn = 0;
};

class SharedIncumbentPool {
 public:
  /// `capacity` bounds the resident entries; overflow evicts the oldest
  /// (pure warm-start heuristics — any policy is sound).
  explicit SharedIncumbentPool(int capacity = 32);

  SharedIncumbentPool(const SharedIncumbentPool&) = delete;
  SharedIncumbentPool& operator=(const SharedIncumbentPool&) = delete;

  /// Publishes a proven winner found over `snapshot_id` by `publisher` (an
  /// opaque session token used so a session never re-draws its own
  /// entries). `error` is the proven objective at publication time — a
  /// hint for diagnostics only; drawers re-evaluate under their own
  /// problem. A duplicate weight vector over the same snapshot refreshes
  /// the existing entry in place without bumping its sequence (so sibling
  /// sessions are not woken for a vector they already saw).
  ///
  /// `durable`, when non-null and a warm cache is attached, is the
  /// fingerprint-stamped form of the same winner and is written through to
  /// the cache (in memory + async disk append) — the pool acting as the
  /// persistent cache's write-through front. Publishers without a
  /// fingerprint (no cache configured) pass nullptr and nothing persists.
  void Publish(const void* snapshot_id, const void* publisher,
               const std::vector<double>& weights, long error,
               const WarmCache::Entry* durable = nullptr);

  /// Attaches the persistent warm cache this pool fronts (non-owning; must
  /// outlive the pool; nullptr detaches). The router owns the cache so it
  /// survives registry — and pool — eviction.
  void AttachWarmCache(WarmCache* cache);
  bool has_warm_cache() const;

  /// Appends to `*out` every entry over `snapshot_id` published by someone
  /// other than `drawer` with sequence > `*seen_seq`, then advances
  /// `*seen_seq` to the pool's current sequence. Returns the number of
  /// entries appended.
  size_t CollectNew(const void* snapshot_id, const void* drawer,
                    uint64_t* seen_seq,
                    std::vector<std::vector<double>>* out) const;

  SharedIncumbentPoolStats Stats() const;

 private:
  struct Entry {
    const void* snapshot = nullptr;
    const void* publisher = nullptr;
    std::vector<double> weights;
    long error = -1;
    uint64_t seq = 0;
  };

  mutable std::mutex mu_;
  std::vector<Entry> entries_;  // publication order (oldest first)
  uint64_t next_seq_ = 1;
  size_t capacity_;
  mutable int64_t drawn_ = 0;
  int64_t published_ = 0;
  WarmCache* warm_cache_ = nullptr;
};

}  // namespace rankhow

#endif  // RANKHOW_CORE_SHARED_INCUMBENT_POOL_H_
