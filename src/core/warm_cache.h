#ifndef RANKHOW_CORE_WARM_CACHE_H_
#define RANKHOW_CORE_WARM_CACHE_H_

/// \file warm_cache.h
/// The persistent warm-start cache (ROADMAP's "persistent warm-start cache
/// keyed by canonical problem fingerprint"): proven winners survive process
/// restarts and registry evictions by living in an append-only on-disk log,
/// keyed by a *canonical problem fingerprint* — so the restart-after-crash
/// story from the journal (which recovers sessions but serves them cold)
/// becomes restart-*warm* serving.
///
/// Fingerprint canonicalization (see DESIGN.md "Persistent warm cache"):
///
///   dataset_fp  — DatasetFingerprint(data, given): FNV-1a over the shape,
///                 attribute names, every value's bit pattern, and the given
///                 ranking. The same identity the journal stamps into open
///                 records.
///   problem_fp  — FNV-1a over the *canonicalized* constraint set (terms
///                 sorted within each constraint, constraints sorted, so two
///                 sessions that added the same predicate in different order
///                 agree), the pairwise order and position constraints, the
///                 ε triple's bit patterns, and the objective (kind +
///                 penalty ladder). The constraint component is cached by
///                 callers at WeightConstraintSet::revision() granularity.
///
/// Soundness rule (the PR 5 "candidates-never-bounds" argument, extended):
/// an entry whose fingerprint matches the drawing solve EXACTLY is a proven
/// optimum of the *same* problem, so it may seed a tighten-only external
/// lower bound — subject to the semantics check (a spatial entry proves the
/// true ε-tie optimum, which never exceeds the MILP/SAT (ε₂, ε₁)-gap
/// optimum, so true-semantics entries seed gap re-solves but not vice
/// versa). ANY mismatch — different constraints, ε, objective, or a stale
/// dataset — demotes the entry to a revalidation *candidate*: its weight
/// vector is re-evaluated under the drawing session's problem before any
/// use, and its recorded error/bound is discarded. A stale entry costs one
/// evaluation, never correctness.
///
/// On-disk format — one text record per line, framed exactly like the
/// session journal (torn-tail truncation, CRC-corrupt skip, line
/// resynchronization):
///
///   RHW1 <crc32-hex> <len> <payload>\n
///   payload := win <dataset_fp> <problem_fp> <sem> <error> <k> w1 ... wk
///
/// with <sem> 1 for true ε-tie semantics (spatial) and 0 for gap semantics,
/// and weights in %.17g (bit round-trip). Appends run on a background
/// writer thread (publish never blocks a solve on disk); write/fsync
/// failures degrade LOUDLY to cache-off-for-writes — stderr plus
/// Stats().degraded — while the in-memory side keeps serving.
///
/// Thread-safety: fully internally locked (sessions on different registry
/// strands publish and draw concurrently; the router shares one cache
/// across every registry it materializes, and the cache outlives them all).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/opt_problem.h"
#include "data/dataset.h"
#include "ranking/ranking.h"
#include "util/status.h"

namespace rankhow {

/// CRC-32 (IEEE, zlib-compatible) of the payload bytes — the framing
/// checksum shared by the session journal and the warm cache.
uint32_t FrameCrc32(const std::string& payload);

/// A cheap identity for "the same dataset + given ranking": FNV-1a over the
/// shape, attribute names, every value's bit pattern, and the ranked
/// (tuple, position) pairs. The journal stamps it into open records
/// (recovery refuses to replay against a swapped CSV) and the warm cache
/// uses it as the dataset component of the problem fingerprint.
uint64_t DatasetFingerprint(const Dataset& data, const Ranking& given);

/// The canonical identity of one OPT problem instance.
struct ProblemFingerprint {
  uint64_t dataset_fp = 0;  // dataset + given ranking (DatasetFingerprint)
  uint64_t problem_fp = 0;  // constraints + ε + objective (canonicalized)

  bool operator==(const ProblemFingerprint& other) const {
    return dataset_fp == other.dataset_fp && problem_fp == other.problem_fp;
  }
  bool operator!=(const ProblemFingerprint& other) const {
    return !(*this == other);
  }
};

/// Order-independent hash of the predicate P: terms are sorted within each
/// constraint and the serialized constraints sorted before mixing, so the
/// same set built in any order hashes identically. Cache the result at
/// WeightConstraintSet::revision() granularity (every Add*/RemoveByName
/// bumps the revision).
uint64_t HashWeightConstraints(const WeightConstraintSet& constraints);

/// The full canonical fingerprint. `constraint_hash` is
/// HashWeightConstraints of problem.constraints (passed in so sessions can
/// cache it by revision); everything else — order/position constraints, ε,
/// objective — is hashed here.
ProblemFingerprint FingerprintProblem(uint64_t dataset_fp,
                                      uint64_t constraint_hash,
                                      const OptProblem& problem);

struct WarmCacheOptions {
  /// Resident (and durable-dedup) cap per exact fingerprint.
  int max_entries_per_key = 4;
  /// Total resident entries across all keys; overflow drops the oldest key
  /// group (pure warm-start state — any policy is sound).
  int max_resident_entries = 65536;
  /// fsync after draining each append batch (off = let the OS flush).
  bool fsync_appends = true;
  /// Publish blocks until the record is on disk (tests/benches that
  /// kill/reopen right after publishing; production keeps this off).
  bool synchronous_appends = false;
};

/// Aggregate counters (snapshot; surfaced through registry/router stats and
/// the wire `stats` verb).
struct WarmCacheStats {
  /// Draws that found >= 1 exact-fingerprint entry.
  int64_t hits = 0;
  int64_t misses = 0;
  /// Entries handed out as revalidation candidates because their
  /// fingerprint mismatched the drawing solve (never bounds).
  int64_t demotions = 0;
  int64_t published = 0;
  int64_t appended = 0;   // records written to disk
  int64_t loaded = 0;     // intact records read back at Open
  int64_t skipped = 0;    // CRC/framing-corrupt records dropped at Open
  int64_t truncated = 0;  // torn trailing records dropped at Open
  int entries = 0;        // resident entries right now
  /// Cache-off-for-writes: a write/fsync failure exhausted its welcome.
  /// Draws keep serving the resident entries.
  bool degraded = false;
};

class WarmCache {
 public:
  /// One proven winner.
  struct Entry {
    ProblemFingerprint fp;
    /// True ε-tie semantics (spatial strategy) vs (ε₂, ε₁)-gap (MILP/SAT).
    bool true_semantics = false;
    /// The proven optimum at publication time.
    long error = -1;
    std::vector<double> weights;
  };

  /// What one draw hands the session.
  struct Draw {
    /// Exact-fingerprint entries (weights join the revalidation pool too).
    std::vector<Entry> exact;
    /// Demoted entries: same dataset, different problem — candidates only.
    std::vector<std::vector<double>> candidates;
    /// Tighten-only external lower bound from the semantics-compatible
    /// exact entries; -1 = none. The ONLY path by which cache state may
    /// seed a bound.
    long bound = -1;
  };

  /// Opens (creates or appends to) `<dir>/warm.cache`, loading every intact
  /// resident record. Torn/corrupt records are dropped, counted, and
  /// reported on stderr — a vandalized file degrades to an empty cache, it
  /// never fails the open or poisons results. kIoError when the directory
  /// itself is unusable (the caller then serves cache-off, loudly).
  static Result<std::unique_ptr<WarmCache>> Open(
      const std::string& dir, WarmCacheOptions options = WarmCacheOptions());

  /// Drains pending appends (best effort), then joins the writer.
  ~WarmCache();

  WarmCache(const WarmCache&) = delete;
  WarmCache& operator=(const WarmCache&) = delete;

  /// Inserts a proven winner (in memory, deduplicated) and queues its disk
  /// append. Never blocks on disk unless options.synchronous_appends.
  void Publish(const Entry& entry);

  /// Draws everything relevant to `fp`: exact matches (bound-eligible under
  /// the semantics rule — pass the drawing solve's semantics), plus every
  /// same-dataset entry with a mismatched problem fingerprint, demoted to a
  /// candidate. Entries from other datasets never surface (their weight
  /// vectors would not even be dimension-compatible).
  Draw DrawFor(const ProblemFingerprint& fp, bool gap_semantics);

  /// Bumped on every Publish that added or refreshed an entry; sessions
  /// skip re-drawing an unchanged cache for an unchanged fingerprint.
  uint64_t generation() const;

  /// Blocks until every queued append is on disk (tests, clean shutdown).
  void Flush();

  WarmCacheStats Stats() const;
  const std::string& path() const { return path_; }

 private:
  WarmCache(int fd, std::string path, WarmCacheOptions options);

  /// In-memory insert/refresh; true when the caller should append to disk.
  bool InsertLocked(const Entry& entry);
  void WriterLoop();
  void AppendBatch(const std::vector<std::string>& records);

  std::string path_;
  WarmCacheOptions options_;

  mutable std::mutex mu_;
  /// dataset_fp -> entries over that dataset (exact + demotable together;
  /// DrawFor splits by problem_fp). Insertion order is preserved per key.
  std::map<uint64_t, std::vector<Entry>> by_dataset_;
  /// Oldest-first key order for whole-group eviction at the resident cap.
  std::deque<uint64_t> key_order_;
  int resident_ = 0;
  uint64_t generation_ = 0;
  WarmCacheStats stats_;

  // Writer thread state (its own lock so Publish never waits on disk).
  mutable std::mutex write_mu_;
  std::condition_variable write_cv_;
  std::condition_variable drained_cv_;
  std::deque<std::string> write_queue_;
  bool writer_stop_ = false;
  bool writer_busy_ = false;
  int64_t appended_ = 0;
  int fd_ = -1;
  bool degraded_ = false;
  std::thread writer_;
};

}  // namespace rankhow

#endif  // RANKHOW_CORE_WARM_CACHE_H_
