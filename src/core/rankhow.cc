#include "core/rankhow.h"

#include <algorithm>
#include <cmath>

#include "core/indicator_fixing.h"
#include "data/kernels.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace rankhow {

namespace {

/// True-semantics evaluation of a weight vector against a compiled model:
/// δ taken as "beats under the tie tolerance ε" (diff > ε), position ranges
/// checked, Equation-(2) objective returned. This is what the paper's
/// verification measures, and it is a *sound incumbent source* for pruning
/// the MILP: any MILP-feasible point has every pair diff outside (ε₂, ε₁),
/// where ε₂ <= ε < ε₁, so its MILP objective coincides with its true error —
/// a node bound at or above a true-error incumbent cannot hide a better
/// MILP-feasible solution. (Unlike the strict (ε₂, ε₁)-gap test, this never
/// rejects LP-vertex weights whose binding rows sit a rounding error inside
/// the gap.)
std::optional<long> EvaluateOnModel(const OptProblem& problem,
                                    const OptModel& model,
                                    const std::vector<double>& w,
                                    std::vector<double>* values_out) {
  const Dataset& data = *problem.data;
  const int m = data.num_attributes();
  const double tie_eps = problem.eps.tie_eps;
  // The predicate P is as hard as the order constraints: an incumbent
  // violating it would steer pruning toward an infeasible "solution".
  if (!problem.constraints.IsSatisfied(w, 1e-7)) return std::nullopt;
  if (values_out != nullptr) {
    values_out->assign(model.milp.lp().num_variables(), 0.0);
    for (int a = 0; a < m; ++a) (*values_out)[model.weight_vars[a]] = w[a];
  }
  // Batched kernel scoring into a thread-local buffer: this evaluator runs
  // once per LP vertex / sweep candidate, so the steady state should not
  // allocate.
  static thread_local std::vector<double> scores;
  scores.resize(data.num_tuples());
  kernels::BatchScores(data, w, scores.data());
  // Order constraints are hard: reject weights that break them (allow LP
  // rounding slack).
  for (const PairwiseOrderConstraint& oc : problem.order_constraints) {
    if (scores[oc.above] - scores[oc.below] <= tie_eps) return std::nullopt;
  }
  for (const OptModel::TupleGroup& group : model.groups) {
    long beats = group.fixed_one;
    for (const auto& [s, delta_var] : group.delta_vars) {
      if (scores[s] - scores[group.tuple] > tie_eps) {
        ++beats;
        if (values_out != nullptr) (*values_out)[delta_var] = 1.0;
      }
    }
    // Position-range side constraints are hard: reject violating weights.
    for (const PositionConstraint& pc : problem.position_constraints) {
      if (pc.tuple != group.tuple) continue;
      long position = beats + 1;
      if (position < pc.min_position || position > pc.max_position) {
        return std::nullopt;
      }
    }
    if (group.error_var >= 0) {
      // The error VARIABLE is unweighted; the objective row carries the
      // position penalty as its coefficient.
      long err = std::labs(static_cast<long>(group.given_position) - 1 -
                           beats);
      if (values_out != nullptr) {
        (*values_out)[group.error_var] = static_cast<double>(err);
      }
    }
  }
  // The objective value itself comes from the single authority so every
  // kind (position error, weighted, inversions) is priced identically here,
  // in presolve, and in the spatial search.
  return ObjectiveOfScores(data, *problem.given, scores, tie_eps,
                           problem.objective);
}

}  // namespace

const char* SolveStrategyName(SolveStrategy strategy) {
  switch (strategy) {
    case SolveStrategy::kAuto:
      return "auto";
    case SolveStrategy::kIndicatorMilp:
      return "indicator-milp";
    case SolveStrategy::kSpatial:
      return "spatial";
    case SolveStrategy::kSatBinarySearch:
      return "sat-binary-search";
  }
  return "unknown";
}

RankHow::RankHow(const Dataset& data, const Ranking& given,
                 RankHowOptions options)
    : data_(data), given_(given), options_(std::move(options)) {
  problem_.data = &data_;
  problem_.given = &given_;
  problem_.eps = options_.eps;
}

std::optional<long> RankHow::MilpConsistentError(
    const std::vector<double>& weights) const {
  const int m = data_.num_attributes();
  RH_CHECK(static_cast<int>(weights.size()) == m);
  if (!problem_.constraints.IsSatisfied(weights, 1e-9)) return std::nullopt;
  for (const PairwiseOrderConstraint& oc : problem_.order_constraints) {
    double diff = 0;
    for (int a = 0; a < m; ++a) {
      diff += weights[a] * (data_.value(oc.above, a) - data_.value(oc.below, a));
    }
    if (diff < problem_.eps.eps1) return std::nullopt;
  }
  // All ranked tuples plus position-constrained extras, straight from the
  // problem semantics (no compiled model needed).
  std::vector<int> tuples = given_.ranked_tuples();
  for (const PositionConstraint& pc : problem_.position_constraints) {
    if (!given_.IsRanked(pc.tuple)) tuples.push_back(pc.tuple);
  }
  const RankingObjectiveSpec& spec = problem_.objective;
  long total_error = 0;
  for (int r : tuples) {
    long beats = 0;
    for (int s = 0; s < data_.num_tuples(); ++s) {
      if (s == r) continue;
      double diff = 0;
      for (int a = 0; a < m; ++a) {
        diff += weights[a] * (data_.value(s, a) - data_.value(r, a));
      }
      if (diff >= problem_.eps.eps1) {
        ++beats;
      } else if (diff > problem_.eps.eps2) {
        return std::nullopt;
      }
    }
    for (const PositionConstraint& pc : problem_.position_constraints) {
      if (pc.tuple != r) continue;
      long position = beats + 1;
      if (position < pc.min_position || position > pc.max_position) {
        return std::nullopt;
      }
    }
    if (given_.IsRanked(r) && spec.kind != ObjectiveKind::kInversions) {
      total_error += spec.PenaltyAt(given_.position(r)) *
                     std::labs(static_cast<long>(given_.position(r)) - 1 -
                               beats);
    }
  }
  if (spec.kind == ObjectiveKind::kInversions) {
    // Discordant ranked pairs under the gap semantics (every ranked pair was
    // already certified outside the (ε₂, ε₁) gap by the loop above).
    const std::vector<int>& ranked = given_.ranked_tuples();
    for (size_t i = 0; i < ranked.size(); ++i) {
      for (size_t j = i + 1; j < ranked.size(); ++j) {
        int a = ranked[i];
        int b = ranked[j];
        if (given_.position(a) == given_.position(b)) continue;
        if (given_.position(a) > given_.position(b)) std::swap(a, b);
        double diff = 0;
        for (int attr = 0; attr < m; ++attr) {
          diff += weights[attr] * (data_.value(b, attr) - data_.value(a, attr));
        }
        if (diff >= problem_.eps.eps1) ++total_error;
      }
    }
  }
  return total_error;
}

Result<RankHowResult> RankHow::Solve(
    const std::vector<double>* initial_weights) const {
  return SolveInBox(WeightBox::FullSimplex(data_.num_attributes()),
                    initial_weights);
}

PresolveOptions ClampedPresolveOptions(const RankHowOptions& options,
                                       const Deadline& deadline) {
  PresolveOptions presolve = options.presolve;
  if (deadline.HasBudget()) {
    presolve.time_budget_seconds =
        std::min(presolve.time_budget_seconds,
                 0.25 * options.time_limit_seconds);
  }
  return presolve;
}

BoxFeasibilityOracle* EnsureWarmBoxOracle(
    const OptProblem& problem, const RankHowOptions& options,
    std::unique_ptr<BoxFeasibilityOracle>* slot) {
  if (!options.use_warm_start ||
      ThreadPool::ResolveThreadCount(options.num_threads) != 1) {
    return nullptr;  // parallel workers compile their own oracles
  }
  if (*slot == nullptr ||
      (*slot)->constraints_revision() != problem.constraints.revision()) {
    *slot = std::make_unique<BoxFeasibilityOracle>(
        problem.data->num_attributes(), problem.constraints);
  }
  return slot->get();
}

SolveStrategy ResolveSolveStrategy(const OptProblem& problem,
                                   const RankHowOptions& options,
                                   const WeightBox& box) {
  if (options.strategy != SolveStrategy::kAuto) return options.strategy;
  (void)box;
  // The spatial bound covers position-error objectives only.
  if (problem.objective.kind == ObjectiveKind::kInversions) {
    return SolveStrategy::kIndicatorMilp;
  }
  const int m = problem.data->num_attributes();
  // Spatial subdivision scales with the weight-space dimension; the MILP
  // scales with the indicator count. Crossover measured in bench_ablations.
  const long pairs = static_cast<long>(problem.given->ranked_tuples().size()) *
                     std::max(1, problem.data->num_tuples() - 1);
  if (m <= 5 && pairs <= 100000) return SolveStrategy::kSpatial;
  return SolveStrategy::kIndicatorMilp;
}

Result<RankHowResult> RankHow::SolveInBox(
    const WeightBox& box, const std::vector<double>* initial_weights) const {
  WallTimer timer;
  Deadline deadline(options_.time_limit_seconds);

  // Warm start: the caller's weights when given (SYM-GD's iterate),
  // otherwise the multi-start presolve winner.
  std::vector<double> warm;
  if (initial_weights != nullptr) {
    warm = *initial_weights;
  } else if (options_.use_presolve) {
    auto pre = PresolveIncumbent(problem_, box,
                                 ClampedPresolveOptions(options_, deadline));
    if (pre.ok() && pre->found()) warm = std::move(pre->weights);
    // Presolve failure is non-fatal: the exact search runs cold.
  }

  SolveStrategy strategy = ResolveSolveStrategy(problem_, options_, box);
  ExactSolveSeed seed;
  seed.warm_weights = std::move(warm);
  RankHowResult result;
  if (strategy == SolveStrategy::kSpatial) {
    // One warm P-feasibility oracle across every spatial solve this RankHow
    // (and its SYM-GD copies) issues; see box_oracle_slot_.
    seed.box_oracle =
        EnsureWarmBoxOracle(problem_, options_, &box_oracle_slot_->oracle);
    RH_ASSIGN_OR_RETURN(
        result, SolveOptSpatial(problem_, options_, box, seed, deadline));
  } else {
    RH_ASSIGN_OR_RETURN(
        OptModel model,
        BuildOptModel(problem_, box, options_.use_indicator_fixing,
                      options_.use_strengthening_cuts,
                      options_.use_tight_big_m));
    if (strategy == SolveStrategy::kSatBinarySearch) {
      RH_ASSIGN_OR_RETURN(
          result, SolveOptModelSat(problem_, options_, model, seed, deadline));
    } else {
      RH_ASSIGN_OR_RETURN(
          result, SolveOptModelMilp(problem_, options_, model, seed,
                                    deadline));
    }
  }
  result.strategy_used = strategy;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

Result<RankHowResult> SolveOptSpatial(const OptProblem& problem,
                                      const RankHowOptions& options,
                                      const WeightBox& box,
                                      const ExactSolveSeed& seed,
                                      const Deadline& deadline) {
  SpatialBnbOptions spatial_options;
  spatial_options.time_limit_seconds = deadline.RemainingOrZero();
  spatial_options.max_boxes = options.max_nodes;
  spatial_options.use_warm_start = options.use_warm_start;
  spatial_options.num_threads = options.num_threads;
  spatial_options.initial_weights = seed.warm_weights;
  spatial_options.external_lower_bound = std::max(0L, seed.lower_bound);
  spatial_options.cancel = options.cancel;
  SpatialBnb spatial(problem, spatial_options);
  if (seed.box_oracle != nullptr) spatial.SetOracle(seed.box_oracle);
  RH_ASSIGN_OR_RETURN(SpatialBnbResult sres, spatial.Solve(box));

  RankHowResult result;
  result.function =
      ScoringFunction::FromWeights(*problem.data, sres.weights);
  result.claimed_error = sres.error;
  result.error = sres.error;
  result.bound = sres.bound;
  result.proven_optimal = sres.proven_optimal;
  result.stats.nodes_explored = sres.stats.boxes_explored;
  result.stats.incumbent_updates = sres.stats.incumbent_updates;
  result.stats.lp_iterations = sres.stats.lp_pivots;
  result.stats.lp_warm_solves = sres.stats.lp_warm_solves;
  result.stats.lp_cold_solves = sres.stats.lp_cold_solves;
  result.stats.seconds = sres.stats.seconds;

  // Indicator accounting at the root box, for parity with the MILP path
  // (SYM-GD sums these across iterations).
  auto fixing =
      ComputeIndicatorFixing(*problem.data, problem.given->ranked_tuples(),
                             problem.constraints.TightenBox(box),
                             problem.eps.eps1, problem.eps.eps2);
  if (fixing.ok()) {
    result.num_free_indicators = fixing->total_free;
    result.num_fixed_indicators =
        fixing->total_fixed_one + fixing->total_fixed_zero;
  }

  if (options.verify) {
    RH_ASSIGN_OR_RETURN(
        VerificationReport report,
        VerifySolutionObjective(*problem.data, *problem.given,
                                result.function.weights,
                                problem.eps.tie_eps, result.claimed_error,
                                problem.objective));
    result.error = report.exact_error;
    result.verification = std::move(report);
  }
  return result;
}

Result<RankHowResult> SolveOptModelSat(const OptProblem& problem,
                                       const RankHowOptions& options,
                                       const OptModel& model,
                                       const ExactSolveSeed& seed,
                                       const Deadline& deadline) {
  // Equation (2)'s objective expression, reused as a budget row
  // `objective <= E` inside each satisfiability probe (Sec. III-A: "convert
  // the optimization problem to a series of satisfiability problems,
  // performing binary search to find the smallest error value for which a
  // satisfying assignment can be found").
  const LinearExpr objective = model.milp.lp().objective();

  RankHowResult result;
  long hi = -1;  // best error known achievable (-1 = none yet)
  std::vector<double> best_values;

  // `budget == nullopt` is the bootstrap probe: any feasible assignment.
  auto run_probe =
      [&](std::optional<long> budget) -> Result<BnbResult> {
    MilpModel probe = model.milp;
    probe.lp().SetObjective(LinearExpr(), ObjectiveSense::kMinimize);
    if (budget.has_value()) {
      probe.lp().AddConstraint(objective, RelOp::kLe,
                               static_cast<double>(*budget), "sat_budget");
    }
    BnbOptions bnb_options;
    bnb_options.time_limit_seconds = deadline.RemainingOrZero();
    bnb_options.max_nodes = options.max_nodes;
    bnb_options.objective_is_integral = true;
    bnb_options.lazy_separation = options.use_lazy_separation;
    bnb_options.use_warm_start = options.use_warm_start;
    bnb_options.num_threads = options.num_threads;
    bnb_options.cancel = options.cancel;
    bnb_options.lp_options = options.lp_options;
    BranchAndBound solver(bnb_options);
    if (options.use_primal_heuristic) {
      solver.SetPrimalHeuristic(
          [&problem, &model, &objective, budget](
              const std::vector<double>& lp_values)
              -> std::optional<PrimalCandidate> {
            std::vector<double> w = model.ExtractWeights(lp_values);
            std::vector<double> values;
            auto err = EvaluateOnModel(problem, model, w, &values);
            if (!err.has_value()) return std::nullopt;
            // The candidate must satisfy the probe's budget row; check the
            // row itself so weighted and inversion objectives price alike.
            if (budget.has_value() &&
                objective.Evaluate(values) >
                    static_cast<double>(*budget) + 0.5) {
              return std::nullopt;
            }
            // Probes minimize 0, so any feasible candidate closes the gap.
            return PrimalCandidate{0.0, std::move(values)};
          });
    }
    return solver.Solve(probe);
  };

  // Accepts a probe's assignment as the new upper bound. The true error of
  // the extracted weights is the sound value (same authority as the MILP
  // path's incumbents); the probe budget caps it for MILP-feasible output.
  auto absorb = [&](const BnbResult& bnb, std::optional<long> budget) {
    result.stats.nodes_explored += bnb.stats.nodes_explored;
    result.stats.lp_iterations += bnb.stats.lp_iterations;
    result.stats.lazy_rounds += bnb.stats.lazy_rounds;
    std::vector<double> w = model.ExtractWeights(bnb.values);
    std::vector<double> values;
    auto err = EvaluateOnModel(problem, model, w, &values);
    long achieved;
    if (err.has_value()) {
      achieved = *err;
      if (budget.has_value()) achieved = std::min(achieved, *budget);
    } else if (budget.has_value()) {
      achieved = *budget;
      values = bnb.values;
    } else {
      achieved = std::llround(objective.Evaluate(bnb.values));
      values = bnb.values;
    }
    if (hi < 0 || achieved < hi) {
      hi = achieved;
      best_values = std::move(values);
      ++result.stats.incumbent_updates;
    }
  };

  // Upper bound from the warm start (presolve winner, SYM-GD iterate, or a
  // session's revalidated pool incumbent).
  if (!seed.warm_weights.empty()) {
    std::vector<double> values;
    auto err = EvaluateOnModel(problem, model, seed.warm_weights, &values);
    if (err.has_value()) {
      hi = *err;
      best_values = std::move(values);
    }
  }
  // Cold start: one unconstrained feasibility probe. kInfeasible here means
  // the OPT instance itself (P ∧ gap semantics) is infeasible — propagate.
  if (hi < 0) {
    RH_ASSIGN_OR_RETURN(BnbResult bnb, run_probe(std::nullopt));
    ++result.sat_probes;
    absorb(bnb, std::nullopt);
  }

  // An externally proven lower bound (session reuse) skips the probes that
  // would re-establish it; lo == hi closes the search without any probe.
  long lo = std::max(0L, seed.lower_bound);
  bool undecided = false;
  while (lo < hi && !deadline.Expired() &&
         !(options.cancel != nullptr &&
           options.cancel->load(std::memory_order_relaxed))) {
    const long mid = lo + (hi - lo) / 2;
    Result<BnbResult> bnb = run_probe(mid);
    ++result.sat_probes;
    if (bnb.ok()) {
      absorb(*bnb, mid);
    } else if (bnb.status().code() == StatusCode::kInfeasible) {
      lo = mid + 1;
    } else if (bnb.status().code() == StatusCode::kResourceExhausted) {
      undecided = true;  // probe ran out of budget before deciding mid
      break;
    } else {
      return bnb.status();
    }
  }

  result.function = ScoringFunction::FromWeights(
      *problem.data, model.ExtractWeights(best_values));
  result.claimed_error = hi;
  result.error = hi;
  result.bound = std::min(lo, hi);
  result.proven_optimal = !undecided && lo >= hi;
  result.num_free_indicators = model.num_free_indicators;
  result.num_fixed_indicators = model.num_fixed_indicators;

  if (options.verify) {
    RH_ASSIGN_OR_RETURN(
        VerificationReport report,
        VerifySolutionObjective(*problem.data, *problem.given,
                                result.function.weights,
                                problem.eps.tie_eps, result.claimed_error,
                                problem.objective));
    result.error = report.exact_error;
    result.verification = std::move(report);
  }
  return result;
}

Result<RankHowResult> SolveOptModelMilp(const OptProblem& problem,
                                        const RankHowOptions& options,
                                        const OptModel& model,
                                        const ExactSolveSeed& seed,
                                        const Deadline& deadline) {
  BnbOptions bnb_options;
  bnb_options.time_limit_seconds = deadline.RemainingOrZero();
  bnb_options.max_nodes = options.max_nodes;
  bnb_options.objective_is_integral = true;
  bnb_options.lazy_separation = options.use_lazy_separation;
  bnb_options.use_warm_start = options.use_warm_start;
  bnb_options.num_threads = options.num_threads;
  bnb_options.cancel = options.cancel;
  bnb_options.lp_options = options.lp_options;
  if (seed.lower_bound >= 0) {
    bnb_options.external_lower_bound = static_cast<double>(seed.lower_bound);
  }

  // Warm start from caller-provided weights (SYM-GD passes the previous
  // iterate; a session passes its best revalidated pool incumbent; benches
  // can pass a regression seed).
  if (!seed.warm_weights.empty()) {
    std::vector<double> values;
    auto err = EvaluateOnModel(problem, model, seed.warm_weights, &values);
    if (err.has_value()) {
      bnb_options.initial_incumbent = static_cast<double>(*err);
      bnb_options.initial_values = std::move(values);
    }
  }

  BranchAndBound solver(bnb_options);
  if (options.use_primal_heuristic) {
    solver.SetPrimalHeuristic(
        [&problem, &model](const std::vector<double>& lp_values)
            -> std::optional<PrimalCandidate> {
          std::vector<double> w = model.ExtractWeights(lp_values);
          std::vector<double> values;
          auto err = EvaluateOnModel(problem, model, w, &values);
          if (!err.has_value()) return std::nullopt;
          return PrimalCandidate{static_cast<double>(*err),
                                 std::move(values)};
        });
  }

  RH_ASSIGN_OR_RETURN(BnbResult bnb, solver.Solve(model.milp));

  RankHowResult result;
  result.function =
      ScoringFunction::FromWeights(*problem.data,
                                   model.ExtractWeights(bnb.values));
  result.claimed_error = std::llround(bnb.objective);
  result.error = result.claimed_error;
  result.bound = static_cast<long>(
      std::ceil(std::max(0.0, bnb.best_bound) - 1e-6));
  result.proven_optimal = bnb.proven_optimal;
  result.stats = bnb.stats;
  result.num_free_indicators = model.num_free_indicators;
  result.num_fixed_indicators = model.num_fixed_indicators;

  if (options.verify) {
    RH_ASSIGN_OR_RETURN(
        VerificationReport report,
        VerifySolutionObjective(*problem.data, *problem.given,
                                result.function.weights,
                                problem.eps.tie_eps, result.claimed_error,
                                problem.objective));
    result.error = report.exact_error;
    result.verification = std::move(report);
  }
  return result;
}

}  // namespace rankhow
