#ifndef RANKHOW_CORE_ARRANGEMENT_H_
#define RANKHOW_CORE_ARRANGEMENT_H_

/// \file arrangement.h
/// The weight-space geometry behind Figures 1 and 2 of the paper: for
/// m = 3, the set of weight vectors is the 2-simplex {Σw = 1, w >= 0}, and
/// each tuple pair (s, r) contributes an indicator boundary — the line
/// {w : w·d(s,r) = level} — whose cells are the regions where δ_sr is
/// constant. TieBoundarySegments computes those lines clipped to the
/// simplex so the figures can be regenerated (see tools/arrangement_dump).
/// ErrorField samples the position error over the simplex (the "terrain"
/// SYM-GD descends).

#include <array>
#include <vector>

#include "core/opt_problem.h"
#include "data/dataset.h"
#include "ranking/objective.h"
#include "ranking/ranking.h"
#include "util/status.h"

namespace rankhow {

/// One indicator boundary {w on the 2-simplex : w·d(s,r) = level}, clipped
/// to the simplex. Endpoints are barycentric weight vectors (w1, w2, w3).
struct SimplexSegment {
  std::array<double, 3> a{};
  std::array<double, 3> b{};
  int s = -1;
  int r = -1;
  /// The hyperplane level (0 for the Definition-2 tie boundary, ε₁/ε₂ for
  /// the Equation-(2) indicator thresholds of Fig. 2).
  double level = 0;
};

/// Computes the boundary segment of every ordered pair (s, r) with
/// s, r ∈ `tuples`, s ≠ r, s < r (the line for (r, s) is the same set of
/// points at level 0 and the mirrored level otherwise). Pairs whose
/// hyperplane misses the simplex (e.g. s dominates r — the Example-5 case
/// where the boundary only touches a corner) produce no segment, or a
/// degenerate zero-length one when it touches exactly a corner.
///
/// Requires a 3-attribute dataset (kInvalidArgument otherwise).
Result<std::vector<SimplexSegment>> TieBoundarySegments(
    const Dataset& data, const std::vector<int>& tuples, double level = 0.0);

/// One sample of the error terrain over the simplex.
struct ErrorSample {
  std::array<double, 3> w{};
  long error = 0;
};

/// Samples the Definition-3 position error (or any objective) on a regular
/// barycentric grid with `resolution` subdivisions per side — the scalar
/// field whose cell structure Figure 1 illustrates and whose local minima
/// SYM-GD finds. Requires m == 3.
Result<std::vector<ErrorSample>> ErrorField(
    const Dataset& data, const Ranking& given, int resolution,
    double tie_eps = 0.0,
    const RankingObjectiveSpec& spec = RankingObjectiveSpec{});

}  // namespace rankhow

#endif  // RANKHOW_CORE_ARRANGEMENT_H_
