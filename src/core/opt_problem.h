#ifndef RANKHOW_CORE_OPT_PROBLEM_H_
#define RANKHOW_CORE_OPT_PROBLEM_H_

/// \file opt_problem.h
/// The OPT problem instance (Definition 4): a dataset, a given ranking π, a
/// weight predicate P, the numerical-gap parameters (ε, ε₁, ε₂), and the
/// optional rank-position side constraints of Example 1.

#include <limits>
#include <vector>

#include "ranking/objective.h"
#include "core/weight_constraints.h"
#include "data/dataset.h"
#include "ranking/ranking.h"

namespace rankhow {

/// The ε machinery of Definition 2 and Section V-A.
struct EpsilonConfig {
  /// ε of Definition 2: tie tolerance used when *evaluating/verifying* a
  /// score-based ranking (two scores within ε tie).
  double tie_eps = 0.0;
  /// ε₁ of Equation (2): δ = 1 requires f(s) − f(r) >= ε₁.
  double eps1 = 1e-9;
  /// ε₂ of Equation (2): δ = 0 requires f(s) − f(r) <= ε₂.
  double eps2 = 0.0;

  /// Lemma 2/3 sanity: ε₂ < ε₁ and ε₂ <= ε < ε₁ (so verified indicator
  /// values are consistent with the ε-tie semantics).
  bool Valid() const {
    return eps2 < eps1 && eps2 <= tie_eps && tie_eps < eps1;
  }
};

/// "Tuple X must be placed between positions lo and hi" (Example 1: the
/// number-1 player must stay at position 1; every top-100 player within
/// ±10% of its position).
struct PositionConstraint {
  int tuple = -1;
  int min_position = 1;
  int max_position = std::numeric_limits<int>::max();
};

/// "Tuple `above` must outscore tuple `below`" (Example 1: Jokić above
/// Tatum). Compiled as the linear weight constraint w·(above−below) >= ε₁,
/// so it needs no indicator variables.
struct PairwiseOrderConstraint {
  int above = -1;
  int below = -1;
};

/// Example 1's relative band constraint, as a batch: "for all tuples ranked
/// 1 to `limit`, a tuple ranked i-th in the given ranking must be ranked in
/// range ⌊lo_frac·i⌋ to ⌈hi_frac·i⌉" (lower bounds clamp to 1). Appends one
/// PositionConstraint per affected tuple.
///
/// Errors: kInvalidArgument when the fractions are non-positive or
/// lo_frac > hi_frac.
Status AppendRelativePositionBand(const Ranking& given, double lo_frac,
                                  double hi_frac, int limit,
                                  std::vector<PositionConstraint>* out);

/// A full OPT instance. Non-owning views: dataset and ranking must outlive
/// the problem.
struct OptProblem {
  const Dataset* data = nullptr;
  const Ranking* given = nullptr;
  WeightConstraintSet constraints;  // the predicate P
  EpsilonConfig eps;
  /// What to minimize (Definition 3 by default; Sec. I's inversion-based
  /// and top-weighted variants are selectable).
  RankingObjectiveSpec objective;
  std::vector<PositionConstraint> position_constraints;
  std::vector<PairwiseOrderConstraint> order_constraints;

  /// Structural validation (sizes, ε ordering, constraint tuple ids).
  Status Validate() const;
};

}  // namespace rankhow

#endif  // RANKHOW_CORE_OPT_PROBLEM_H_
