#ifndef RANKHOW_CORE_SOLVE_SESSION_H_
#define RANKHOW_CORE_SOLVE_SESSION_H_

/// \file solve_session.h
/// The persistent cross-query solver layer: one SolveSession serves a
/// *sequence* of OPT queries that differ by deltas — add/remove/tighten a
/// weight constraint, add an order or position constraint, change ε or the
/// objective, append tuples — reusing everything the previous queries paid
/// for instead of rebuilding the world per RankHow::Solve():
///
///  * **Model cache** — the compiled Equation-(2) MILP survives across
///    solves; constraint-add edits patch it in place (one appended LP row,
///    every existing variable/row id stable — see AppendWeightConstraintRow)
///    and only structural edits (ε, objective, tuples, removals) trigger a
///    full BuildOptModel recompile.
///  * **Incumbent pool** — every solve's winning weight vector (plus the
///    presolve winner that seeded it) is pooled; the next solve re-validates
///    the pool against the edited problem (presolve.h's
///    RevalidateIncumbents) instead of multi-starting cold. A tightening
///    edit keeps many entries feasible; a relaxing edit keeps all of them.
///  * **Bound reuse** — after a constraints-only *tightening* edit, the
///    feasible set shrank while the objective is unchanged, so the previous
///    solve's proven optimum is a valid lower bound on the new optimum. The
///    session seeds it into the exact search (BnbOptions /
///    SpatialBnbOptions external_lower_bound, the SAT search's initial lo);
///    when a pooled incumbent still meets it, the search closes at the root
///    with zero nodes. Any relaxing or structural edit invalidates the
///    bound (the pool is still reused).
///  * **Warm spatial oracle** — serial spatial re-solves share one
///    BoxFeasibilityOracle across queries (rebuilt on constraint-set
///    revision change), so adjacent queries resolve their box-feasibility
///    LPs from each other's bases.
///
/// Soundness rules (the "incumbent-pool soundness" contract; see DESIGN.md
/// "Session architecture"):
///  * Pool entries are *candidates*, never bounds: each is re-evaluated
///    under the current problem before use, so stale entries cost time,
///    never correctness.
///  * The reused lower bound must compare like semantics with like: the
///    spatial strategy proves the true ε-tie optimum while the MILP/SAT
///    strategies prove the (ε₂, ε₁)-gap optimum, which the true optimum
///    never exceeds. A spatial bound therefore also seeds a MILP/SAT
///    re-solve, but not the other way around.
///  * Edits must go through the edit API below. Mutating problem() behind
///    the session's back would desynchronize the caches; problem() is
///    exposed read-only.
///
/// Typical use (the Sec. I RankHow scenario):
///   SolveSession session(data, given, options);
///   auto r0 = session.Solve();                       // cold
///   session.AddWeightConstraint({{{pts, 1.0}}, RelOp::kGe, 0.1, "min_PTS"});
///   auto r1 = session.Solve();                       // patched + warm
///   session.RemoveWeightConstraint("min_PTS");
///   auto r2 = session.Solve();                       // rebuilt, pool warm

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/opt_model_builder.h"
#include "core/opt_problem.h"
#include "core/rankhow.h"
#include "core/shared_incumbent_pool.h"
#include "core/warm_cache.h"
#include "data/dataset.h"
#include "data/shared_dataset.h"
#include "ranking/ranking.h"
#include "ranking/shared_ranking.h"
#include "util/status.h"

namespace rankhow {

/// Reuse accounting for one session (cumulative across its solves).
struct SolveSessionStats {
  int64_t solves = 0;
  /// Full BuildOptModel compilations (first solve + structural edits).
  int64_t model_builds = 0;
  /// Delta row appends on the cached model (constraint-add edits).
  int64_t model_patches = 0;
  /// Cold multi-start presolves (first solve + pool wipe-outs).
  int64_t presolve_runs = 0;
  /// Pool revalidation passes that produced a warm incumbent.
  int64_t pool_hits = 0;
  /// Solves entered with a reusable proven lower bound.
  int64_t bound_seeds = 0;
  /// Pool-overflow evictions (dominated-entry policy; see DESIGN.md).
  int64_t pool_evictions = 0;
  /// Copy-on-write dataset forks this session triggered (AppendTuple on a
  /// snapshot shared with sibling sessions).
  int64_t dataset_forks = 0;
  /// Cross-client pool entries drawn from the attached SharedIncumbentPool
  /// (each is one extra revalidation candidate; see shared_incumbent_pool.h).
  int64_t shared_draws = 0;
  /// Proven winners this session published into the shared pool.
  int64_t shared_publishes = 0;
  /// Pure-ε edits absorbed as in-place rhs patches on the cached model
  /// (vs the full recompile they used to force; see PatchEpsilonInPlace).
  int64_t eps_patches = 0;
  /// Warm-cache draws that found >= 1 exact-fingerprint entry / none.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  /// Cache entries demoted to revalidation candidates on fingerprint
  /// mismatch (never bounds — the warm-cache soundness rule).
  int64_t cache_demotions = 0;
  /// Proven winners written through to the persistent warm cache.
  int64_t cache_publishes = 0;
  /// Solves whose external lower bound came from an exact-fingerprint
  /// cache entry (tighten-only; semantics-checked like bound_seeds).
  int64_t cache_bound_seeds = 0;
  /// Private ranking copies this session made (Reset on a shared snapshot).
  int64_t ranking_forks = 0;
};

/// The per-query delta classes (see DESIGN.md "Session architecture").
enum class SessionDeltaKind {
  /// Feasible set shrank, objective unchanged: previous proven optimum
  /// stays a lower bound; pool entries re-validate individually.
  kTighten,
  /// Feasible set grew, objective unchanged: every pool entry stays
  /// feasible (upper bounds); the previous lower bound is void.
  kRelax,
  /// Objective or instance changed (ε, objective spec, appended tuples):
  /// bounds void, model recompiled, pool entries re-validate individually.
  kStructural,
};

/// A long-lived solver session over one dataset + given ranking. Both are
/// held through copy-on-write handles: sessions constructed from the same
/// SharedDataset/SharedRanking handles read one immutable snapshot each,
/// and the edits that mutate them (AppendTuple) fork private copies only
/// for the editing session (the server's many-clients-few-datasets shape;
/// see DESIGN.md "Server architecture"). Not thread-safe — run concurrent
/// sessions on separate instances (see SessionRegistry / rankhow_cli's
/// batch mode); each solve may still use options.num_threads workers
/// internally.
class SolveSession {
 public:
  /// Wraps the dataset into a fresh private snapshot (the pre-server
  /// single-session constructor; nothing shares until the caller copies
  /// shared_data()).
  SolveSession(Dataset data, Ranking given,
               RankHowOptions options = RankHowOptions());
  /// Shares the dataset handle's snapshot; the ranking gets a fresh
  /// private snapshot.
  SolveSession(SharedDataset data, Ranking given,
               RankHowOptions options = RankHowOptions());
  /// Shares both snapshots with every other session holding the handles
  /// (the registry path: K sessions on one dataset + one given ranking
  /// hold one physical copy of each).
  SolveSession(SharedDataset data, SharedRanking given,
               RankHowOptions options = RankHowOptions());

  /// Not movable/copyable: problem_ holds pointers into the owned dataset
  /// and ranking. Heap-allocate (see rankhow_cli) to pass sessions around.
  SolveSession(const SolveSession&) = delete;
  SolveSession& operator=(const SolveSession&) = delete;

  // ------------------------------------------------------------- queries
  const OptProblem& problem() const { return problem_; }
  const Dataset& data() const { return data_.get(); }
  /// The COW handle (copy it to share the snapshot with a new session).
  const SharedDataset& shared_data() const { return data_; }
  const Ranking& given() const { return given_.get(); }
  /// The COW ranking handle (copy it to share the snapshot).
  const SharedRanking& shared_given() const { return given_; }
  const SolveSessionStats& stats() const { return stats_; }
  /// The per-solve wall-clock budget (RankHowOptions::time_limit_seconds;
  /// 0 = unlimited). Mutable so per-request deadlines (the wire `deadline`
  /// verb) can narrow one solve and restore the configured limit after —
  /// a budget knob only, never a cache-invalidating edit.
  double time_limit_seconds() const { return options_.time_limit_seconds; }
  void set_time_limit_seconds(double seconds) {
    options_.time_limit_seconds = seconds;
  }
  size_t incumbent_pool_size() const { return pool_.size(); }
  /// Recorded true errors of the pooled incumbents, most recent first
  /// (diagnostics; the eviction regression test reads this).
  std::vector<long> incumbent_pool_errors() const;

  /// Attaches the registry-level cross-client incumbent pool (non-owning;
  /// must outlive the session; nullptr detaches). Every subsequent Solve
  /// draws the siblings' newly published winners as extra revalidation
  /// *candidates* — never bounds — and publishes its own proven winner
  /// back. The pool is internally locked; the session itself stays
  /// single-threaded.
  void SetSharedIncumbentPool(SharedIncumbentPool* pool) {
    shared_pool_ = pool;
  }

  /// Attaches the persistent warm-start cache (non-owning; must outlive
  /// the session; nullptr detaches). Every subsequent Solve fingerprints
  /// its problem and draws matching entries — exact matches join the
  /// revalidation pool and may seed a tighten-only external bound
  /// (semantics-checked), mismatches are demoted to candidates — and
  /// publishes its proven winner back (through the shared pool's
  /// write-through when one is attached, directly otherwise).
  void AttachWarmCache(WarmCache* cache) { warm_cache_ = cache; }

  // ------------------------------------------------------------- edits
  /// Adds a predicate-P constraint (kTighten; patches the cached model).
  Status AddWeightConstraint(WeightConstraint constraint);
  /// Removes every P constraint named `name` (kRelax; recompiles the model
  /// on the next solve). kNotFound when no constraint carries the name.
  Status RemoveWeightConstraint(const std::string& name);
  /// Adds "above must outscore below" (kTighten; patches the cached model).
  Status AddOrderConstraint(int above, int below);
  /// Adds a position-range constraint (kTighten). Structural when the tuple
  /// is unranked and new to the model (it needs indicator variables).
  Status AddPositionConstraint(PositionConstraint constraint);
  /// Changes the ε machinery (kStructural).
  Status SetEpsilon(const EpsilonConfig& eps);
  /// Changes the ranking objective (kStructural).
  Status SetObjective(const RankingObjectiveSpec& objective);
  /// Appends an unranked tuple — one value per attribute (kStructural:
  /// every ranked tuple gains an indicator pair against it). Returns the
  /// new tuple id through `id_out` when non-null.
  Status AppendTuple(const std::vector<double>& values, int* id_out = nullptr);

  // ------------------------------------------------------------- solving
  /// Solves the current problem state, reusing the session caches. The
  /// result is exactly what a fresh RankHow::Solve() of the same problem
  /// would prove (the session equivalence suite asserts this per edit
  /// step); only the work to get there shrinks.
  Result<RankHowResult> Solve();

 private:
  void NoteEdit(SessionDeltaKind kind);
  /// The cached-or-rebuilt compiled model for MILP/SAT strategies.
  Result<const OptModel*> EnsureModel();
  /// The canonical fingerprint of the current problem, with the expensive
  /// components cached (dataset hash until the instance changes, the
  /// constraint hash at WeightConstraintSet::revision() granularity).
  ProblemFingerprint CurrentFingerprint();

  SharedDataset data_;
  SharedRanking given_;
  RankHowOptions options_;
  OptProblem problem_;
  SolveSessionStats stats_;

  // Model cache (MILP/SAT strategies). `model_dirty_` forces a recompile;
  // `pending_patch_rows_` holds constraint-add deltas to apply in place.
  std::unique_ptr<OptModel> model_;
  bool model_dirty_ = true;
  std::vector<WeightConstraint> pending_weight_rows_;
  std::vector<PairwiseOrderConstraint> pending_order_rows_;

  // Incumbent pool: most recent first, capped at
  // options_.incumbent_pool_cap. Overflow evicts by domination, not
  // recency: entries that were a solve's winner ("optimal for some past
  // constraint set", per ROADMAP) outlive seed echoes, the lowest-error
  // anchor is never evicted (it re-warms deep relax edits), and among
  // redundant winners the one whose recorded error its neighbors already
  // cover goes first. See Remember/EvictOne in solve_session.cc.
  struct PoolEntry {
    std::vector<double> weights;
    /// True ε-tie objective when recorded; refreshed from the current
    /// problem during eviction (stale after structural edits until then).
    long error = -1;
    /// This entry was a solve's winning incumbent (vs a warm-seed echo).
    bool winner = false;
  };
  void Remember(const std::vector<double>& weights, bool winner,
                long known_error);
  void EvictOne();
  std::vector<PoolEntry> pool_;

  // Previous-solve snapshot for bound reuse.
  bool have_proven_ = false;
  long proven_optimum_ = -1;
  bool proven_true_semantics_ = false;  // spatial (true ε-tie) vs MILP gap
  bool bound_valid_ = true;  // false after any relax/structural edit

  // Serial spatial solves share one warm oracle across queries.
  std::unique_ptr<BoxFeasibilityOracle> box_oracle_;

  // Cross-client sharing (see shared_incumbent_pool.h): draws are
  // revision-checked through `shared_seen_seq_`, so an unchanged pool costs
  // one lock per solve and no entry is revalidated twice by one session.
  SharedIncumbentPool* shared_pool_ = nullptr;
  uint64_t shared_seen_seq_ = 0;

  // Persistent warm cache (see core/warm_cache.h). Draws are
  // generation-checked: an unchanged cache is not re-drawn for an
  // unchanged fingerprint (entries already drawn re-enter through the
  // session pool if they proved useful). `cache_bound_` is the external
  // lower bound drawn with the current fingerprint (-1 = none), valid for
  // exactly as long as the fingerprint it was drawn under.
  WarmCache* warm_cache_ = nullptr;
  uint64_t cached_dataset_fp_ = 0;
  bool have_dataset_fp_ = false;
  uint64_t cached_constraint_hash_ = 0;
  uint64_t cached_constraint_rev_ = 0;
  bool have_constraint_hash_ = false;
  bool cache_drawn_ = false;
  ProblemFingerprint cache_drawn_fp_;
  uint64_t cache_drawn_generation_ = 0;
  bool cache_drawn_gap_semantics_ = false;
  long cache_bound_ = -1;
};

}  // namespace rankhow

#endif  // RANKHOW_CORE_SOLVE_SESSION_H_
