#include "core/presolve.h"

#include <algorithm>
#include <cmath>

#include "core/seeding.h"
#include "data/kernels.h"
#include "ranking/objective.h"
#include "ranking/score_ranking.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace rankhow {

std::optional<long> EvaluateTrueError(const OptProblem& problem,
                                      const std::vector<double>& w) {
  const Dataset& data = *problem.data;
  const Ranking& given = *problem.given;
  const double tie_eps = problem.eps.tie_eps;
  if (!problem.constraints.IsSatisfied(w, 1e-7)) return std::nullopt;

  // This is the evaluation choke point of the whole solver — presolve,
  // incumbent revalidation, spatial B&B offers, and SYM-GD cell sweeps all
  // score through here, often millions of times. Batched kernel scoring
  // into thread-local buffers + one sort per weight vector keeps the steady
  // state allocation-free.
  static thread_local std::vector<double> scores;
  scores.resize(data.num_tuples());
  kernels::BatchScores(data, w, scores.data());
  for (const PairwiseOrderConstraint& oc : problem.order_constraints) {
    if (scores[oc.above] - scores[oc.below] <= tie_eps) return std::nullopt;
  }

  static thread_local std::vector<double> sorted_desc;
  SortScoresDescending(scores, &sorted_desc);

  // Position constraints may cover unranked tuples (their positions are
  // checked but contribute no objective term — Eq. (2) only sums over
  // R_π(k)).
  for (const PositionConstraint& pc : problem.position_constraints) {
    const int rho =
        ScoreRankPositionFromSorted(sorted_desc, scores[pc.tuple], tie_eps);
    if (rho < pc.min_position || rho > pc.max_position) return std::nullopt;
  }
  return ObjectiveOfScoresSorted(data, given, scores, sorted_desc, tie_eps,
                                 problem.objective);
}

namespace {

/// A candidate weight vector with its evaluated error.
struct Candidate {
  std::vector<double> weights;
  long error;
};

/// Blends `p` toward anchor `a` until the segment point enters the box:
/// both are simplex points, so any convex combination stays on the simplex;
/// the largest admissible step keeps the most diversity. Returns nullopt
/// when even the anchor misses the box (should not happen for a valid
/// anchor).
std::optional<std::vector<double>> BlendIntoBox(const std::vector<double>& p,
                                                const std::vector<double>& a,
                                                const WeightBox& box,
                                                double scale) {
  const int m = box.dim();
  double t_max = 1.0;
  for (int i = 0; i < m; ++i) {
    double dir = p[i] - a[i];
    if (dir > 0) {
      t_max = std::min(t_max, (box.hi[i] - a[i]) / dir);
    } else if (dir < 0) {
      t_max = std::min(t_max, (box.lo[i] - a[i]) / dir);
    }
  }
  if (t_max < 0) return std::nullopt;
  double t = std::clamp(t_max * scale, 0.0, 1.0);
  std::vector<double> out(m);
  for (int i = 0; i < m; ++i) {
    out[i] = std::clamp(a[i] + t * (p[i] - a[i]), box.lo[i], box.hi[i]);
  }
  return out;
}

/// Pairwise mass-transfer local search: move weight between two attributes
/// (preserving Σw = 1 exactly) whenever it improves the true error. Step
/// sizes shrink geometrically; every accepted move restarts the step ladder.
void RefineCandidate(const OptProblem& problem, const WeightBox& box,
                     int rounds, Rng* rng, const Deadline& deadline,
                     Candidate* candidate, int* evaluated) {
  const int m = box.dim();
  if (m < 2) return;
  static constexpr double kSteps[] = {0.2, 0.05, 0.0125, 0.003};
  for (int round = 0; round < rounds; ++round) {
    if (deadline.Expired() || candidate->error == 0) return;
    int i = static_cast<int>(rng->NextBelow(m));
    int j = static_cast<int>(rng->NextBelow(m - 1));
    if (j >= i) ++j;
    bool improved = false;
    for (double step : kSteps) {
      // Try both transfer directions at this magnitude.
      for (int dir = 0; dir < 2; ++dir) {
        int from = dir == 0 ? i : j;
        int to = dir == 0 ? j : i;
        double t = std::min({step, candidate->weights[from] - box.lo[from],
                             box.hi[to] - candidate->weights[to]});
        if (t <= 0) continue;
        std::vector<double> trial = candidate->weights;
        trial[from] -= t;
        trial[to] += t;
        auto err = EvaluateTrueError(problem, trial);
        ++*evaluated;
        if (err.has_value() && *err < candidate->error) {
          candidate->weights = std::move(trial);
          candidate->error = *err;
          improved = true;
          break;
        }
      }
      if (improved) break;
    }
  }
}

}  // namespace

Result<PresolveResult> RevalidateIncumbents(
    const OptProblem& problem, const WeightBox& box,
    const std::vector<std::vector<double>>& pool,
    const PresolveOptions& options) {
  RH_RETURN_NOT_OK(problem.Validate());
  const int m = problem.data->num_attributes();
  RH_CHECK(box.dim() == m);
  WeightBox tight = problem.constraints.TightenBox(box);
  if (!tight.IntersectsSimplex()) {
    return Status::Infeasible("presolve box ∩ simplex ∩ P bounds is empty");
  }

  WallTimer timer;
  Deadline deadline(options.time_budget_seconds);
  PresolveResult result;
  Candidate best;
  best.error = -1;
  for (const std::vector<double>& w : pool) {
    if (static_cast<int>(w.size()) != m) continue;
    auto err = EvaluateTrueError(problem, w);
    ++result.evaluated;
    if (err.has_value() && (best.error < 0 || *err < best.error)) {
      best.weights = w;
      best.error = *err;
    }
    if (deadline.Expired()) break;
  }
  if (best.error < 0) {
    result.seconds = timer.ElapsedSeconds();
    return result;  // found() == false: pool fully invalidated by the edit
  }
  if (best.error > 0) {
    Rng rng(options.seed);
    RefineCandidate(problem, tight, options.refine_rounds, &rng, deadline,
                    &best, &result.evaluated);
  }
  result.weights = std::move(best.weights);
  result.error = best.error;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

Result<PresolveResult> PresolveIncumbent(const OptProblem& problem,
                                         const WeightBox& box,
                                         const PresolveOptions& options) {
  RH_RETURN_NOT_OK(problem.Validate());
  const int m = problem.data->num_attributes();
  RH_CHECK(box.dim() == m);
  WeightBox tight = problem.constraints.TightenBox(box);
  if (!tight.IntersectsSimplex()) {
    return Status::Infeasible("presolve box ∩ simplex ∩ P bounds is empty");
  }
  RH_ASSIGN_OR_RETURN(std::vector<double> anchor,
                      AnyPointOnSimplexBox(tight));

  WallTimer timer;
  Deadline deadline(options.time_budget_seconds);
  Rng rng(options.seed);
  PresolveResult result;

  std::vector<Candidate> pool;
  auto consider = [&](const std::vector<double>& w) {
    auto err = EvaluateTrueError(problem, w);
    ++result.evaluated;
    if (err.has_value()) pool.push_back(Candidate{w, *err});
  };

  // 1. Deterministic seeds: the box anchor, the uniform point, each simplex
  //    vertex — all blended into the box so they stay feasible.
  consider(anchor);
  std::vector<double> uniform(m, 1.0 / m);
  if (auto u = BlendIntoBox(uniform, anchor, tight, 1.0)) consider(*u);
  for (int i = 0; i < m && !deadline.Expired(); ++i) {
    std::vector<double> vertex(m, 0.0);
    vertex[i] = 1.0;
    if (auto v = BlendIntoBox(vertex, anchor, tight, 1.0)) consider(*v);
  }

  // 2. Regression seeds (Sec. IV-B's first seeding strategy).
  if (options.use_regression_seeds && !deadline.Expired()) {
    if (auto ord = OrdinalRegressionSeed(*problem.data, *problem.given,
                                         problem.eps.eps1);
        ord.ok()) {
      if (auto w = BlendIntoBox(*ord, anchor, tight, 1.0)) consider(*w);
    }
    if (auto lin = LinearRegressionSeed(*problem.data, *problem.given);
        lin.ok()) {
      if (auto w = BlendIntoBox(*lin, anchor, tight, 1.0)) consider(*w);
    }
  }

  // 3. Random simplex points, one far blend + one half blend each.
  for (int s = 0; s < options.num_random_samples && !deadline.Expired();
       ++s) {
    std::vector<double> p = rng.NextSimplexPoint(m);
    if (auto w = BlendIntoBox(p, anchor, tight, 0.98)) consider(*w);
    if (auto w = BlendIntoBox(p, anchor, tight, 0.5)) consider(*w);
  }

  if (pool.empty()) {
    result.seconds = timer.ElapsedSeconds();
    return result;  // found() == false
  }

  // 4. Refine the few most promising candidates.
  std::sort(pool.begin(), pool.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.error < b.error;
            });
  int refine = std::min<int>(options.refine_candidates,
                             static_cast<int>(pool.size()));
  for (int i = 0; i < refine && !deadline.Expired(); ++i) {
    RefineCandidate(problem, tight, options.refine_rounds, &rng, deadline,
                    &pool[i], &result.evaluated);
    if (pool[i].error == 0) break;
  }

  const Candidate& best = *std::min_element(
      pool.begin(), pool.end(), [](const Candidate& a, const Candidate& b) {
        return a.error < b.error;
      });
  result.weights = best.weights;
  result.error = best.error;
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace rankhow
