#include "core/indicator_fixing.h"

#include <algorithm>
#include <numeric>

#include "data/kernels.h"
#include "util/logging.h"

namespace rankhow {

namespace {

/// True when the box is the whole [0,1]^m (ranges reduce to min/max of d).
bool IsFullBox(const WeightBox& box) {
  for (int i = 0; i < box.dim(); ++i) {
    if (box.lo[i] != 0.0 || box.hi[i] != 1.0) return false;
  }
  return true;
}

}  // namespace

Result<FixingSummary> ComputeIndicatorFixing(const Dataset& data,
                                             const std::vector<int>& tuples,
                                             const WeightBox& box,
                                             double eps1, double eps2,
                                             bool enable_fixing) {
  RH_CHECK(box.dim() == data.num_attributes());
  if (!box.IntersectsSimplex()) {
    return Status::Infeasible("weight box misses the simplex");
  }
  const int n = data.num_tuples();
  const int m = data.num_attributes();
  const bool full_box = IsFullBox(box);

  FixingSummary summary;
  summary.groups.reserve(tuples.size());
  std::vector<double> d(m);
  // Full-box ranges come from the batched kernel: one column-at-a-time
  // DiffRangeAgainst sweep per pivot instead of an n·m loop of value()
  // calls. Buffers are thread-local so root-grid refixing allocates nothing.
  static thread_local std::vector<double> lo_buf;
  static thread_local std::vector<double> hi_buf;
  if (full_box) {
    lo_buf.resize(n);
    hi_buf.resize(n);
  }

  for (int r : tuples) {
    TupleFixing group;
    group.tuple = r;
    if (full_box) {
      // Range of w·d over the simplex = [min dᵢ, max dᵢ].
      kernels::DiffRangeAgainst(data, r, lo_buf.data(), hi_buf.data());
    }
    for (int s = 0; s < n; ++s) {
      if (s == r) continue;
      double lo;
      double hi;
      if (full_box) {
        lo = lo_buf[s];
        hi = hi_buf[s];
      } else {
        data.DiffVectorInto(s, r, d.data());
        auto range = DotRangeOnSimplexBox(d, box);
        if (!range.ok()) return range.status();
        lo = range->min;
        hi = range->max;
      }
      if (enable_fixing && lo >= eps1) {
        ++group.fixed_one;
        summary.min_fixed_one_diff = std::min(summary.min_fixed_one_diff, lo);
      } else if (enable_fixing && hi <= eps2) {
        ++group.fixed_zero;
        summary.max_fixed_zero_diff = std::max(summary.max_fixed_zero_diff, hi);
      } else {
        group.free.push_back(FreePair{s, lo, hi});
      }
    }
    summary.total_fixed_one += group.fixed_one;
    summary.total_fixed_zero += group.fixed_zero;
    summary.total_free += static_cast<long>(group.free.size());
    summary.groups.push_back(std::move(group));
  }
  return summary;
}

}  // namespace rankhow
