#include "core/weight_constraints.h"

#include <algorithm>

#include "util/logging.h"

namespace rankhow {

void WeightConstraintSet::AddMinWeight(int attr, double lo, std::string name) {
  Add(WeightConstraint{{{attr, 1.0}}, RelOp::kGe, lo, std::move(name)});
}

void WeightConstraintSet::AddMaxWeight(int attr, double hi, std::string name) {
  Add(WeightConstraint{{{attr, 1.0}}, RelOp::kLe, hi, std::move(name)});
}

void WeightConstraintSet::AddGroupBound(const std::vector<int>& attrs,
                                        RelOp op, double rhs,
                                        std::string name) {
  WeightConstraint c;
  for (int a : attrs) c.terms.emplace_back(a, 1.0);
  c.op = op;
  c.rhs = rhs;
  c.name = std::move(name);
  Add(std::move(c));
}

void WeightConstraintSet::Add(WeightConstraint constraint) {
  RH_CHECK(!constraint.terms.empty()) << "empty weight constraint";
  constraints_.push_back(std::move(constraint));
  ++revision_;
}

size_t WeightConstraintSet::RemoveByName(const std::string& name) {
  if (name.empty()) return 0;
  size_t before = constraints_.size();
  constraints_.erase(
      std::remove_if(constraints_.begin(), constraints_.end(),
                     [&name](const WeightConstraint& c) {
                       return c.name == name;
                     }),
      constraints_.end());
  size_t removed = before - constraints_.size();
  if (removed > 0) ++revision_;
  return removed;
}

bool WeightConstraintSet::ContainsName(const std::string& name) const {
  if (name.empty()) return false;
  for (const WeightConstraint& c : constraints_) {
    if (c.name == name) return true;
  }
  return false;
}

void AppendWeightConstraintTo(const WeightConstraint& constraint,
                              LpModel* model,
                              const std::vector<int>& weight_vars) {
  LinearExpr expr;
  for (const auto& [attr, coeff] : constraint.terms) {
    RH_CHECK(attr >= 0 && attr < static_cast<int>(weight_vars.size()))
        << "weight constraint references unknown attribute " << attr;
    expr += LinearExpr::Term(weight_vars[attr], coeff);
  }
  model->AddConstraint(std::move(expr), constraint.op, constraint.rhs,
                       constraint.name.empty() ? "P" : constraint.name);
}

void WeightConstraintSet::AppendTo(LpModel* model,
                                   const std::vector<int>& weight_vars) const {
  for (const WeightConstraint& c : constraints_) {
    AppendWeightConstraintTo(c, model, weight_vars);
  }
}

WeightBox WeightConstraintSet::TightenBox(const WeightBox& base) const {
  WeightBox box = base;
  for (const WeightConstraint& c : constraints_) {
    if (c.terms.size() != 1) continue;  // only single-variable constraints
    auto [attr, coeff] = c.terms[0];
    if (coeff == 0.0 || attr >= box.dim()) continue;
    double bound = c.rhs / coeff;
    // coeff*w <= rhs: upper bound if coeff > 0, lower bound if coeff < 0
    // (mirrored for >=; equality tightens both sides).
    bool upper = (c.op == RelOp::kLe) == (coeff > 0);
    if (c.op == RelOp::kEq) {
      box.lo[attr] = std::max(box.lo[attr], bound);
      box.hi[attr] = std::min(box.hi[attr], bound);
    } else if (upper) {
      box.hi[attr] = std::min(box.hi[attr], bound);
    } else {
      box.lo[attr] = std::max(box.lo[attr], bound);
    }
  }
  return box;
}

bool WeightConstraintSet::IsSatisfied(const std::vector<double>& weights,
                                      double tol) const {
  for (const WeightConstraint& c : constraints_) {
    double lhs = 0;
    for (const auto& [attr, coeff] : c.terms) {
      if (attr >= static_cast<int>(weights.size())) return false;
      lhs += coeff * weights[attr];
    }
    switch (c.op) {
      case RelOp::kLe:
        if (lhs > c.rhs + tol) return false;
        break;
      case RelOp::kGe:
        if (lhs < c.rhs - tol) return false;
        break;
      case RelOp::kEq:
        if (std::abs(lhs - c.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

}  // namespace rankhow
