#ifndef RANKHOW_CORE_SEARCH_COORDINATOR_H_
#define RANKHOW_CORE_SEARCH_COORDINATOR_H_

/// \file search_coordinator.h
/// Shared state for one parallel exact search (see DESIGN.md "Parallel
/// search architecture"). Two pieces:
///
///  * `SearchCoordinator` — the global incumbent (installed with
///    compare-and-swap semantics under a mutex: objectives here are exact
///    integers stored in double, so the compare is exact arithmetic, not a
///    floating-point tolerance dance), the shared wall-clock deadline, and
///    cooperative stop/error propagation. Workers read the incumbent
///    objective lock-free (a stale read only delays a prune — soundness
///    never depends on freshness, because incumbents only improve).
///
///  * `ShardedFrontier<Node, Order>` — the open-node pool. Each shard is an
///    independently locked best-first heap; pushes spread round-robin and
///    pops take the best of the shard tops, so workers contend on 1/K of
///    the frontier instead of one global heap. Pop blocks until a node is
///    available and returns nullopt exactly when the search is over: a stop
///    was requested, or the frontier is empty while no worker is busy (no
///    new nodes can appear). With one shard and one worker the pop sequence
///    is identical to a plain std::priority_queue — the serial search is
///    the K = W = 1 special case of the parallel one, not a separate code
///    path.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <optional>
#include <queue>
#include <vector>

#include "util/status.h"
#include "util/timer.h"

namespace rankhow {

/// Global incumbent + deadline + stop/error hub shared by the workers of
/// one search. Thread-safe.
class SearchCoordinator {
 public:
  /// `improvement_tol`: a candidate is installed iff its objective is
  /// strictly below best − improvement_tol at install time (the MILP path
  /// passes its abs_gap; the spatial path passes 0 — its objectives are
  /// integral longs, so strict `<` is exact). `external_cancel`, when
  /// non-null, is an owner-held cooperative cancel flag (a session server
  /// client's): workers poll it alongside the deadline and treat a set flag
  /// exactly like deadline expiry — wind down within one node and report
  /// the result as budget-limited, never proven. The flag must outlive the
  /// search.
  SearchCoordinator(double time_limit_seconds, double improvement_tol,
                    const std::atomic<bool>* external_cancel = nullptr)
      : deadline_(time_limit_seconds),
        improvement_tol_(improvement_tol),
        external_cancel_(external_cancel) {}

  const Deadline& deadline() const { return deadline_; }

  /// True when the owner cancelled the search from outside (relaxed load:
  /// like a stale incumbent read, a late observation only delays the wind
  /// down by a node, never soundness).
  bool ExternalCancelRequested() const {
    return external_cancel_ != nullptr &&
           external_cancel_->load(std::memory_order_relaxed);
  }

  /// Lock-free incumbent objective snapshot (+inf = none). May be stale by
  /// one install — stale is always on the conservative (higher) side.
  double best_objective() const {
    return best_objective_.load(std::memory_order_acquire);
  }

  /// Seeds the incumbent before workers start (no locking needed yet).
  void SeedIncumbent(double objective, std::vector<double> values) {
    best_objective_.store(objective, std::memory_order_release);
    best_values_ = std::move(values);
  }

  /// Compare-and-swap install: re-checks `objective < best − tol` under the
  /// mutex so two workers racing the same improvement install exactly one.
  /// Returns whether this call won.
  bool OfferIncumbent(double objective, const std::vector<double>& values);

  /// The values of the winning incumbent (copy; call after workers joined
  /// or accept a consistent-but-racing snapshot).
  std::vector<double> incumbent_values() const;

  int64_t incumbent_updates() const {
    return incumbent_updates_.load(std::memory_order_relaxed);
  }

  /// A worker hit the node cap or the deadline: the final result must be
  /// reported as budget-limited, not proven.
  void RequestLimitStop() {
    limit_stop_.store(true, std::memory_order_release);
  }
  bool limit_stop() const {
    return limit_stop_.load(std::memory_order_acquire);
  }

  /// First hard error wins; every later worker sees StopRequested.
  void ReportError(const Status& status);
  bool has_error() const {
    return error_stop_.load(std::memory_order_acquire);
  }
  Status first_error() const;

  bool StopRequested() const { return limit_stop() || has_error(); }

 private:
  Deadline deadline_;
  double improvement_tol_;
  const std::atomic<bool>* external_cancel_ = nullptr;
  mutable std::mutex mu_;
  std::atomic<double> best_objective_{std::numeric_limits<double>::infinity()};
  std::vector<double> best_values_;
  std::atomic<int64_t> incumbent_updates_{0};
  std::atomic<bool> limit_stop_{false};
  std::atomic<bool> error_stop_{false};
  Status first_error_ = Status::OK();
};

/// Best-first open-node pool, sharded for contention. `Node` must expose
/// `double frontier_bound() const` (the subtree lower bound, used for the
/// best-of-tops pop heuristic and the final global-bound accounting);
/// `Order` is the per-shard heap comparator (std::priority_queue
/// convention).
///
/// Protocol: every successful Pop MUST be balanced by exactly one Done()
/// after the node's children (if any) were pushed — the busy count is how
/// the frontier distinguishes "momentarily empty" from "search exhausted".
template <typename Node, typename Order>
class ShardedFrontier {
 public:
  explicit ShardedFrontier(int num_shards)
      : shards_(std::max(1, num_shards)) {}

  void Push(Node node) {
    const size_t shard =
        next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
    {
      std::lock_guard<std::mutex> lock(shards_[shard].mu);
      shards_[shard].heap.push(std::move(node));
    }
    state_.fetch_add(kSizeUnit, std::memory_order_acq_rel);
    cv_.notify_one();
  }

  /// Blocks until a node is available (marking the caller busy), the
  /// search is exhausted, or a stop was requested (the latter two return
  /// nullopt). Best-of-tops selection: the returned node is the best among
  /// the shard tops at scan time — not necessarily the global best, which
  /// is fine: best-first order is a search heuristic, never a soundness
  /// requirement.
  std::optional<Node> Pop() {
    for (;;) {
      if (stop_.load(std::memory_order_acquire)) return std::nullopt;
      const int64_t state = state_.load(std::memory_order_acquire);
      if (SizeOf(state) > 0) {
        std::optional<Node> node = TryPopBest();
        if (node.has_value()) return node;
        continue;  // raced with another popper; rescan
      }
      if (BusyOf(state) == 0) {
        // The single packed load read size == 0 AND busy == 0 together:
        // no node exists and none is in flight anywhere, so none can ever
        // appear (pops move size→busy in one RMW; pushes only happen from
        // busy workers). Exhausted. Two separate counters could not give
        // this guarantee — a concurrent pop's busy++/size-- pair could
        // split across the two reads.
        cv_.notify_all();  // wake siblings so they observe exhaustion too
        return std::nullopt;
      }
      std::unique_lock<std::mutex> lock(mu_);
      if (stop_.load(std::memory_order_acquire)) return std::nullopt;
      if (state_.load(std::memory_order_acquire) == state) {
        // Timed wait: pushes signal without holding mu_, so a notification
        // can slip between the state check and the wait. The timeout turns
        // that race into bounded latency instead of a stall.
        cv_.wait_for(lock, std::chrono::milliseconds(2));
      }
    }
  }

  /// Balances a successful Pop (call after pushing the node's children).
  void Done() {
    state_.fetch_sub(kBusyUnit, std::memory_order_acq_rel);
    cv_.notify_all();
  }

  /// Cooperative cancel: every current and future Pop returns nullopt.
  /// Pushes stay allowed — a stopping worker re-pushes its unfinished node
  /// so the final bound accounting sees it.
  void RequestStop() {
    stop_.store(true, std::memory_order_release);
    cv_.notify_all();
  }
  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  bool Empty() const {
    return SizeOf(state_.load(std::memory_order_acquire)) == 0;
  }

  /// Min frontier_bound over all remaining nodes' *heap tops* (each shard
  /// heap's top is its shard minimum under best-first Order); +inf when
  /// empty. Call after workers joined.
  double MinBound() {
    double best = std::numeric_limits<double>::infinity();
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      if (!shard.heap.empty()) {
        best = std::min(best, shard.heap.top().frontier_bound());
      }
    }
    return best;
  }

 private:
  struct Shard {
    std::mutex mu;
    std::priority_queue<Node, std::vector<Node>, Order> heap;
  };

  /// Scans shard tops, then pops from the shard whose top looked best.
  /// Returns nullopt when every shard turned out empty.
  std::optional<Node> TryPopBest() {
    int best_shard = -1;
    double best_key = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < shards_.size(); ++i) {
      std::lock_guard<std::mutex> lock(shards_[i].mu);
      if (shards_[i].heap.empty()) continue;
      double key = shards_[i].heap.top().frontier_bound();
      if (best_shard < 0 || key < best_key) {
        best_shard = static_cast<int>(i);
        best_key = key;
      }
    }
    if (best_shard < 0) return std::nullopt;
    std::lock_guard<std::mutex> lock(shards_[best_shard].mu);
    if (shards_[best_shard].heap.empty()) return std::nullopt;
    // size→busy in ONE atomic RMW: siblings must never observe "empty and
    // nobody busy" while this node is in flight, or they would report
    // exhaustion and retire early (with two counters the pair of updates
    // could split across a sibling's two reads, whatever their order).
    state_.fetch_add(kBusyUnit - kSizeUnit, std::memory_order_acq_rel);
    // const_cast-free move-out: top() is const, so copy-pop. Nodes are
    // cheap to copy (shared_ptr row sets / small vectors).
    Node node = shards_[best_shard].heap.top();
    shards_[best_shard].heap.pop();
    return node;
  }

  /// Frontier accounting packed into one atomic: size in the high 32 bits,
  /// busy (pops not yet Done'd) in the low 32. A pop converts size→busy in
  /// a single RMW, so any single load sees a consistent (size, busy) pair —
  /// the exhaustion invariant "size == 0 ∧ busy == 0 ⇒ no node can ever
  /// appear" needs exactly that consistency.
  static constexpr int64_t kSizeUnit = int64_t{1} << 32;
  static constexpr int64_t kBusyUnit = 1;
  static int64_t SizeOf(int64_t state) { return state >> 32; }
  static int BusyOf(int64_t state) {
    return static_cast<int>(state & 0xffffffff);
  }

  std::vector<Shard> shards_;
  std::atomic<size_t> next_shard_{0};
  std::atomic<int64_t> state_{0};
  std::atomic<bool> stop_{false};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace rankhow

#endif  // RANKHOW_CORE_SEARCH_COORDINATOR_H_
