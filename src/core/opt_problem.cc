#include "core/opt_problem.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace rankhow {

Status AppendRelativePositionBand(const Ranking& given, double lo_frac,
                                  double hi_frac, int limit,
                                  std::vector<PositionConstraint>* out) {
  if (!(lo_frac > 0) || !(hi_frac >= lo_frac)) {
    return Status::Invalid(StrFormat(
        "relative band needs 0 < lo_frac <= hi_frac, got [%g, %g]", lo_frac,
        hi_frac));
  }
  if (limit < 1) {
    return Status::Invalid("relative band limit must be >= 1");
  }
  for (int t = 0; t < given.num_tuples(); ++t) {
    const int p = given.position(t);
    if (p == kUnranked || p > limit) continue;
    PositionConstraint pc;
    pc.tuple = t;
    pc.min_position = std::max(1, static_cast<int>(std::floor(lo_frac * p)));
    pc.max_position = static_cast<int>(std::ceil(hi_frac * p));
    out->push_back(pc);
  }
  return Status();
}

Status OptProblem::Validate() const {
  if (data == nullptr || given == nullptr) {
    return Status::Invalid("OptProblem requires dataset and ranking");
  }
  if (data->num_tuples() != given->num_tuples()) {
    return Status::Invalid(StrFormat(
        "dataset has %d tuples but ranking covers %d", data->num_tuples(),
        given->num_tuples()));
  }
  if (data->num_attributes() < 1) {
    return Status::Invalid("dataset has no ranking attributes");
  }
  // NaN/±inf would silently poison every LP coefficient and score; reject
  // up front with a pointed message instead.
  for (int a = 0; a < data->num_attributes(); ++a) {
    for (double v : data->column(a)) {
      if (!std::isfinite(v)) {
        return Status::Invalid(StrFormat(
            "attribute %s contains a non-finite value (%g)",
            data->attribute_name(a).c_str(), v));
      }
    }
  }
  if (given->k() < 1) return Status::Invalid("ranking has no ranked tuples");
  if (!eps.Valid()) {
    return Status::Invalid(StrFormat(
        "epsilon configuration violates Lemma 2/3 ordering: eps2=%g <= "
        "tie_eps=%g < eps1=%g required",
        eps.eps2, eps.tie_eps, eps.eps1));
  }
  for (const PositionConstraint& pc : position_constraints) {
    if (pc.tuple < 0 || pc.tuple >= data->num_tuples()) {
      return Status::Invalid("position constraint on unknown tuple");
    }
    if (pc.min_position < 1 || pc.max_position < pc.min_position) {
      return Status::Invalid("position constraint with empty range");
    }
  }
  for (const PairwiseOrderConstraint& oc : order_constraints) {
    if (oc.above < 0 || oc.above >= data->num_tuples() || oc.below < 0 ||
        oc.below >= data->num_tuples() || oc.above == oc.below) {
      return Status::Invalid("order constraint with bad tuple ids");
    }
  }
  for (long penalty : objective.penalties) {
    if (penalty < 0) {
      return Status::Invalid("objective penalties must be non-negative");
    }
  }
  return Status::OK();
}

}  // namespace rankhow
