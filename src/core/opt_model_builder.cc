#include "core/opt_model_builder.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>

#include "util/logging.h"
#include "util/string_util.h"

namespace rankhow {

namespace {

/// Near-zero big-M values create badly scaled rows that destabilize the
/// simplex, so M is clamped away from the noise floor (the extra slack
/// only loosens the relaxation marginally). Shared by the build and the
/// ε-patch so a patched model is bit-identical to a fresh build.
constexpr double kMinBigM = 1e-6;

double TightBigM(double slack) {
  return std::max(slack, kMinBigM) * (1 + 1e-9);
}

}  // namespace

std::vector<double> OptModel::ExtractWeights(
    const std::vector<double>& values) const {
  std::vector<double> w;
  w.reserve(weight_vars.size());
  for (int var : weight_vars) {
    RH_DCHECK(var < static_cast<int>(values.size()));
    // Clip the solver's tolerance dust so downstream evaluation sees a
    // clean simplex point.
    w.push_back(std::max(0.0, std::min(1.0, values[var])));
  }
  return w;
}

void AppendWeightConstraintRow(const WeightConstraint& constraint,
                               OptModel* model) {
  AppendWeightConstraintTo(constraint, &model->milp.lp(),
                           model->weight_vars);
}

void AppendOrderConstraintRow(const OptProblem& problem,
                              const PairwiseOrderConstraint& oc,
                              OptModel* model) {
  const Dataset& data = *problem.data;
  LinearExpr expr;
  for (int a = 0; a < data.num_attributes(); ++a) {
    expr += LinearExpr::Term(
        model->weight_vars[a],
        data.value(oc.above, a) - data.value(oc.below, a));
  }
  model->order_rows.push_back(model->milp.lp().AddConstraint(
      std::move(expr), RelOp::kGe, problem.eps.eps1,
      StrFormat("order_%d_above_%d", oc.above, oc.below)));
}

bool PatchEpsilonInPlace(const EpsilonConfig& eps, OptModel* model) {
  if (eps.eps1 > model->min_fixed_one_diff) return false;
  if (eps.eps2 < model->max_fixed_zero_diff) return false;
  for (const OptModel::EpsSite& site : model->eps_sites) {
    IndicatorConstraint& ge = model->milp.mutable_indicator(site.ind_ge);
    ge.rhs = eps.eps1;
    if (model->built_tight_big_m) ge.big_m = TightBigM(eps.eps1 - site.diff_min);
    IndicatorConstraint& le = model->milp.mutable_indicator(site.ind_le);
    le.rhs = eps.eps2;
    if (model->built_tight_big_m) le.big_m = TightBigM(site.diff_max - eps.eps2);
  }
  for (int row : model->order_rows) {
    model->milp.lp().mutable_constraint(row).rhs = eps.eps1;
  }
  return true;
}

Result<OptModel> BuildOptModel(const OptProblem& problem,
                               const WeightBox& box, bool enable_fixing,
                               bool enable_cuts, bool tight_big_m) {
  RH_RETURN_NOT_OK(problem.Validate());
  const Dataset& data = *problem.data;
  const Ranking& given = *problem.given;
  const int m = data.num_attributes();

  WeightBox tight = problem.constraints.TightenBox(box);
  if (!tight.IntersectsSimplex()) {
    return Status::Infeasible("weight box ∩ simplex ∩ P bounds is empty");
  }

  OptModel model;
  LpModel& lp = model.milp.lp();

  // Weight variables with box bounds + the simplex row.
  LinearExpr weight_sum;
  for (int a = 0; a < m; ++a) {
    int var = lp.AddVariable(tight.lo[a], tight.hi[a],
                             "w_" + data.attribute_name(a));
    model.weight_vars.push_back(var);
    weight_sum += LinearExpr::Term(var, 1.0);
  }
  lp.AddConstraint(weight_sum, RelOp::kEq, 1.0, "simplex");

  // The predicate P.
  problem.constraints.AppendTo(&lp, model.weight_vars);

  // Pairwise order constraints: w·d(above, below) >= eps1 (pure weight rows,
  // no indicators needed).
  for (const PairwiseOrderConstraint& oc : problem.order_constraints) {
    LinearExpr expr;
    for (int a = 0; a < m; ++a) {
      expr += LinearExpr::Term(
          model.weight_vars[a],
          data.value(oc.above, a) - data.value(oc.below, a));
    }
    model.order_rows.push_back(
        lp.AddConstraint(std::move(expr), RelOp::kGe, problem.eps.eps1,
                         StrFormat("order_%d_above_%d", oc.above, oc.below)));
  }

  // Group tuples: every ranked tuple, plus position-constrained extras.
  std::vector<int> group_tuples = given.ranked_tuples();
  for (const PositionConstraint& pc : problem.position_constraints) {
    if (!given.IsRanked(pc.tuple) &&
        std::find(group_tuples.begin(), group_tuples.end(), pc.tuple) ==
            group_tuples.end()) {
      group_tuples.push_back(pc.tuple);
    }
  }

  RH_ASSIGN_OR_RETURN(
      FixingSummary fixing,
      ComputeIndicatorFixing(data, group_tuples, tight, problem.eps.eps1,
                             problem.eps.eps2, enable_fixing));
  model.num_free_indicators = fixing.total_free;
  model.num_fixed_indicators =
      fixing.total_fixed_one + fixing.total_fixed_zero;
  model.min_fixed_one_diff = fixing.min_fixed_one_diff;
  model.max_fixed_zero_diff = fixing.max_fixed_zero_diff;
  model.built_tight_big_m = tight_big_m;

  // Indicator variables + error variables per group.
  LinearExpr objective;
  for (const TupleFixing& fx : fixing.groups) {
    OptModel::TupleGroup group;
    group.tuple = fx.tuple;
    group.given_position = given.position(fx.tuple);
    group.fixed_one = fx.fixed_one;

    LinearExpr s_free;  // Σ free δ_sr
    for (const FreePair& pair : fx.free) {
      int delta = model.milp.AddBinaryVariable(
          StrFormat("d_%d_%d", pair.s, fx.tuple));
      group.delta_vars.emplace_back(pair.s, delta);
      s_free += LinearExpr::Term(delta, 1.0);

      // w·d(s, r) as an expression over the weight variables.
      LinearExpr score_diff;
      for (int a = 0; a < m; ++a) {
        score_diff += LinearExpr::Term(
            model.weight_vars[a],
            data.value(pair.s, a) - data.value(fx.tuple, a));
      }
      // Tight per-pair big-M from the exact range of w·d over the box:
      //   δ=1 ⇒ diff >= ε₁ needs M >= ε₁ − diff_min,
      //   δ=0 ⇒ diff <= ε₂ needs M >= diff_max − ε₂.
      // With fixing disabled (ablation) a pair may have negative slack (a
      // zero M would still be valid) — TightBigM clamps it. -1 requests the
      // solver's loose bounds-derived M (ablation A3).
      const double m1 =
          tight_big_m ? TightBigM(problem.eps.eps1 - pair.diff_min) : -1.0;
      const double m0 =
          tight_big_m ? TightBigM(pair.diff_max - problem.eps.eps2) : -1.0;
      OptModel::EpsSite site;
      site.diff_min = pair.diff_min;
      site.diff_max = pair.diff_max;
      site.ind_ge = model.milp.indicators().size();
      model.milp.AddIndicator({delta, true, score_diff, RelOp::kGe,
                               problem.eps.eps1, m1});
      site.ind_le = model.milp.indicators().size();
      model.milp.AddIndicator({delta, false, std::move(score_diff),
                               RelOp::kLe, problem.eps.eps2, m0});
      model.eps_sites.push_back(site);
    }

    const bool inversion_objective =
        problem.objective.kind == ObjectiveKind::kInversions;
    if (given.IsRanked(fx.tuple) && !inversion_objective) {
      // Error variable + |·| linearization:
      //   e_r >= t_r − S_free   and   e_r >= S_free − t_r
      // with t_r = π(r) − 1 − fixed_one. The per-tuple objective coefficient
      // is the (integral) position penalty — 1 for plain Definition 3.
      double t_r = group.given_position - 1 - fx.fixed_one;
      group.error_var = lp.AddVariable(0.0, kInfinity,
                                       StrFormat("e_%d", fx.tuple));
      objective += LinearExpr::Term(
          group.error_var,
          static_cast<double>(
              problem.objective.PenaltyAt(group.given_position)));
      LinearExpr above = LinearExpr::Term(group.error_var, 1.0) + s_free;
      lp.AddConstraint(std::move(above), RelOp::kGe, t_r,
                       StrFormat("abs_lo_%d", fx.tuple));
      LinearExpr below = LinearExpr::Term(group.error_var, 1.0) - s_free;
      lp.AddConstraint(std::move(below), RelOp::kGe, -t_r,
                       StrFormat("abs_hi_%d", fx.tuple));
    }

    model.groups.push_back(std::move(group));
  }

  // Inversion objective (Sec. I's Kendall-tau distance): for every ranked
  // pair a-strictly-above-b, the pair is discordant iff δ_ba = 1 (group a,
  // s = b). Free pairs contribute their δ variable; interval-fixed ones a
  // constant. No |·| machinery is needed at all.
  if (problem.objective.kind == ObjectiveKind::kInversions) {
    const std::vector<int>& ranked = given.ranked_tuples();
    std::vector<double> d(m);
    for (size_t i = 0; i < ranked.size(); ++i) {
      for (size_t j = i + 1; j < ranked.size(); ++j) {
        int a = ranked[i];
        int b = ranked[j];
        if (given.position(a) == given.position(b)) continue;  // π-tie
        if (given.position(a) > given.position(b)) std::swap(a, b);
        // Find δ_ba in group a.
        const OptModel::TupleGroup* group = nullptr;
        for (const auto& g : model.groups) {
          if (g.tuple == a) {
            group = &g;
            break;
          }
        }
        RH_CHECK(group != nullptr);
        int var = -1;
        for (const auto& [s, delta] : group->delta_vars) {
          if (s == b) {
            var = delta;
            break;
          }
        }
        if (var >= 0) {
          objective += LinearExpr::Term(var, 1.0);
          continue;
        }
        // Interval-fixed pair: recompute its orientation over the box.
        for (int attr = 0; attr < m; ++attr) {
          d[attr] = data.value(b, attr) - data.value(a, attr);
        }
        RH_ASSIGN_OR_RETURN(DotRange range, DotRangeOnSimplexBox(d, tight));
        if (range.min >= problem.eps.eps1) objective.AddConstant(1.0);
      }
    }
  }

  // Strengthening rows: two tuples cannot strictly beat each other, so
  // whenever both δ_sr and δ_rs exist as variables, add δ_sr + δ_rs <= 1.
  // This is implied at integral points by the indicator semantics (ε₁ > ε₂)
  // but cuts off fractional LP points like δ_sr = δ_rs = 0.75, noticeably
  // tightening the branch-and-bound lower bounds.
  {
    std::map<std::pair<int, int>, std::vector<int>> mutual;
    for (const OptModel::TupleGroup& group : model.groups) {
      for (const auto& [s, var] : group.delta_vars) {
        int a = std::min(s, group.tuple);
        int b = std::max(s, group.tuple);
        mutual[{a, b}].push_back(var);
      }
    }
    for (const auto& [pair_key, vars] : mutual) {
      (void)pair_key;
      if (vars.size() == 2) {
        // Lazy: the branch-and-bound pulls the row into a node LP only when
        // violated, keeping node LPs small (see MilpModel::AddLazyCut).
        model.milp.AddLazyCut(LinearExpr::Term(vars[0], 1.0) +
                                  LinearExpr::Term(vars[1], 1.0),
                              RelOp::kLe, 1.0);
      }
    }
  }

  // Transitivity cuts over mutually-ranked triples: diff(a,c) = diff(a,b) +
  // diff(b,c), so δ_ab = 1 ∧ δ_bc = 1 forces diff(a,c) >= 2ε₁, whose only
  // MILP-consistent indicator value is δ_ac = 1. The linear form
  //   δ_ac >= δ_ab + δ_bc − 1
  // is valid and substantially tightens the LP bound (the plain big-M
  // relaxation can scatter fractional δ with no order structure at all).
  // Capped to keep the LP row count sane on large k.
  {
    // (s, r) -> free δ_sr variable, or -2 fixed-one / -3 fixed-zero.
    std::map<std::pair<int, int>, int> delta_of;
    for (const OptModel::TupleGroup& group : model.groups) {
      for (const auto& [s, var] : group.delta_vars) {
        delta_of[{s, group.tuple}] = var;
      }
    }
    auto lookup = [&](int s, int r) -> std::optional<int> {
      auto it = delta_of.find({s, r});
      if (it == delta_of.end()) return std::nullopt;
      return it->second;
    };
    const std::vector<int>& ranked = given.ranked_tuples();
    const size_t kr = ranked.size();
    constexpr size_t kMaxTransitivityRows = 4000;
    if (enable_cuts && kr >= 3 && kr * kr * kr <= kMaxTransitivityRows * 2) {
      size_t rows_added = 0;
      for (size_t ia = 0; ia < kr && rows_added < kMaxTransitivityRows;
           ++ia) {
        for (size_t ib = 0; ib < kr; ++ib) {
          if (ib == ia) continue;
          for (size_t ic = 0; ic < kr; ++ic) {
            if (ic == ia || ic == ib) continue;
            auto d_ab = lookup(ranked[ia], ranked[ib]);
            auto d_bc = lookup(ranked[ib], ranked[ic]);
            auto d_ac = lookup(ranked[ia], ranked[ic]);
            // Only emit the cut when all three are live variables; fixed
            // indicators were already propagated by interval analysis.
            if (!d_ab || !d_bc || !d_ac) continue;
            LinearExpr cut = LinearExpr::Term(*d_ac, 1.0) -
                             LinearExpr::Term(*d_ab, 1.0) -
                             LinearExpr::Term(*d_bc, 1.0);
            model.milp.AddLazyCut(std::move(cut), RelOp::kGe, -1.0);
            if (++rows_added >= kMaxTransitivityRows) break;
          }
          if (rows_added >= kMaxTransitivityRows) break;
        }
      }
    }
  }

  // Position-range constraints: position(r) = 1 + fixed_one + S_free must
  // lie in [min, max].
  for (const PositionConstraint& pc : problem.position_constraints) {
    const OptModel::TupleGroup* group = nullptr;
    for (const auto& g : model.groups) {
      if (g.tuple == pc.tuple) {
        group = &g;
        break;
      }
    }
    RH_CHECK(group != nullptr);
    LinearExpr s_free;
    for (const auto& [s, var] : group->delta_vars) {
      (void)s;
      s_free += LinearExpr::Term(var, 1.0);
    }
    // S_free >= min_position − 1 − fixed_one.
    double lo = pc.min_position - 1.0 - group->fixed_one;
    if (lo > 0) {
      lp.AddConstraint(s_free, RelOp::kGe, lo,
                       StrFormat("pos_min_%d", pc.tuple));
    }
    if (pc.max_position < std::numeric_limits<int>::max()) {
      double hi = pc.max_position - 1.0 - group->fixed_one;
      lp.AddConstraint(s_free, RelOp::kLe, hi,
                       StrFormat("pos_max_%d", pc.tuple));
    }
  }

  lp.SetObjective(std::move(objective), ObjectiveSense::kMinimize);
  return model;
}

}  // namespace rankhow
