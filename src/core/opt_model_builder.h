#ifndef RANKHOW_CORE_OPT_MODEL_BUILDER_H_
#define RANKHOW_CORE_OPT_MODEL_BUILDER_H_

/// \file opt_model_builder.h
/// Compiles an OPT instance into the MILP of Equation (2):
///
///   min Σ_{r ∈ Rπ(k)} | π(r) − 1 − Σ_{s≠r} δ_sr |
///   s.t. P(w),  Σw = 1,  w >= 0,
///        δ_sr = 1 ⇒ w·d(s,r) >= ε₁,
///        δ_sr = 0 ⇒ w·d(s,r) <= ε₂,
///
/// with the |·| objective linearized through per-tuple error variables,
/// indicators already fixed by interval analysis substituted as constants
/// (Sec. V-B / IV-A), per-pair tight big-M values from the exact w·d ranges,
/// and the Example-1 side constraints (position ranges, pairwise orders)
/// lowered onto the same indicator variables.

#include <vector>

#include "core/indicator_fixing.h"
#include "core/opt_problem.h"
#include "math/simplex_box.h"
#include "milp/milp_model.h"
#include "util/status.h"

namespace rankhow {

/// The compiled model plus the variable maps needed to interpret solutions.
struct OptModel {
  MilpModel milp;
  /// Model variable ids of w₁..w_m.
  std::vector<int> weight_vars;

  /// One group per tuple that needed indicator variables (every ranked tuple
  /// plus any position-constrained unranked tuple).
  struct TupleGroup {
    int tuple = -1;
    /// π(r) for ranked tuples, kUnranked otherwise.
    int given_position = kUnranked;
    /// Error variable id (only for ranked tuples; -1 otherwise).
    int error_var = -1;
    /// Free indicator variables: (s, model var id).
    std::vector<std::pair<int, int>> delta_vars;
    /// Number of δ_sr fixed to 1.
    int fixed_one = 0;
  };
  std::vector<TupleGroup> groups;

  long num_free_indicators = 0;
  long num_fixed_indicators = 0;

  /// Where ε lives in the compiled model (the PatchEpsilonInPlace map).
  /// Each free pair owns exactly two indicator constraints whose rhs are
  /// ε₁/ε₂ and whose tight big-M values are ε-linear in the recorded exact
  /// w·d range; each order constraint owns one LP row with rhs ε₁.
  struct EpsSite {
    size_t ind_ge = 0;  ///< indicator index of δ=1 ⇒ w·d >= ε₁
    size_t ind_le = 0;  ///< indicator index of δ=0 ⇒ w·d <= ε₂
    double diff_min = 0;
    double diff_max = 0;
  };
  std::vector<EpsSite> eps_sites;
  /// LP row ids of the order-constraint rows (rhs = ε₁), including rows
  /// appended after compilation by AppendOrderConstraintRow.
  std::vector<int> order_rows;
  /// Fixing slack copied from the FixingSummary the model was built with:
  /// an ε move keeps every baked-in fixed indicator (and the inversion
  /// objective's fixed-pair constants) valid exactly when
  /// eps1' <= min_fixed_one_diff and eps2' >= max_fixed_zero_diff.
  double min_fixed_one_diff = 0;
  double max_fixed_zero_diff = 0;
  /// Whether the model was compiled with tight per-pair big-M (patching
  /// recomputes them) or the loose-auto ablation (patching leaves them -1).
  bool built_tight_big_m = true;

  /// Extracts the weight vector from a model-variable assignment.
  std::vector<double> ExtractWeights(const std::vector<double>& values) const;
};

/// Builds the MILP restricted to weight box `box` (the full simplex for the
/// global RankHow solve; a small cell for SYM-GD). The box is first
/// tightened with P's single-variable bounds. `enable_fixing == false`
/// disables the Sec. V-B / IV-A indicator substitution (ablation);
/// `enable_cuts == false` drops the transitivity strengthening rows;
/// `tight_big_m == false` discards the per-pair exact Ms so the relaxation
/// falls back to loose bounds-derived values (ablation A3).
Result<OptModel> BuildOptModel(const OptProblem& problem,
                               const WeightBox& box,
                               bool enable_fixing = true,
                               bool enable_cuts = true,
                               bool tight_big_m = true);

/// Delta-aware rebuild (the SolveSession fast path): appends the single LP
/// row for a weight constraint that was added to the problem *after* `model`
/// was compiled, leaving every existing variable and row id untouched — so
/// warm bases exported against the model stay valid. The cached model keeps
/// the indicator fixing and big-M values it was built with; both were
/// derived over a superset of the new feasible box, which is sound (fixing
/// and M tightness affect solve speed, never the optimum). A from-scratch
/// BuildOptModel over the shrunk box may fix more indicators; the session
/// trades that tightness for skipping the full recompile.
void AppendWeightConstraintRow(const WeightConstraint& constraint,
                               OptModel* model);

/// Same contract for a pairwise order constraint added after compilation:
/// appends the pure weight row w·d(above, below) >= ε₁.
void AppendOrderConstraintRow(const OptProblem& problem,
                              const PairwiseOrderConstraint& oc,
                              OptModel* model);

/// Moves a compiled model to new ε thresholds without recompiling: rewrites
/// the indicator rhs (and their tight big-M, which is ε-linear in the
/// recorded w·d ranges) and the order-row rhs in place. Sound only while
/// every indicator the build fixed as a constant stays fixed — checked via
/// the recorded fixing slack — since those constants (δ substitutions, t_r
/// offsets, inversion-objective pair constants) are baked into rows the
/// patch cannot reach. Returns false, touching nothing, when the slack test
/// fails; the caller must rebuild. Variable and row ids never change, so
/// warm bases exported against the model stay valid.
bool PatchEpsilonInPlace(const EpsilonConfig& eps, OptModel* model);

}  // namespace rankhow

#endif  // RANKHOW_CORE_OPT_MODEL_BUILDER_H_
