#ifndef RANKHOW_CORE_PRESOLVE_H_
#define RANKHOW_CORE_PRESOLVE_H_

/// \file presolve.h
/// Multi-start primal presolve for OPT: before the exact search starts,
/// sample candidate weight vectors (regression seeds, simplex corners,
/// random simplex points blended into the feasible box) and refine the best
/// ones with pairwise mass-transfer local search. The winner becomes the
/// initial branch-and-bound incumbent.
///
/// Why this matters: the OPT objective is integral, so an incumbent equal to
/// the root lower bound closes the tree instantly. In particular, whenever
/// the given ranking is linearly realizable (error 0), a presolve hit turns
/// an hours-long exact search into a constant-time optimality proof — the
/// same effect Gurobi gets from its own primal heuristics, which the paper's
/// Section III-B credits for the MILP solver's speed.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/opt_problem.h"
#include "math/simplex_box.h"
#include "util/status.h"

namespace rankhow {

struct PresolveOptions {
  /// Random simplex samples blended into the target box.
  int num_random_samples = 400;
  /// How many of the best candidates get local-search refinement.
  int refine_candidates = 3;
  /// Pairwise mass-transfer rounds per refined candidate.
  int refine_rounds = 80;
  /// Wall-clock cap for the whole presolve (samples + refinement).
  double time_budget_seconds = 2.0;
  /// Deterministic RNG stream.
  uint64_t seed = 0x9E3779B97F4A7C15ULL;
  /// Also try ordinal/linear regression seeds (skipped when they fail).
  bool use_regression_seeds = true;
};

struct PresolveResult {
  /// Best candidate found; empty when nothing feasible was seen.
  std::vector<double> weights;
  /// Its true OPT error under ε-tie semantics; -1 when nothing was found.
  long error = -1;
  int evaluated = 0;
  double seconds = 0;

  bool found() const { return error >= 0; }
};

/// The true OPT objective of `w` (Definition 3 under Definition 2's ε-tie
/// semantics), or nullopt when `w` violates the predicate P, a pairwise
/// order constraint, or a position-range constraint. This is the evaluation
/// the paper's verification step performs (in floating point; the exact
/// rational recheck lives in ranking/verifier.h).
std::optional<long> EvaluateTrueError(const OptProblem& problem,
                                      const std::vector<double>& w);

/// Runs the multi-start search over box ∩ simplex ∩ P. Never fails on "no
/// candidate found" — check `found()` on the result. Errors indicate
/// structural problems (invalid OPT instance, empty box).
Result<PresolveResult> PresolveIncumbent(const OptProblem& problem,
                                         const WeightBox& box,
                                         const PresolveOptions& options = {});

/// The SolveSession reuse path: instead of multi-starting cold, re-evaluate
/// a pool of previously found weight vectors against the (edited) problem —
/// a tightening edit keeps many of them feasible, a relaxing edit keeps all
/// of them — and give the best survivor a short local-search refinement
/// (the edit may have moved the optimum a small mass transfer away).
/// Entries that became infeasible are skipped, not errors. found() is false
/// when nothing in the pool survives; the caller then falls back to
/// PresolveIncumbent.
Result<PresolveResult> RevalidateIncumbents(
    const OptProblem& problem, const WeightBox& box,
    const std::vector<std::vector<double>>& pool,
    const PresolveOptions& options = {});

}  // namespace rankhow

#endif  // RANKHOW_CORE_PRESOLVE_H_
