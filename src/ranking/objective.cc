#include "ranking/objective.h"

#include <cmath>

#include "ranking/score_ranking.h"
#include "util/logging.h"

namespace rankhow {

const char* ObjectiveKindName(ObjectiveKind kind) {
  switch (kind) {
    case ObjectiveKind::kPositionError:
      return "position-error";
    case ObjectiveKind::kWeightedPositionError:
      return "weighted-position-error";
    case ObjectiveKind::kInversions:
      return "inversions";
  }
  return "unknown";
}

RankingObjectiveSpec RankingObjectiveSpec::TopHeavy(int k) {
  RankingObjectiveSpec spec;
  spec.kind = ObjectiveKind::kWeightedPositionError;
  spec.penalties.assign(k + 1, 1);
  for (int p = 1; p <= k; ++p) spec.penalties[p] = k - p + 1;
  return spec;
}

RankingObjectiveSpec RankingObjectiveSpec::Inversions() {
  RankingObjectiveSpec spec;
  spec.kind = ObjectiveKind::kInversions;
  return spec;
}

long ObjectiveOfScores(const Dataset& data, const Ranking& given,
                       const std::vector<double>& scores, double tie_eps,
                       const RankingObjectiveSpec& spec) {
  if (spec.kind == ObjectiveKind::kInversions) {
    return ObjectiveOfScoresSorted(data, given, scores, {}, tie_eps, spec);
  }
  std::vector<double> sorted_desc;
  SortScoresDescending(scores, &sorted_desc);
  return ObjectiveOfScoresSorted(data, given, scores, sorted_desc, tie_eps,
                                 spec);
}

long ObjectiveOfScoresSorted(const Dataset& data, const Ranking& given,
                             const std::vector<double>& scores,
                             const std::vector<double>& sorted_desc,
                             double tie_eps, const RankingObjectiveSpec& spec) {
  RH_CHECK(static_cast<int>(scores.size()) == data.num_tuples());
  const std::vector<int>& ranked = given.ranked_tuples();
  if (spec.kind == ObjectiveKind::kInversions) {
    // Discordant ranked pairs: (a strictly above b in π) whose scores place
    // b strictly above a (beyond the tie tolerance). Tied-π pairs and
    // tied-score pairs are neutral, matching Kendall-tau distance.
    long inversions = 0;
    for (size_t i = 0; i < ranked.size(); ++i) {
      for (size_t j = i + 1; j < ranked.size(); ++j) {
        int a = ranked[i];
        int b = ranked[j];
        if (given.position(a) == given.position(b)) continue;
        if (given.position(a) > given.position(b)) std::swap(a, b);
        if (scores[b] - scores[a] > tie_eps) ++inversions;
      }
    }
    return inversions;
  }
  RH_CHECK(sorted_desc.size() == scores.size());
  long total = 0;
  for (int t : ranked) {
    int given_pos = given.position(t);
    int rho = ScoreRankPositionFromSorted(sorted_desc, scores[t], tie_eps);
    total += spec.PenaltyAt(given_pos) *
             std::labs(static_cast<long>(rho) - given_pos);
  }
  return total;
}

long ObjectiveOf(const Dataset& data, const Ranking& given,
                 const std::vector<double>& w, double tie_eps,
                 const RankingObjectiveSpec& spec) {
  return ObjectiveOfScores(data, given, data.Scores(w), tie_eps, spec);
}

}  // namespace rankhow
