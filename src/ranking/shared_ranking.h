#ifndef RANKHOW_RANKING_SHARED_RANKING_H_
#define RANKHOW_RANKING_SHARED_RANKING_H_

/// \file shared_ranking.h
/// Snapshot sharing for the given ranking — the `SharedDataset` treatment
/// at ranking granularity (the ROADMAP carry-over "COW at ranking
/// granularity"). The serving shape is the same many-clients-few-problems
/// crowd: K sessions opened against one dataset all rank the same π, and
/// each used to deep-copy its own `Ranking` (one int per tuple — small per
/// session, real once session budgets reach the thousands).
///
/// A `SharedRanking` is a cheap handle onto a refcounted immutable
/// `Ranking` snapshot; handles copy in O(1). Because `Ranking` itself is
/// immutable (the only session edit that grows it, AppendTuple, already
/// builds a fresh Ranking via Ranking::Create), "copy-on-write" degenerates
/// to snapshot replacement: `Reset` re-points *this handle* at a new
/// snapshot, leaving every sibling on the old one — which also counts as
/// the fork it is when the old snapshot was shared. When the last handle
/// drops, the snapshot is freed (asserted by the weak_ptr lifecycle test in
/// tests/ranking/, mirroring shared_dataset_test.cc).
///
/// Thread-safety contract: same as SharedDataset — concurrent reads of one
/// snapshot through many handles are safe; one specific handle is not
/// itself thread-safe (the registry serializes each client's edits).

#include <memory>
#include <utility>

#include "ranking/ranking.h"

namespace rankhow {

class SharedRanking {
 public:
  /// An empty handle (no snapshot). get() is invalid until assigned.
  SharedRanking() = default;
  /// Wraps a ranking into a fresh snapshot this handle solely owns.
  explicit SharedRanking(Ranking given)
      : snapshot_(std::make_shared<Ranking>(std::move(given))) {}

  // Handles copy/move freely: copying shares the snapshot (O(1)).

  /// The current snapshot, read-only. The reference (and address) is stable
  /// until the next Reset on *this handle* — callers caching `&get()` must
  /// refresh after an edit that replaces the ranking.
  const Ranking& get() const { return *snapshot_; }
  bool valid() const { return snapshot_ != nullptr; }

  /// Re-points this handle at a new snapshot (the AppendTuple edit path:
  /// the session builds the grown ranking and installs it here). Siblings
  /// keep the old snapshot; replacing a *shared* snapshot counts as a fork
  /// — the per-session copy COW exists to avoid making eagerly.
  void Reset(Ranking given) {
    if (shared()) ++forks_;
    snapshot_ = std::make_shared<Ranking>(std::move(given));
  }

  /// True iff the snapshot has other owners right now.
  bool shared() const {
    return snapshot_ != nullptr && snapshot_.use_count() > 1;
  }

  /// Snapshot identity: two handles with equal ids hold the same physical
  /// ranking buffer (SessionRegistry counts resident copies with this).
  const void* snapshot_id() const { return snapshot_.get(); }
  bool SharesSnapshotWith(const SharedRanking& other) const {
    return snapshot_ != nullptr && snapshot_ == other.snapshot_;
  }

  /// The underlying refcounted snapshot — exposed so tests can hold a
  /// std::weak_ptr and assert the snapshot is freed when the last handle
  /// drops.
  std::shared_ptr<const Ranking> snapshot() const { return snapshot_; }

  /// Cumulative private copies this handle made by replacing a shared
  /// snapshot.
  int64_t forks() const { return forks_; }

 private:
  std::shared_ptr<Ranking> snapshot_;
  int64_t forks_ = 0;
};

}  // namespace rankhow

#endif  // RANKHOW_RANKING_SHARED_RANKING_H_
