#ifndef RANKHOW_RANKING_ERROR_MEASURES_H_
#define RANKHOW_RANKING_ERROR_MEASURES_H_

/// \file error_measures.h
/// Alternative ranking-quality measures the paper mentions alongside
/// position-based error (Sec. I): Kendall-tau-style inversion counts and a
/// top-weighted variant that penalizes mistakes near the head of the ranking
/// more heavily.

#include <vector>

#include "ranking/ranking.h"

namespace rankhow {

/// Number of discordant ranked pairs: pairs (a,b) of ranked tuples with
/// π(a) < π(b) but approx positions ordered strictly the other way, plus
/// half-discordant ties counted per Kendall's tau-b convention is NOT used —
/// this is the plain inversion count on strict orderings (ties in either
/// ranking make a pair concordant-neutral and contribute 0).
long KendallTauDistance(const Ranking& given,
                        const std::vector<int>& approx_positions);

/// Inversions weighted by 1/min(π(a), π(b)): an inversion involving the
/// number-1 tuple costs 1, one between positions 9 and 12 costs 1/9.
double TopWeightedInversionError(const Ranking& given,
                                 const std::vector<int>& approx_positions);

/// Normalized Kendall tau in [-1, 1] over the ranked tuples (1 = identical
/// order, -1 = fully reversed). Neutral pairs (ties) dilute toward 0.
double KendallTauCoefficient(const Ranking& given,
                             const std::vector<int>& approx_positions);

}  // namespace rankhow

#endif  // RANKHOW_RANKING_ERROR_MEASURES_H_
