#ifndef RANKHOW_RANKING_SCORE_RANKING_H_
#define RANKHOW_RANKING_SCORE_RANKING_H_

/// \file score_ranking.h
/// Score-based rankings ρ_W induced by a linear function f_W (Definition 2)
/// and the position-based error of Definition 3, in fast floating-point
/// form. The exact (rational-arithmetic) counterpart lives in verifier.h.

#include <vector>

#include "data/dataset.h"
#include "ranking/ranking.h"
#include "util/status.h"

namespace rankhow {

/// ρ_W positions for ALL tuples: ρ(r) = 1 + #{s : f(s) − f(r) > ε}.
/// O(n log n).
std::vector<int> ScoreRankPositions(const std::vector<double>& scores,
                                    double tie_eps);

/// Positions of selected tuples only (O(n log n) + O(|tuples| log n)).
std::vector<int> ScoreRankPositionsOf(const std::vector<double>& scores,
                                      const std::vector<int>& tuples,
                                      double tie_eps);

/// Fills `sorted_desc` with a descending copy of `scores`, reusing the
/// buffer's capacity. The sort is the O(n log n) part of every position
/// query below; hot evaluators (presolve, SYM-GD sweeps) pay it once per
/// weight vector and reuse the result.
void SortScoresDescending(const std::vector<double>& scores,
                          std::vector<double>* sorted_desc);

/// ρ position of one score value against a precomputed descending array:
/// 1 + #{s : sorted[s] > value + eps}, by binary search.
int ScoreRankPositionFromSorted(const std::vector<double>& sorted_desc,
                                double value, double tie_eps);

/// Positions of selected tuples against a precomputed descending array,
/// written into a caller-owned buffer (resized to tuples.size()).
void ScoreRankPositionsOfSorted(const std::vector<double>& scores,
                                const std::vector<double>& sorted_desc,
                                const std::vector<int>& tuples, double tie_eps,
                                std::vector<int>* positions_out);

/// Position-based error against a precomputed descending array.
long PositionErrorFromSorted(const std::vector<double>& scores,
                             const std::vector<double>& sorted_desc,
                             const Ranking& given, double tie_eps);

/// Position-based error (Definition 3) of the score-based ranking induced by
/// `weights` against the given ranking π: Σ_{r ranked} |ρ_W(r) − π(r)|.
long PositionError(const Dataset& data, const Ranking& given,
                   const std::vector<double>& weights, double tie_eps);

/// Same, reusing precomputed scores.
long PositionErrorFromScores(const std::vector<double>& scores,
                             const Ranking& given, double tie_eps);

/// Per-tuple breakdown |ρ_W(r) − π(r)| for the ranked tuples (ordered as
/// given.ranked_tuples()).
std::vector<long> PositionErrorBreakdown(const std::vector<double>& scores,
                                         const Ranking& given,
                                         double tie_eps);

}  // namespace rankhow

#endif  // RANKHOW_RANKING_SCORE_RANKING_H_
