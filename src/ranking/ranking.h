#ifndef RANKHOW_RANKING_RANKING_H_
#define RANKHOW_RANKING_RANKING_H_

/// \file ranking.h
/// The paper's notion of a *given ranking* π (Definition 1): each tuple gets
/// a positive integer position or ⊥ ("unranked", may appear anywhere below
/// the ranked tuples). Ties are expressed by repeated positions; gaps follow
/// the competition-ranking rule (positions 1,1,3 — never 1,1,2).

#include <vector>

#include "util/status.h"

namespace rankhow {

/// Sentinel position for ⊥ (tuples whose order does not matter).
inline constexpr int kUnranked = -1;

/// How strictly Create() validates the position vector.
enum class RankingValidation {
  /// Full Definition 1: some tuple at position 1, no excessive gaps.
  kStrict,
  /// Offset rankings (Sec. I's "fit positions 30-50" generalization):
  /// positions may start above 1 and leave gaps below the window. Only
  /// achievability is checked — every position p must be realizable by some
  /// score assignment, i.e. enough other tuples exist to fill positions
  /// 1..p-1.
  kOffset,
};

/// An immutable validated ranking π over tuples 0..n-1.
class Ranking {
 public:
  /// Empty placeholder (num_tuples() == 0). Useful as a default member;
  /// every non-trivial instance comes from Create()/FromScores().
  Ranking() = default;

  /// Validates (kStrict — Definition 1):
  ///  * ranked positions are >= 1,
  ///  * some tuple has position 1,
  ///  * no excessive gaps: a tuple at position p has >= p-1 tuples ranked
  ///    strictly above it,
  ///  * (⊥ tuples carry kUnranked).
  /// With kOffset, the first two checks relax as documented on
  /// RankingValidation.
  static Result<Ranking> Create(
      std::vector<int> positions,
      RankingValidation validation = RankingValidation::kStrict);

  /// Builds the ranking induced by sorting `scores` descending (higher score
  /// = better rank), keeping the top `k` scores ranked and assigning ⊥ to the
  /// rest. Scores within `tie_eps` of each other tie (Definition 2
  /// semantics). If the k-th ranked tuple ties with later ones, those later
  /// tuples are ranked too (the top-k set is closed under ties).
  static Ranking FromScores(const std::vector<double>& scores, int k,
                            double tie_eps = 0.0);

  int num_tuples() const { return static_cast<int>(positions_.size()); }
  /// Number of ranked (non-⊥) tuples.
  int k() const { return static_cast<int>(ranked_tuples_.size()); }

  /// Position of a tuple (kUnranked for ⊥).
  int position(int tuple) const { return positions_[tuple]; }
  bool IsRanked(int tuple) const { return positions_[tuple] != kUnranked; }

  /// Ranked tuple ids ordered by position (ties in id order).
  const std::vector<int>& ranked_tuples() const { return ranked_tuples_; }

  const std::vector<int>& positions() const { return positions_; }

  /// Restriction to a position window [lo, hi] (Sec. I: a university ranked
  /// 50th fits a function to positions 30-50). Tuples inside keep their
  /// ORIGINAL positions — the synthesized function should place them where
  /// the given ranking did, with every other tuple free; all others get ⊥.
  /// The result is an offset ranking (see RankingValidation::kOffset).
  Result<Ranking> Window(int lo, int hi) const;

  /// Like Window, but re-ranks the slice starting at position 1 ("treat the
  /// slice as its own top-k"): the synthesized function must pull the slice
  /// to the top of the whole relation. A much stronger requirement than
  /// Window — use it only when that is really what you mean.
  Result<Ranking> WindowRebased(int lo, int hi) const;

 private:
  explicit Ranking(std::vector<int> positions);

  std::vector<int> positions_;
  std::vector<int> ranked_tuples_;
};

}  // namespace rankhow

#endif  // RANKHOW_RANKING_RANKING_H_
