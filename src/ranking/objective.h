#ifndef RANKHOW_RANKING_OBJECTIVE_H_
#define RANKHOW_RANKING_OBJECTIVE_H_

/// \file objective.h
/// The optimization objective of an OPT instance. The paper's headline
/// objective is total position-based error (Definition 3), but Section I
/// notes that R"ANKHOW" "supports Kendall's Tau and other measures that are
/// based on inversions, including variations that assign a greater penalty
/// to errors higher in the ranking". This module makes the objective a
/// first-class, solver-wide choice:
///
///  * kPositionError           Σ_r |ρ(r) − π(r)|                (Def. 3)
///  * kWeightedPositionError   Σ_r penalty(π(r)) · |ρ(r) − π(r)|
///  * kInversions              #{(a,b) : π(a) < π(b), f(b) − f(a) > ε}
///                             (Kendall-tau distance over ranked pairs)
///
/// All three are integral, so branch-and-bound keeps its ceil() bound
/// tightening. The same spec drives the MILP objective, the presolve and
/// primal-heuristic evaluations, the spatial bounds, and exact verification.

#include <vector>

#include "data/dataset.h"
#include "ranking/ranking.h"

namespace rankhow {

enum class ObjectiveKind {
  kPositionError,
  kWeightedPositionError,
  kInversions,
};

const char* ObjectiveKindName(ObjectiveKind kind);

struct RankingObjectiveSpec {
  ObjectiveKind kind = ObjectiveKind::kPositionError;
  /// kWeightedPositionError: penalties[p] multiplies the position error of a
  /// tuple GIVEN at position p (1-based; index 0 unused). Positions beyond
  /// the vector get penalty 1; an empty vector means uniform penalties
  /// (== kPositionError). Integer penalties keep the objective integral.
  std::vector<long> penalties;

  long PenaltyAt(int given_position) const {
    if (kind != ObjectiveKind::kWeightedPositionError) return 1;
    if (given_position < 1 ||
        given_position >= static_cast<int>(penalties.size())) {
      return 1;
    }
    return penalties[given_position];
  }

  /// Convenience: top-heavy penalties k, k-1, ..., 1 for positions 1..k
  /// ("greater penalty to errors higher in the ranking").
  static RankingObjectiveSpec TopHeavy(int k);
  /// Plain Kendall-tau distance.
  static RankingObjectiveSpec Inversions();
};

/// Evaluates the objective of weight vector `w` in double arithmetic under
/// the ε-tie semantics of Definition 2. This is the single authority used
/// by presolve, incumbent heuristics, and the spatial search.
long ObjectiveOf(const Dataset& data, const Ranking& given,
                 const std::vector<double>& w, double tie_eps,
                 const RankingObjectiveSpec& spec);

/// Same, from precomputed scores (avoids rescoring in hot loops).
long ObjectiveOfScores(const Dataset& data, const Ranking& given,
                       const std::vector<double>& scores, double tie_eps,
                       const RankingObjectiveSpec& spec);

/// Same, additionally reusing a precomputed descending copy of `scores`
/// (from SortScoresDescending) so the O(n log n) sort is paid once per
/// weight vector even when positions are needed for constraints AND the
/// objective. `sorted_desc` is ignored for the inversions objective.
long ObjectiveOfScoresSorted(const Dataset& data, const Ranking& given,
                             const std::vector<double>& scores,
                             const std::vector<double>& sorted_desc,
                             double tie_eps, const RankingObjectiveSpec& spec);

}  // namespace rankhow

#endif  // RANKHOW_RANKING_OBJECTIVE_H_
