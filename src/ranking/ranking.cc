#include "ranking/ranking.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"
#include "util/string_util.h"

namespace rankhow {

Ranking::Ranking(std::vector<int> positions)
    : positions_(std::move(positions)) {
  for (int t = 0; t < num_tuples(); ++t) {
    if (positions_[t] != kUnranked) ranked_tuples_.push_back(t);
  }
  std::sort(ranked_tuples_.begin(), ranked_tuples_.end(), [this](int a, int b) {
    if (positions_[a] != positions_[b]) return positions_[a] < positions_[b];
    return a < b;
  });
}

Result<Ranking> Ranking::Create(std::vector<int> positions,
                                RankingValidation validation) {
  const int n = static_cast<int>(positions.size());
  int ranked = 0;
  for (int p : positions) {
    if (p == kUnranked) continue;
    if (p < 1) {
      return Status::Invalid(
          StrFormat("position %d invalid: must be >= 1 or kUnranked", p));
    }
    if (p > n) {
      return Status::Invalid(StrFormat(
          "position %d unachievable: only %d tuples exist", p, n));
    }
    ++ranked;
  }
  if (ranked == 0) return Status::Invalid("ranking has no ranked tuple");
  std::vector<int> ranked_positions;
  ranked_positions.reserve(ranked);
  for (int p : positions) {
    if (p != kUnranked) ranked_positions.push_back(p);
  }
  std::sort(ranked_positions.begin(), ranked_positions.end());

  if (validation == RankingValidation::kStrict) {
    // Position-1 and no-excessive-gap checks of Definition 1.
    if (ranked_positions.front() != 1) {
      return Status::Invalid("no tuple has position 1");
    }
    for (size_t i = 0; i < ranked_positions.size(); ++i) {
      // Tuple at position p needs >= p-1 tuples strictly above. In sorted
      // order, the i-th entry (0-based) has exactly `first occurrence index`
      // entries before it with strictly smaller positions.
      int p = ranked_positions[i];
      size_t strictly_above =
          std::lower_bound(ranked_positions.begin(), ranked_positions.end(),
                           p) -
          ranked_positions.begin();
      if (static_cast<int>(strictly_above) < p - 1) {
        return Status::Invalid(StrFormat(
            "excessive gap: position %d has only %zu tuples above", p,
            strictly_above));
      }
    }
  } else {
    // kOffset achievability: position p needs p-1 tuples that COULD rank
    // above — ranked tuples strictly above plus all unranked tuples.
    const int unranked = n - ranked;
    for (int p : ranked_positions) {
      size_t strictly_above =
          std::lower_bound(ranked_positions.begin(), ranked_positions.end(),
                           p) -
          ranked_positions.begin();
      if (static_cast<int>(strictly_above) + unranked < p - 1) {
        return Status::Invalid(StrFormat(
            "offset position %d unachievable: only %zu ranked tuples above "
            "and %d unranked tuples available",
            p, strictly_above, unranked));
      }
    }
  }
  return Ranking(std::move(positions));
}

Ranking Ranking::FromScores(const std::vector<double>& scores, int k,
                            double tie_eps) {
  const int n = static_cast<int>(scores.size());
  RH_CHECK(k >= 1 && k <= n) << "FromScores: k out of range";
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return scores[a] > scores[b]; });

  // Definition 2: rank of r = 1 + #{s : f(s) - f(r) > eps}. Computed over
  // the descending order with a two-pointer scan.
  std::vector<int> positions(n, kUnranked);
  int beats = 0;  // tuples with score > scores[order[i]] + eps
  int j = 0;
  int last_position = 0;
  for (int i = 0; i < n; ++i) {
    while (scores[order[j]] - scores[order[i]] > tie_eps) {
      ++j;
      ++beats;
    }
    int position = beats + 1;
    // Keep the top-k closed under ties: stop only when a NEW position would
    // exceed k.
    if (position > k && position != last_position) break;
    positions[order[i]] = position;
    last_position = position;
  }
  auto result = Create(std::move(positions));
  RH_CHECK(result.ok()) << "FromScores produced invalid ranking: "
                        << result.status().ToString();
  return *std::move(result);
}

Result<Ranking> Ranking::Window(int lo, int hi) const {
  if (lo < 1 || hi < lo) return Status::Invalid("bad window bounds");
  // Keep original positions: the OPT objective then asks the scoring
  // function to place each slice tuple where the given ranking did, with
  // every tuple outside the slice unconstrained (⊥).
  std::vector<int> positions(num_tuples(), kUnranked);
  int kept = 0;
  for (int t = 0; t < num_tuples(); ++t) {
    int p = positions_[t];
    if (p != kUnranked && p >= lo && p <= hi) {
      positions[t] = p;
      ++kept;
    }
  }
  if (kept == 0) return Status::Invalid("empty position window");
  return Create(std::move(positions), RankingValidation::kOffset);
}

Result<Ranking> Ranking::WindowRebased(int lo, int hi) const {
  if (lo < 1 || hi < lo) return Status::Invalid("bad window bounds");
  // Re-rank the tuples inside the window with competition ranking (ties may
  // straddle the window edge, so simple position shifting could produce a
  // ranking that does not start at 1).
  std::vector<int> in_window;
  for (int t = 0; t < num_tuples(); ++t) {
    int p = positions_[t];
    if (p != kUnranked && p >= lo && p <= hi) in_window.push_back(t);
  }
  if (in_window.empty()) return Status::Invalid("empty position window");
  std::vector<int> positions(num_tuples(), kUnranked);
  for (int t : in_window) {
    int above = 0;
    for (int s : in_window) {
      if (positions_[s] < positions_[t]) ++above;
    }
    positions[t] = above + 1;
  }
  return Create(std::move(positions));
}

}  // namespace rankhow
