#ifndef RANKHOW_RANKING_VERIFIER_H_
#define RANKHOW_RANKING_VERIFIER_H_

/// \file verifier.h
/// Exact verification of solver output (Sec. V-A of the paper). The MILP
/// solver works in floating point, and "solutions" can be false positives:
/// the solver believes indicator values consistent with a score ranking that
/// precise arithmetic refutes. This verifier recomputes the score-based
/// ranking of the returned weight vector with *exact* dyadic-rational
/// arithmetic (the role BigDecimal plays in the paper) and reports the true
/// position error.
///
/// Performance: score differences are first evaluated in double with a
/// certified forward error bound; only comparisons within the uncertainty
/// band fall back to exact arithmetic, so verification stays near
/// double-speed on large inputs while remaining exact.

#include <vector>

#include "data/dataset.h"
#include "ranking/objective.h"
#include "ranking/ranking.h"
#include "util/status.h"

namespace rankhow {

class ThreadPool;

struct VerificationReport {
  /// True when the claimed error matches the exact recomputation.
  bool consistent = false;
  /// Exact objective value of the weight vector under Definition 2/3 (and
  /// the chosen RankingObjectiveSpec).
  long exact_error = 0;
  /// The error value the solver claimed.
  long claimed_error = 0;
  /// Exact ρ_W positions of the ranked tuples (order of ranked_tuples()).
  std::vector<int> exact_positions;
  /// How many pairwise comparisons needed the exact-arithmetic path.
  long exact_comparisons = 0;
  /// Total pairwise comparisons.
  long total_comparisons = 0;
};

/// Exactly recomputes the position error of `weights` and compares with
/// `claimed_error`. `tie_eps` is the ε of Definition 2.
Result<VerificationReport> VerifySolution(const Dataset& data,
                                          const Ranking& given,
                                          const std::vector<double>& weights,
                                          double tie_eps, long claimed_error);

/// Objective-aware variant: verifies position-error, weighted, or
/// inversion objectives. Inversions are decided by exact pairwise
/// comparisons (a pair's discordance is NOT derivable from ρ positions when
/// ε-ties are intransitive).
Result<VerificationReport> VerifySolutionObjective(
    const Dataset& data, const Ranking& given,
    const std::vector<double>& weights, double tie_eps, long claimed_error,
    const RankingObjectiveSpec& spec);

/// Exact ρ_W positions of the given tuples (1 + #{s : f(s) − f(r) > ε},
/// decided in exact arithmetic). Runs on the fused batched kernel
/// (kernels::FusedExactRankPositions): certified double scores first, exact
/// dyadic fallback only inside the uncertainty band. An optional ThreadPool
/// parallelizes the pivot scans; verdicts and comparison counters are
/// identical regardless of pool size.
std::vector<int> ExactScoreRankPositionsOf(const Dataset& data,
                                           const std::vector<double>& weights,
                                           const std::vector<int>& tuples,
                                           double tie_eps,
                                           long* exact_comparisons = nullptr,
                                           long* total_comparisons = nullptr,
                                           ThreadPool* pool = nullptr);

/// Exact sign of f_W(s) − f_W(r) − ε computed with dyadic rationals — the
/// arbiter every certified-double path falls back to inside its uncertainty
/// band (also the reference comparator for kernel equivalence tests).
int ExactScoreDiffSign(const Dataset& data, const std::vector<double>& weights,
                       int s, int r, double tie_eps);

}  // namespace rankhow

#endif  // RANKHOW_RANKING_VERIFIER_H_
