#include "ranking/error_measures.h"

#include "util/logging.h"

namespace rankhow {

namespace {

/// Applies `fn(a, b)` to every ordered pair of ranked tuples with
/// π(a) < π(b) strictly.
template <typename Fn>
void ForEachStrictGivenPair(const Ranking& given, Fn&& fn) {
  const std::vector<int>& ranked = given.ranked_tuples();
  for (size_t i = 0; i < ranked.size(); ++i) {
    for (size_t j = i + 1; j < ranked.size(); ++j) {
      int a = ranked[i];
      int b = ranked[j];
      if (given.position(a) < given.position(b)) {
        fn(a, b);
      } else if (given.position(b) < given.position(a)) {
        fn(b, a);
      }
      // Tied pairs are neutral.
    }
  }
}

}  // namespace

long KendallTauDistance(const Ranking& given,
                        const std::vector<int>& approx_positions) {
  RH_CHECK(static_cast<int>(approx_positions.size()) == given.num_tuples());
  long inversions = 0;
  ForEachStrictGivenPair(given, [&](int above, int below) {
    if (approx_positions[above] > approx_positions[below]) ++inversions;
  });
  return inversions;
}

double TopWeightedInversionError(const Ranking& given,
                                 const std::vector<int>& approx_positions) {
  RH_CHECK(static_cast<int>(approx_positions.size()) == given.num_tuples());
  double error = 0;
  ForEachStrictGivenPair(given, [&](int above, int below) {
    if (approx_positions[above] > approx_positions[below]) {
      error += 1.0 / static_cast<double>(given.position(above));
    }
  });
  return error;
}

double KendallTauCoefficient(const Ranking& given,
                             const std::vector<int>& approx_positions) {
  RH_CHECK(static_cast<int>(approx_positions.size()) == given.num_tuples());
  long concordant = 0;
  long discordant = 0;
  ForEachStrictGivenPair(given, [&](int above, int below) {
    if (approx_positions[above] < approx_positions[below]) {
      ++concordant;
    } else if (approx_positions[above] > approx_positions[below]) {
      ++discordant;
    }
  });
  long k = given.k();
  long total_pairs = k * (k - 1) / 2;
  if (total_pairs == 0) return 1.0;
  return static_cast<double>(concordant - discordant) /
         static_cast<double>(total_pairs);
}

}  // namespace rankhow
