#include "ranking/error_measures.h"

#include "util/logging.h"

namespace rankhow {

namespace {

/// Flat, contiguous copies of the π positions and approximate positions of
/// the ranked tuples. The O(k²) pair loops below then stream two k-sized
/// arrays instead of doing scattered n-sized `approx_positions[tuple]`
/// lookups per pair — the same hoist-to-flat-arrays idiom as the scoring
/// kernels (see DESIGN.md "Dataset layout & kernel contracts").
struct RankedPairView {
  std::vector<int> given_pos;
  std::vector<int> approx_pos;

  RankedPairView(const Ranking& given,
                 const std::vector<int>& approx_positions) {
    const std::vector<int>& ranked = given.ranked_tuples();
    given_pos.reserve(ranked.size());
    approx_pos.reserve(ranked.size());
    for (int t : ranked) {
      given_pos.push_back(given.position(t));
      approx_pos.push_back(approx_positions[t]);
    }
  }
};

/// Applies `fn(above, below)` (indices into the view's flat arrays) to every
/// pair of ranked tuples whose π positions are strictly ordered.
template <typename Fn>
void ForEachStrictGivenPair(const RankedPairView& view, Fn&& fn) {
  const size_t k = view.given_pos.size();
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      if (view.given_pos[i] < view.given_pos[j]) {
        fn(i, j);
      } else if (view.given_pos[j] < view.given_pos[i]) {
        fn(j, i);
      }
      // Tied pairs are neutral.
    }
  }
}

}  // namespace

long KendallTauDistance(const Ranking& given,
                        const std::vector<int>& approx_positions) {
  RH_CHECK(static_cast<int>(approx_positions.size()) == given.num_tuples());
  RankedPairView view(given, approx_positions);
  long inversions = 0;
  ForEachStrictGivenPair(view, [&](size_t above, size_t below) {
    if (view.approx_pos[above] > view.approx_pos[below]) ++inversions;
  });
  return inversions;
}

double TopWeightedInversionError(const Ranking& given,
                                 const std::vector<int>& approx_positions) {
  RH_CHECK(static_cast<int>(approx_positions.size()) == given.num_tuples());
  RankedPairView view(given, approx_positions);
  double error = 0;
  ForEachStrictGivenPair(view, [&](size_t above, size_t below) {
    if (view.approx_pos[above] > view.approx_pos[below]) {
      error += 1.0 / static_cast<double>(view.given_pos[above]);
    }
  });
  return error;
}

double KendallTauCoefficient(const Ranking& given,
                             const std::vector<int>& approx_positions) {
  RH_CHECK(static_cast<int>(approx_positions.size()) == given.num_tuples());
  RankedPairView view(given, approx_positions);
  long concordant = 0;
  long discordant = 0;
  ForEachStrictGivenPair(view, [&](size_t above, size_t below) {
    if (view.approx_pos[above] < view.approx_pos[below]) {
      ++concordant;
    } else if (view.approx_pos[above] > view.approx_pos[below]) {
      ++discordant;
    }
  });
  long k = given.k();
  long total_pairs = k * (k - 1) / 2;
  if (total_pairs == 0) return 1.0;
  return static_cast<double>(concordant - discordant) /
         static_cast<double>(total_pairs);
}

}  // namespace rankhow
