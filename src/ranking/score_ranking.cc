#include "ranking/score_ranking.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace rankhow {

namespace {

/// Sorted (descending) copy of scores.
std::vector<double> SortedDescending(const std::vector<double>& scores) {
  std::vector<double> sorted = scores;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  return sorted;
}

/// #{s : scores[s] > value + eps} via binary search on the descending array.
int CountBeating(const std::vector<double>& sorted_desc, double value,
                 double eps) {
  // With comparator `>` on a descending array, lower_bound yields the first
  // index where sorted[i] <= value + eps; everything before it beats value
  // strictly.
  auto it = std::lower_bound(sorted_desc.begin(), sorted_desc.end(),
                             value + eps, std::greater<double>());
  return static_cast<int>(it - sorted_desc.begin());
}

}  // namespace

std::vector<int> ScoreRankPositions(const std::vector<double>& scores,
                                    double tie_eps) {
  const int n = static_cast<int>(scores.size());
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return scores[a] > scores[b]; });
  std::vector<int> positions(n, 0);
  int beats = 0;
  int j = 0;
  for (int i = 0; i < n; ++i) {
    while (scores[order[j]] - scores[order[i]] > tie_eps) {
      ++j;
      ++beats;
    }
    positions[order[i]] = beats + 1;
  }
  return positions;
}

std::vector<int> ScoreRankPositionsOf(const std::vector<double>& scores,
                                      const std::vector<int>& tuples,
                                      double tie_eps) {
  std::vector<double> sorted = SortedDescending(scores);
  std::vector<int> positions;
  ScoreRankPositionsOfSorted(scores, sorted, tuples, tie_eps, &positions);
  return positions;
}

void SortScoresDescending(const std::vector<double>& scores,
                          std::vector<double>* sorted_desc) {
  sorted_desc->assign(scores.begin(), scores.end());
  std::sort(sorted_desc->begin(), sorted_desc->end(), std::greater<double>());
}

int ScoreRankPositionFromSorted(const std::vector<double>& sorted_desc,
                                double value, double tie_eps) {
  return CountBeating(sorted_desc, value, tie_eps) + 1;
}

void ScoreRankPositionsOfSorted(const std::vector<double>& scores,
                                const std::vector<double>& sorted_desc,
                                const std::vector<int>& tuples, double tie_eps,
                                std::vector<int>* positions_out) {
  positions_out->resize(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) {
    (*positions_out)[i] =
        CountBeating(sorted_desc, scores[tuples[i]], tie_eps) + 1;
  }
}

long PositionErrorFromScores(const std::vector<double>& scores,
                             const Ranking& given, double tie_eps) {
  std::vector<double> sorted = SortedDescending(scores);
  return PositionErrorFromSorted(scores, sorted, given, tie_eps);
}

long PositionErrorFromSorted(const std::vector<double>& scores,
                             const std::vector<double>& sorted_desc,
                             const Ranking& given, double tie_eps) {
  long error = 0;
  for (int t : given.ranked_tuples()) {
    int rho = CountBeating(sorted_desc, scores[t], tie_eps) + 1;
    error += std::labs(static_cast<long>(rho) - given.position(t));
  }
  return error;
}

long PositionError(const Dataset& data, const Ranking& given,
                   const std::vector<double>& weights, double tie_eps) {
  RH_CHECK(data.num_tuples() == given.num_tuples());
  return PositionErrorFromScores(data.Scores(weights), given, tie_eps);
}

std::vector<long> PositionErrorBreakdown(const std::vector<double>& scores,
                                         const Ranking& given,
                                         double tie_eps) {
  std::vector<double> sorted = SortedDescending(scores);
  std::vector<long> breakdown;
  breakdown.reserve(given.ranked_tuples().size());
  for (int t : given.ranked_tuples()) {
    int rho = CountBeating(sorted, scores[t], tie_eps) + 1;
    breakdown.push_back(std::labs(static_cast<long>(rho) - given.position(t)));
  }
  return breakdown;
}

}  // namespace rankhow
