#include "ranking/verifier.h"

#include <cmath>

#include "math/dyadic.h"
#include "util/logging.h"

namespace rankhow {

namespace {

/// Exact sign of f_W(s) − f_W(r) − ε computed with dyadic rationals.
int ExactDiffSign(const Dataset& data, const std::vector<double>& weights,
                  int s, int r, double tie_eps) {
  Dyadic diff;
  for (int a = 0; a < data.num_attributes(); ++a) {
    if (weights[a] == 0.0) continue;
    Dyadic w = Dyadic::FromDouble(weights[a]);
    Dyadic dv = Dyadic::FromDouble(data.value(s, a)) -
                Dyadic::FromDouble(data.value(r, a));
    diff += w * dv;
  }
  diff -= Dyadic::FromDouble(tie_eps);
  return diff.sign();
}

}  // namespace

std::vector<int> ExactScoreRankPositionsOf(const Dataset& data,
                                           const std::vector<double>& weights,
                                           const std::vector<int>& tuples,
                                           double tie_eps,
                                           long* exact_comparisons,
                                           long* total_comparisons) {
  RH_CHECK(static_cast<int>(weights.size()) == data.num_attributes());
  const int n = data.num_tuples();
  const int m = data.num_attributes();
  long exact_used = 0;
  long total = 0;

  // Double scores with a certified forward error bound. Each score is a sum
  // of m products; the rounding error of a dot product is bounded by
  // (m+2)·u·Σ|wᵢAᵢ| with unit roundoff u = 2^-53. A score DIFFERENCE then
  // carries at most err(s) + err(r) + u·|f(s)−f(r)| of error; we fold the
  // last term into a slightly inflated constant.
  std::vector<double> scores(n, 0.0);
  std::vector<double> score_err(n, 0.0);
  const double u = std::ldexp(1.0, -53);
  for (int t = 0; t < n; ++t) {
    double sum = 0;
    double abs_sum = 0;
    for (int a = 0; a < m; ++a) {
      double term = weights[a] * data.value(t, a);
      sum += term;
      abs_sum += std::abs(term);
    }
    scores[t] = sum;
    score_err[t] = (m + 3) * u * abs_sum;
  }

  std::vector<int> positions;
  positions.reserve(tuples.size());
  for (int r : tuples) {
    int beats = 0;
    for (int s = 0; s < n; ++s) {
      if (s == r) continue;
      ++total;
      double diff = scores[s] - scores[r];
      double band = score_err[s] + score_err[r];
      if (diff - tie_eps > band) {
        ++beats;  // certainly beats
      } else if (diff - tie_eps < -band) {
        // certainly does not beat
      } else {
        ++exact_used;
        if (ExactDiffSign(data, weights, s, r, tie_eps) > 0) ++beats;
      }
    }
    positions.push_back(beats + 1);
  }
  if (exact_comparisons != nullptr) *exact_comparisons = exact_used;
  if (total_comparisons != nullptr) *total_comparisons = total;
  return positions;
}

Result<VerificationReport> VerifySolution(const Dataset& data,
                                          const Ranking& given,
                                          const std::vector<double>& weights,
                                          double tie_eps, long claimed_error) {
  return VerifySolutionObjective(data, given, weights, tie_eps, claimed_error,
                                 RankingObjectiveSpec{});
}

Result<VerificationReport> VerifySolutionObjective(
    const Dataset& data, const Ranking& given,
    const std::vector<double>& weights, double tie_eps, long claimed_error,
    const RankingObjectiveSpec& spec) {
  if (data.num_tuples() != given.num_tuples()) {
    return Status::Invalid("dataset / ranking size mismatch");
  }
  if (static_cast<int>(weights.size()) != data.num_attributes()) {
    return Status::Invalid("weight vector arity mismatch");
  }
  VerificationReport report;
  report.claimed_error = claimed_error;
  report.exact_positions = ExactScoreRankPositionsOf(
      data, weights, given.ranked_tuples(), tie_eps,
      &report.exact_comparisons, &report.total_comparisons);
  const std::vector<int>& ranked = given.ranked_tuples();
  long error = 0;
  if (spec.kind == ObjectiveKind::kInversions) {
    // Pairwise exact comparisons: for an ordered pair (a above b in π) the
    // discordance test is sign(f(b) − f(a) − ε) > 0.
    for (size_t i = 0; i < ranked.size(); ++i) {
      for (size_t j = i + 1; j < ranked.size(); ++j) {
        int a = ranked[i];
        int b = ranked[j];
        if (given.position(a) == given.position(b)) continue;
        if (given.position(a) > given.position(b)) std::swap(a, b);
        ++report.total_comparisons;
        ++report.exact_comparisons;
        if (ExactDiffSign(data, weights, b, a, tie_eps) > 0) ++error;
      }
    }
  } else {
    for (size_t i = 0; i < ranked.size(); ++i) {
      error += spec.PenaltyAt(given.position(ranked[i])) *
               std::labs(static_cast<long>(report.exact_positions[i]) -
                         given.position(ranked[i]));
    }
  }
  report.exact_error = error;
  report.consistent = error == claimed_error;
  return report;
}

}  // namespace rankhow
