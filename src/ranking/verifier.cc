#include "ranking/verifier.h"

#include <cmath>

#include "data/kernels.h"
#include "math/dyadic.h"
#include "util/logging.h"

namespace rankhow {

int ExactScoreDiffSign(const Dataset& data, const std::vector<double>& weights,
                       int s, int r, double tie_eps) {
  Dyadic diff;
  for (int a = 0; a < data.num_attributes(); ++a) {
    if (weights[a] == 0.0) continue;
    Dyadic w = Dyadic::FromDouble(weights[a]);
    Dyadic dv = Dyadic::FromDouble(data.value(s, a)) -
                Dyadic::FromDouble(data.value(r, a));
    diff += w * dv;
  }
  diff -= Dyadic::FromDouble(tie_eps);
  return diff.sign();
}

std::vector<int> ExactScoreRankPositionsOf(const Dataset& data,
                                           const std::vector<double>& weights,
                                           const std::vector<int>& tuples,
                                           double tie_eps,
                                           long* exact_comparisons,
                                           long* total_comparisons,
                                           ThreadPool* pool) {
  RH_CHECK(static_cast<int>(weights.size()) == data.num_attributes());
  // Scratch persists per thread so repeated verification (presolve
  // revalidation, SYM-GD sweeps) allocates nothing in steady state.
  static thread_local kernels::ExactRankScratch scratch;
  std::vector<int> positions;
  kernels::FusedExactRankPositions(
      data, weights, tuples, tie_eps,
      [&](int s, int r) {
        return ExactScoreDiffSign(data, weights, s, r, tie_eps);
      },
      &scratch, &positions, exact_comparisons, total_comparisons, pool);
  return positions;
}

Result<VerificationReport> VerifySolution(const Dataset& data,
                                          const Ranking& given,
                                          const std::vector<double>& weights,
                                          double tie_eps, long claimed_error) {
  return VerifySolutionObjective(data, given, weights, tie_eps, claimed_error,
                                 RankingObjectiveSpec{});
}

Result<VerificationReport> VerifySolutionObjective(
    const Dataset& data, const Ranking& given,
    const std::vector<double>& weights, double tie_eps, long claimed_error,
    const RankingObjectiveSpec& spec) {
  if (data.num_tuples() != given.num_tuples()) {
    return Status::Invalid("dataset / ranking size mismatch");
  }
  if (static_cast<int>(weights.size()) != data.num_attributes()) {
    return Status::Invalid("weight vector arity mismatch");
  }
  VerificationReport report;
  report.claimed_error = claimed_error;
  report.exact_positions = ExactScoreRankPositionsOf(
      data, weights, given.ranked_tuples(), tie_eps,
      &report.exact_comparisons, &report.total_comparisons);
  const std::vector<int>& ranked = given.ranked_tuples();
  long error = 0;
  if (spec.kind == ObjectiveKind::kInversions) {
    // Pairwise comparisons: for an ordered pair (a above b in π) the
    // discordance test is sign(f(b) − f(a) − ε) > 0. Certified doubles
    // decide pairs outside the uncertainty band; only ambiguous pairs pay
    // for exact dyadic arithmetic.
    const int n = data.num_tuples();
    static thread_local std::vector<double> scores_buf;
    static thread_local std::vector<double> err_buf;
    scores_buf.resize(n);
    err_buf.resize(n);
    kernels::BatchScoresWithErrorBound(data, weights, scores_buf.data(),
                                       err_buf.data());
    for (size_t i = 0; i < ranked.size(); ++i) {
      for (size_t j = i + 1; j < ranked.size(); ++j) {
        int a = ranked[i];
        int b = ranked[j];
        if (given.position(a) == given.position(b)) continue;
        if (given.position(a) > given.position(b)) std::swap(a, b);
        ++report.total_comparisons;
        const double x = (scores_buf[b] - scores_buf[a]) - tie_eps;
        const double band = err_buf[b] + err_buf[a];
        if (x > band) {
          ++error;
        } else if (x < -band) {
          // certainly concordant
        } else {
          ++report.exact_comparisons;
          if (ExactScoreDiffSign(data, weights, b, a, tie_eps) > 0) ++error;
        }
      }
    }
  } else {
    for (size_t i = 0; i < ranked.size(); ++i) {
      error += spec.PenaltyAt(given.position(ranked[i])) *
               std::labs(static_cast<long>(report.exact_positions[i]) -
                         given.position(ranked[i]));
    }
  }
  report.exact_error = error;
  report.consistent = error == claimed_error;
  return report;
}

}  // namespace rankhow
