#!/usr/bin/env bash
# One-command CI gate: the tier-1 configure/build/ctest line from ROADMAP.md
# plus the sanitizer suites from CMakePresets.json — `ctest -L tsan` under
# the tsan preset (data races in the parallel search + session server +
# epoll reactor transport) and the full ctest run under the asan preset
# (heap errors/leaks, notably the COW snapshot lifecycle and per-connection
# teardown through the reactor's ops thread), with the reactor/socket
# suites re-run explicitly so the network gates are visible in the log.
# The loopback-TCP smoke drives the real rankhow_cli --listen binary over
# /dev/tcp in both text and binary framing.
#
# The chaos suite rides both sanitizer gates: `ctest --preset tsan` picks
# up chaos_tests_nokill (fault injection, journal recovery, shedding —
# the subprocess-free subset; SIGKILLing children under tsan is noise),
# and the asan preset's full ctest includes the kill/crash tests that
# SIGKILL a real --listen server mid-session. The explicit `-L chaos` run
# below makes the durability gate visible in the log like the socket one.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: default build + full ctest =="
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== loopback-TCP smoke: rankhow_cli --listen over /dev/tcp =="
bash scripts/smoke_listen.sh build

echo "== coordinator smoke: rankhow_coord fronting 2 workers =="
# Two real worker processes behind the shard coordinator, two clients on
# two pinned shards; proven results must equal serial --session replays
# and the aggregated stats line must carry the coord_* breakdown.
bash scripts/smoke_coord.sh build

echo "== tsan: thread-sanitized build + ctest -L tsan =="
cmake --preset tsan
cmake --build --preset tsan -j
ctest --preset tsan

echo "== tsan reactor gate: net suite, explicitly =="
# The epoll reactor is the most thread-dense subsystem (event loops + ops
# thread + accept thread + strand completions all touching per-connection
# state); the explicit -L net run makes its race gate visible in the log.
(cd build-tsan && ctest --output-on-failure -L net)

echo "== tsan cache gate: warm-start cache suite, explicitly =="
# The persistent warm cache runs a background writer thread against
# concurrent publish/draw traffic from every registry strand; the -L cache
# run makes its race gate visible in the log (the suite includes a
# 4-thread publish/draw hammer for exactly this preset).
(cd build-tsan && ctest --output-on-failure -L cache)

echo "== tsan coord gate: shard coordinator suite, explicitly =="
# The coordinator races downstream session threads against upstream reader
# threads, the health prober, and the failover replay path; the -L coord
# run makes that gate visible in the log. (Kill-based failover lives in
# tests/chaos and rides the asan chaos gate below.)
(cd build-tsan && ctest --output-on-failure -L coord)

echo "== asan: address-sanitized build + full ctest =="
cmake --preset asan
cmake --build --preset asan -j
ctest --preset asan

echo "== asan socket gate: net + server suites, explicitly =="
(cd build-asan && ctest --output-on-failure -R '^(net|server)_tests$')

echo "== asan chaos gate: journal recovery + SIGKILL/crash tests =="
(cd build-asan && ctest --output-on-failure -L chaos)

echo "== asan coord gate: shard coordinator suite, explicitly =="
# Failover tears down upstream connections while reader threads and
# pending proxy entries are still live; asan watches those teardown paths.
(cd build-asan && ctest --output-on-failure -L coord)

echo "== asan cache gate: warm-start cache suite, explicitly =="
# The cache's round-trip/corruption tests shuttle heap-backed records
# through open/close/reopen cycles; asan watches the file-descriptor-
# adjacent buffers and the writer thread's teardown path.
(cd build-asan && ctest --output-on-failure -L cache)

echo "== ubsan: UB-sanitized build + ctest -L kernels =="
# The batched scoring kernels (src/data/kernels.cc) lean on blocked FP
# accumulation and branch-free integer masks; the ubsan preset runs the
# kernel equivalence suite to catch signed overflow / bad shifts / invalid
# casts that -Wall cannot see.
cmake --preset ubsan
cmake --build --preset ubsan -j
ctest --preset ubsan

echo "check.sh: all gates passed"
