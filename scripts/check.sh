#!/usr/bin/env bash
# One-command CI gate: the tier-1 configure/build/ctest line from ROADMAP.md
# plus the ThreadSanitizer concurrency suite (`ctest -L tsan` under the tsan
# preset from CMakePresets.json).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: default build + full ctest =="
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== tsan: thread-sanitized build + ctest -L tsan =="
cmake --preset tsan
cmake --build --preset tsan -j
ctest --preset tsan

echo "check.sh: all gates passed"
