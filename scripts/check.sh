#!/usr/bin/env bash
# One-command CI gate: the tier-1 configure/build/ctest line from ROADMAP.md
# plus the sanitizer suites from CMakePresets.json — `ctest -L tsan` under
# the tsan preset (data races in the parallel search + session server) and
# the full ctest run under the asan preset (heap errors/leaks, notably the
# COW snapshot lifecycle).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: default build + full ctest =="
cmake -B build -S .
cmake --build build -j
(cd build && ctest --output-on-failure -j)

echo "== tsan: thread-sanitized build + ctest -L tsan =="
cmake --preset tsan
cmake --build --preset tsan -j
ctest --preset tsan

echo "== asan: address-sanitized build + full ctest =="
cmake --preset asan
cmake --build --preset asan -j
ctest --preset asan

echo "check.sh: all gates passed"
