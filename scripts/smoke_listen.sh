#!/usr/bin/env bash
# Loopback-TCP smoke for the network server (`rankhow_cli --listen`): start
# the CLI on an ephemeral 127.0.0.1 port fronting TWO datasets, drive the
# wire protocol over bash's /dev/tcp from two client connections bound to
# different dataset ids, and assert the tagged responses — the end-to-end
# walk of ISSUE 5's acceptance line through the real binary. check.sh runs
# this right after the tier-1 build; it needs only bash + coreutils.
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"
CLI="$BUILD/rankhow_cli"
if [[ ! -x "$CLI" ]]; then
  echo "smoke_listen: $CLI not built" >&2
  exit 1
fi

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  # TERM, give the server a moment to exit, then KILL, and always reap —
  # an unreaped child holds the listening socket as a zombie until the
  # harness itself exits, which makes back-to-back runs flaky.
  if [[ -n "$SERVER_PID" ]]; then
    kill "$SERVER_PID" 2>/dev/null || true
    for _ in $(seq 1 20); do
      kill -0 "$SERVER_PID" 2>/dev/null || break
      sleep 0.05
    done
    kill -9 "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

# Two tiny ranked CSVs (file order ranks the first k rows). Identical
# content is fine: the point is that the ids route to distinct registries.
cat > "$WORK/alpha.csv" <<'CSV'
PTS,REB,AST
9,4,7
8,6,2
7,7,5
5,2,8
3,9,1
2,1,3
CSV
cp "$WORK/alpha.csv" "$WORK/beta.csv"

"$CLI" --data="$WORK/alpha.csv,$WORK/beta.csv" --k=3 \
    --listen=127.0.0.1:0 --time-limit=30 2> "$WORK/server.err" &
SERVER_PID=$!

# The bound port is announced on stderr ("rankhow: listening on HOST:PORT").
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^rankhow: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
         "$WORK/server.err" | head -1)
  [[ -n "$PORT" ]] && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "smoke_listen: server exited before listening" >&2
    cat "$WORK/server.err" >&2
    exit 1
  fi
  sleep 0.1
done
if [[ -z "$PORT" ]]; then
  echo "smoke_listen: server never announced a port" >&2
  cat "$WORK/server.err" >&2
  exit 1
fi

# /dev/tcp is a bash compile-time feature (--enable-net-redirections);
# some distros build without it. Probe once and skip cleanly rather than
# failing the whole gate on an environment limitation.
if ! (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
  echo "smoke_listen: SKIP - bash lacks /dev/tcp support on this host" >&2
  exit 0
fi

run_client() {  # $1 = client name, $2 = dataset id
  exec 3<>"/dev/tcp/127.0.0.1/$PORT"
  printf 'open %s %s\n%s solve\n%s min-weight PTS 0.1\nstats\nmetrics\nquit\n' \
      "$1" "$2" "$1" "$1" >&3
  timeout 120 cat <&3
  exec 3<&- 3>&-
}

OUT1=$(run_client c1 alpha)
OUT2=$(run_client c2 beta)
echo "--- client c1 (alpha) ---"; echo "$OUT1"
echo "--- client c2 (beta) ---"; echo "$OUT2"

fail() { echo "smoke_listen: FAILED - $1" >&2; exit 1; }
grep -q "^ok open c1 alpha$" <<<"$OUT1" || fail "c1 open ack"
grep -Eq "^ok c1 line=2 error=[0-9]+ bound=[0-9]+ proven=yes" <<<"$OUT1" \
    || fail "c1 solve response"
grep -Eq "^ok c1 line=3 error=[0-9]+" <<<"$OUT1" || fail "c1 edit+solve"
grep -q "^ok stats registries=" <<<"$OUT1" || fail "c1 stats"
grep -q "^ok metrics connections=" <<<"$OUT1" || fail "c1 metrics"
grep -q "^ok quit$" <<<"$OUT1" || fail "c1 quit"
grep -q "^ok open c2 beta$" <<<"$OUT2" || fail "c2 open ack (routing)"
grep -Eq "^ok c2 line=2 error=[0-9]+ bound=[0-9]+ proven=yes" <<<"$OUT2" \
    || fail "c2 solve response"
grep -q "^ok quit$" <<<"$OUT2" || fail "c2 quit"

# Acceptance cross-check: the networked results must equal a serial
# --session replay of the same script through the same binary.
printf 'solve\nmin-weight PTS 0.1\n' > "$WORK/script.txt"
SERIAL=$("$CLI" --data="$WORK/alpha.csv" --k=3 --time-limit=30 \
         --session="$WORK/script.txt" --show-table=0)
# Table rows: "LINE COMMAND... ERROR BOUND PROVEN SECONDS" (the command may
# contain spaces, so count from the right); wire responses carry the same
# value as "error=N".
serial_errors=$(awk '/^[12][[:space:]]/ {print $(NF-3)}' <<<"$SERIAL")
wire_errors=$(sed -n 's/^ok c1 line=[23] error=\([0-9]*\).*/\1/p' <<<"$OUT1")
if [[ -z "$serial_errors" || "$serial_errors" != "$wire_errors" ]]; then
  echo "--- serial replay ---"; echo "$SERIAL"
  fail "network results differ from serial --session replay (serial: $(echo \
$serial_errors | tr '\n' ' ') wire: $(echo $wire_errors | tr '\n' ' '))"
fi

# Binary-framing client: the same script over `frame binary` must produce
# the same error values — framing changes the envelope, never the result.
# The negotiation ack arrives as a plain text line (the old framing);
# everything after it is 4-byte big-endian length-prefixed frames, encoded
# with printf octal escapes and decoded with od+awk.
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
{
  printf 'frame binary\n'
  for req in 'open c3 alpha' 'c3 solve' 'c3 min-weight PTS 0.1' 'quit'; do
    len=${#req}  # all under 256 bytes, so the prefix is \0\0\0\LEN
    printf '\000\000\000'
    printf "\\$(printf '%03o' "$len")"
    printf '%s' "$req"
  done
} >&3
BIN_OUT=$(timeout 120 cat <&3 | od -An -v -tu1 | awk '
  { for (i = 1; i <= NF; i++) b[n++] = $i }
  END {
    i = 0
    line = ""  # the text-mode negotiation ack, up to the newline
    while (i < n && b[i] != 10) line = line sprintf("%c", b[i++])
    print line; i++
    while (i + 4 <= n) {
      len = b[i]*16777216 + b[i+1]*65536 + b[i+2]*256 + b[i+3]; i += 4
      line = ""
      for (j = 0; j < len && i < n; j++) line = line sprintf("%c", b[i++])
      print line
    }
  }')
exec 3<&- 3>&-
echo "--- client c3 (alpha, binary framing) ---"; echo "$BIN_OUT"
grep -q "^ok frame binary$" <<<"$BIN_OUT" || fail "c3 frame negotiation ack"
grep -q "^ok open c3 alpha$" <<<"$BIN_OUT" || fail "c3 open ack (binary)"
grep -q "^ok quit$" <<<"$BIN_OUT" || fail "c3 quit (binary)"
# `frame binary` was wire line 1, so the solve/edit sit on lines 3 and 4.
bin_errors=$(sed -n 's/^ok c3 line=[34] error=\([0-9]*\).*/\1/p' <<<"$BIN_OUT")
if [[ -z "$bin_errors" || "$bin_errors" != "$wire_errors" ]]; then
  fail "binary-framed results differ from text framing (text: $(echo \
$wire_errors | tr '\n' ' ') binary: $(echo $bin_errors | tr '\n' ' '))"
fi

echo "smoke_listen: OK (port $PORT, 2 clients on 2 dataset ids," \
     "wire == serial replay, binary framing == text)"
