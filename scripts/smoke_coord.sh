#!/usr/bin/env bash
# Distributed-serving smoke (docs/OPERATIONS.md "Distributed serving"):
# start TWO `rankhow_cli --listen` workers on ephemeral ports, front them
# with `rankhow_coord` pinning one dataset to each, and drive two clients
# through the coordinator over bash's /dev/tcp — one per shard. Every
# proven result must equal a serial `--session` replay of the same script
# through the same binary, and the aggregated `stats` line must carry the
# coord_* fields with a per-worker breakdown. check.sh runs this right
# after smoke_listen; it needs only bash + coreutils.
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"
CLI="$BUILD/rankhow_cli"
COORD="$BUILD/rankhow_coord"
for bin in "$CLI" "$COORD"; do
  if [[ ! -x "$bin" ]]; then
    echo "smoke_coord: $bin not built" >&2
    exit 1
  fi
done

WORK="$(mktemp -d)"
PIDS=()
cleanup() {
  # TERM, give each process a moment, then KILL, and always reap — an
  # unreaped child holds its listening socket as a zombie until the
  # harness exits, which makes back-to-back runs flaky.
  for pid in "${PIDS[@]-}"; do
    [[ -n "$pid" ]] || continue
    kill "$pid" 2>/dev/null || true
  done
  for pid in "${PIDS[@]-}"; do
    [[ -n "$pid" ]] || continue
    for _ in $(seq 1 20); do
      kill -0 "$pid" 2>/dev/null || break
      sleep 0.05
    done
    kill -9 "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

# Two tiny ranked CSVs (file order ranks the first k rows). Identical
# content is fine: the point is that the shard map sends the ids to
# distinct worker processes.
cat > "$WORK/alpha.csv" <<'CSV'
PTS,REB,AST
9,4,7
8,6,2
7,7,5
5,2,8
3,9,1
2,1,3
CSV
cp "$WORK/alpha.csv" "$WORK/beta.csv"

wait_port() {  # $1 = stderr file, $2 = banner prefix; prints the port
  local port=""
  for _ in $(seq 1 100); do
    port=$(sed -n "s/^$2: listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p" \
           "$1" | head -1)
    [[ -n "$port" ]] && break
    sleep 0.1
  done
  echo "$port"
}

"$CLI" --data="$WORK/alpha.csv,$WORK/beta.csv" --k=3 \
    --listen=127.0.0.1:0 --time-limit=30 2> "$WORK/w1.err" &
PIDS+=($!)
"$CLI" --data="$WORK/alpha.csv,$WORK/beta.csv" --k=3 \
    --listen=127.0.0.1:0 --time-limit=30 2> "$WORK/w2.err" &
PIDS+=($!)
P1=$(wait_port "$WORK/w1.err" rankhow)
P2=$(wait_port "$WORK/w2.err" rankhow)
if [[ -z "$P1" || -z "$P2" ]]; then
  echo "smoke_coord: workers never announced ports" >&2
  cat "$WORK/w1.err" "$WORK/w2.err" >&2
  exit 1
fi

"$COORD" --listen=127.0.0.1:0 \
    --workers=127.0.0.1:$P1,127.0.0.1:$P2 \
    --shard-map=alpha=127.0.0.1:$P1,beta=127.0.0.1:$P2 \
    2> "$WORK/coord.err" &
PIDS+=($!)
PORT=$(wait_port "$WORK/coord.err" rankhow_coord)
if [[ -z "$PORT" ]]; then
  echo "smoke_coord: coordinator never announced a port" >&2
  cat "$WORK/coord.err" >&2
  exit 1
fi

# /dev/tcp is a bash compile-time feature; probe once and skip cleanly
# rather than failing the gate on an environment limitation.
if ! (exec 3<>"/dev/tcp/127.0.0.1/$PORT") 2>/dev/null; then
  echo "smoke_coord: SKIP - bash lacks /dev/tcp support on this host" >&2
  exit 0
fi

run_client() {  # $1 = client name, $2 = dataset id
  exec 3<>"/dev/tcp/127.0.0.1/$PORT"
  printf 'open %s %s\n%s solve\n%s min-weight PTS 0.1\nstats\nquit\n' \
      "$1" "$2" "$1" "$1" >&3
  timeout 120 cat <&3
  exec 3<&- 3>&-
}

OUT1=$(run_client c1 alpha)
OUT2=$(run_client c2 beta)
echo "--- client c1 (alpha, via coordinator) ---"; echo "$OUT1"
echo "--- client c2 (beta, via coordinator) ---"; echo "$OUT2"

# Under pipelining, control verbs (stats) ack immediately while session
# commands ack from solver strands — the same interleaving a direct worker
# produces (acks carry line= tags for this reason). Assert by content, not
# by position.
fail() { echo "smoke_coord: FAILED - $1" >&2; exit 1; }
grep -q "^ok open c1 alpha$" <<<"$OUT1" || fail "c1 open ack"
grep -Eq "^ok c1 line=2 error=[0-9]+ bound=[0-9]+ proven=yes" <<<"$OUT1" \
    || fail "c1 solve response"
grep -Eq "^ok c1 line=3 error=[0-9]+" <<<"$OUT1" || fail "c1 edit+solve"
grep -q "^ok stats registries=" <<<"$OUT1" || fail "c1 aggregated stats"
grep -q " coord_workers=2 " <<<"$OUT1" || fail "c1 coord_workers field"
grep -q " coord_up=2 " <<<"$OUT1" || fail "c1 coord_up field"
grep -Eq " w0=127\.0\.0\.1:$P1:up" <<<"$OUT1" || fail "c1 w0 breakdown"
grep -Eq " w1=127\.0\.0\.1:$P2:up" <<<"$OUT1" || fail "c1 w1 breakdown"
grep -q "^ok quit$" <<<"$OUT1" || fail "c1 quit"
grep -q "^ok open c2 beta$" <<<"$OUT2" || fail "c2 open ack (routing)"
grep -Eq "^ok c2 line=2 error=[0-9]+ bound=[0-9]+ proven=yes" <<<"$OUT2" \
    || fail "c2 solve response"
grep -q "^ok quit$" <<<"$OUT2" || fail "c2 quit"

# Acceptance cross-check: results through the coordinator must equal a
# serial --session replay of the same script through the same binary.
printf 'solve\nmin-weight PTS 0.1\n' > "$WORK/script.txt"
for c in c1 c2; do
  csv="$WORK/alpha.csv"; out="$OUT1"
  [[ "$c" == c2 ]] && { csv="$WORK/beta.csv"; out="$OUT2"; }
  SERIAL=$("$CLI" --data="$csv" --k=3 --time-limit=30 \
           --session="$WORK/script.txt" --show-table=0)
  # Table rows: "LINE COMMAND... ERROR BOUND PROVEN SECONDS" (commands may
  # contain spaces, so count from the right); the wire carries "error=N".
  serial_errors=$(awk '/^[12][[:space:]]/ {print $(NF-3)}' <<<"$SERIAL")
  wire_errors=$(sed -n "s/^ok $c line=[23] error=\([0-9]*\).*/\1/p" <<<"$out")
  if [[ -z "$serial_errors" || "$serial_errors" != "$wire_errors" ]]; then
    echo "--- serial replay ($c) ---"; echo "$SERIAL"
    fail "$c coordinator results differ from serial --session replay \
(serial: $(echo $serial_errors | tr '\n' ' ') wire: $(echo \
$wire_errors | tr '\n' ' '))"
  fi
done

echo "smoke_coord: OK (coordinator on $PORT fronting workers $P1/$P2," \
     "2 clients on 2 pinned shards, wire == serial replay)"
