// The Section-I university scenario, end to end: "for a university ranked
// at position 50 that is interested in climbing the ranks, RankHow can
// provide a scoring function fit to the tuples ranked at positions 30 to
// 50, simply by adjusting some program constraints."
//
// This example shows the three readings of that sentence and how they
// differ:
//  1. Window(30, 50)        — find weights that reproduce positions 30..50
//                             of the FULL ranking (other schools float).
//  2. WindowRebased(30, 50) — treat the slice as its own top-k: weights
//                             must pull those schools to the top of the
//                             whole relation (a much stronger ask).
//  3. Position constraints  — "under what weight profile would MY school
//                             reach position <= 40?": pin the school with a
//                             PositionConstraint and let the solver search;
//                             kInfeasible is itself the answer when no
//                             linear function can do it.
//
// Run: ./build/examples/example_university_window [--lo=30] [--hi=50]

#include <iostream>

#include "core/rankhow.h"
#include "data/csrankings.h"
#include "ranking/score_ranking.h"
#include "util/string_util.h"

using namespace rankhow;

namespace {

void Report(const char* title, const Result<RankHowResult>& result,
            int slice) {
  if (!result.ok()) {
    std::cout << title << ": " << result.status().ToString() << "\n";
    return;
  }
  std::cout << title << ": error " << result->error
            << StrFormat(" (%.2f per slice tuple)",
                         static_cast<double>(result->error) / slice)
            << (result->proven_optimal ? ", optimal" : "")
            << StrFormat(", %.1fs", result->seconds) << "\n  "
            << result->function.ToString(2) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  int lo = static_cast<int>(flags.GetInt("lo", 30, "window start position"));
  int hi = static_cast<int>(flags.GetInt("hi", 50, "window end position"));
  int areas = static_cast<int>(flags.GetInt("areas", 8, "CS areas to use"));
  uint64_t seed = flags.GetInt("seed", 7, "simulation seed");
  if (!flags.Finish()) return 0;
  const int slice = hi - lo + 1;

  // An opaque institution ranking over `areas` per-area publication counts.
  CsRankingsData cs = GenerateCsRankings(
      {.num_institutions = 628, .num_areas = areas, .seed = seed});
  Dataset data = cs.table;
  data.NormalizeMinMax();
  Ranking full = Ranking::FromScores(cs.default_scores, hi);

  RankHowOptions options;
  options.eps.tie_eps = 5e-3;  // the paper's CSRankings settings
  options.eps.eps1 = 1e-2;
  options.eps.eps2 = 0.0;
  options.time_limit_seconds = 15;

  std::cout << "628 institutions, " << areas
            << " areas; explaining positions " << lo << ".." << hi
            << " of the geometric-mean ranking.\n\n";

  // (1) Window: slice tuples must land at their ORIGINAL positions; every
  // other school may go anywhere. This is the scenario the paper means.
  auto window = full.Window(lo, hi);
  if (!window.ok()) {
    std::cerr << window.status().ToString() << "\n";
    return 1;
  }
  RankHow window_solver(data, *window, options);
  auto window_fit = window_solver.Solve();
  Report("Window fit       ", window_fit, slice);

  // (2) Rebased window: the same schools must instead occupy positions
  // 1..21 of the WHOLE relation. Expect a (much) larger error: the slice
  // schools genuinely are not the globally strongest.
  auto rebased = full.WindowRebased(lo, hi);
  if (rebased.ok()) {
    RankHow rebased_solver(data, *rebased, options);
    auto rebased_fit = rebased_solver.Solve();
    Report("Rebased window   ", rebased_fit, slice);
  }

  if (!window_fit.ok()) return 1;

  // (3) Climbing: take the school at the window's bottom and ask for a
  // weight profile that reproduces the window EXCEPT that this school must
  // place at `lo + slice/2` or better. Infeasibility is a meaningful
  // answer: no linear re-weighting of these areas lifts the school.
  int climber = -1;
  for (int t = 0; t < full.num_tuples(); ++t) {
    if (full.position(t) == hi) climber = t;
  }
  if (climber < 0) {
    std::cout << "\n(no school sits exactly at position " << hi
              << "; skipping the climbing query)\n";
    return 0;
  }
  const int target = lo + slice / 2;
  std::cout << "\nCan school #" << climber << " (given position " << hi
            << ") reach position <= " << target
            << " while the rest of the window stays put?\n";

  // The window ranking minus the climber's own pin, plus the aspiration.
  RankHow climb_solver(data, *window, options);
  climb_solver.problem().position_constraints.push_back(
      {climber, 1, target});
  auto climb = climb_solver.Solve();
  if (climb.ok()) {
    std::cout << "Yes — with error " << climb->error
              << " on the rest of the window:\n  "
              << climb->function.ToString(2) << "\n";
    std::vector<int> now = ScoreRankPositionsOf(
        data.Scores(climb->function.weights), {climber},
        options.eps.tie_eps);
    std::cout << "The school now places at position " << now[0] << ".\n";
  } else if (climb.status().code() == StatusCode::kInfeasible) {
    std::cout << "No: no weighting of these " << areas
              << " areas places the school at " << target
              << " or better — the answer itself (Sec. I: constraints turn "
                 "RankHow into an exploration tool).\n";
  } else {
    std::cout << climb.status().ToString() << "\n";
  }
  return 0;
}
