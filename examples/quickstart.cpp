// Quickstart: synthesize a linear scoring function for a tiny ranking.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <iostream>

#include "core/rankhow.h"
#include "ranking/score_ranking.h"

using namespace rankhow;

int main() {
  // A relation R(speed, comfort, price_score) of five products...
  Dataset data({"speed", "comfort", "price_score"}, 5);
  double rows[5][3] = {
      {9.0, 6.0, 3.0},  // product 0
      {7.0, 8.0, 4.0},  // product 1
      {6.0, 5.0, 9.0},  // product 2
      {4.0, 7.0, 6.0},  // product 3
      {3.0, 3.0, 8.0},  // product 4
  };
  for (int t = 0; t < 5; ++t) {
    for (int a = 0; a < 3; ++a) data.set_value(t, a, rows[t][a]);
  }

  // ... and someone's published top-3 (positions; kUnranked = "don't care").
  auto given = Ranking::Create({1, 2, 3, kUnranked, kUnranked});
  if (!given.ok()) {
    std::cerr << given.status().ToString() << "\n";
    return 1;
  }

  // Ask RankHow for the most accurate simple linear explanation.
  RankHowOptions options;
  options.eps.tie_eps = 5e-7;  // score-tie tolerance (Definition 2)
  options.eps.eps1 = 1e-6;     // indicator thresholds (Equation 2)
  options.eps.eps2 = 0.0;
  RankHow solver(data, *given, options);

  auto result = solver.Solve();
  if (!result.ok()) {
    std::cerr << "solve failed: " << result.status().ToString() << "\n";
    return 1;
  }

  std::cout << "Scoring function: " << result->function.ToString() << "\n";
  std::cout << "Position error:   " << result->error
            << (result->proven_optimal ? " (proven optimal)" : "") << "\n";
  std::cout << "Verified exactly: "
            << (result->verification->consistent ? "yes" : "NO") << "\n";

  // Show the induced ranking next to the given one.
  auto positions = ScoreRankPositions(
      data.Scores(result->function.weights), options.eps.tie_eps);
  std::cout << "\nproduct  given  induced  score\n";
  for (int t = 0; t < data.num_tuples(); ++t) {
    std::cout << "   " << t << "       ";
    if (given->IsRanked(t)) {
      std::cout << given->position(t);
    } else {
      std::cout << "-";
    }
    std::cout << "       " << positions[t] << "     "
              << data.ScoreOf(t, result->function.weights) << "\n";
  }
  return 0;
}
