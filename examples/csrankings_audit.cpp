// Auditing an opaque institution ranking (the paper's CSRankings scenario):
// the published score is a non-linear geometric mean over 27 per-area
// publication counts. How close can a *linear* area-weighted function get,
// and which areas does it say drive the ranking? Also demonstrates the
// Sec.-I "window" use case: a school ranked ~30th fitting only the slice of
// the ranking it competes in.
//
// Run: ./build/examples/example_csrankings_audit [--k=15] [--areas=10]

#include <algorithm>
#include <iostream>
#include <numeric>

#include "core/rankhow.h"
#include "core/seeding.h"
#include "core/sym_gd.h"
#include "data/csrankings.h"
#include "util/string_util.h"

using namespace rankhow;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  int k = static_cast<int>(flags.GetInt("k", 15, "length of the top ranking"));
  int areas = static_cast<int>(flags.GetInt("areas", 10, "CS areas to use"));
  uint64_t seed = flags.GetInt("seed", 2024, "simulation seed");
  if (!flags.Finish()) return 0;

  CsRankingsData cs = GenerateCsRankings(
      {.num_institutions = 628, .num_areas = areas, .seed = seed});
  Ranking given = Ranking::FromScores(cs.default_scores, k);
  Dataset data = cs.table;
  data.NormalizeMinMax();

  std::cout << "628 institutions, " << areas << " areas, auditing the top-"
            << k << " of the geometric-mean ranking.\n\n";

  RankHowOptions options;
  options.eps.tie_eps = 5e-3;  // the paper's CSRankings settings
  options.eps.eps1 = 1e-2;
  options.eps.eps2 = 0.0;
  options.time_limit_seconds = 120;

  RankHow solver(data, given, options);
  auto exact = solver.Solve();
  if (!exact.ok()) {
    std::cerr << exact.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Best linear explanation (error " << exact->error
            << (exact->proven_optimal ? ", optimal" : "") << ", "
            << StrFormat("%.1fs", exact->seconds) << "):\n  "
            << exact->function.ToString(2) << "\n\n";

  // Which areas carry the weight?
  std::vector<int> order(data.num_attributes());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return exact->function.weights[a] > exact->function.weights[b];
  });
  std::cout << "Area influence ranking:\n";
  for (int a : order) {
    if (exact->function.weights[a] < 0.005) break;
    std::cout << StrFormat("  %-12s %.2f\n", data.attribute_name(a).c_str(),
                           exact->function.weights[a]);
  }

  // SYM-GD from the ordinal-regression seed (the paper's default pipeline)
  // gives nearly the same quality much faster on larger k.
  auto or_seed = OrdinalRegressionSeed(data, given, options.eps.eps1);
  if (or_seed.ok()) {
    SymGdOptions sg;
    sg.cell_size = 0.1;
    sg.adaptive = true;
    sg.time_budget_seconds = 30;
    sg.solver = options;
    SymGd symgd(data, given, sg);
    auto local = symgd.Run(*or_seed);
    if (local.ok()) {
      std::cout << "\nSYM-GD (ordinal seed): error " << local->error
                << " in " << StrFormat("%.1fs", local->seconds) << " ("
                << local->iterations << " cell solves)\n";
    }
  }

  // Mid-ranking window: fit only positions 10..k+10 (the "school ranked
  // 30th wants to climb" scenario).
  Ranking full = Ranking::FromScores(cs.default_scores,
                                     std::min(628, k + 20));
  auto window = full.Window(10, k + 10);
  if (window.ok()) {
    RankHow window_solver(data, *window, options);
    auto fit = window_solver.Solve();
    if (fit.ok()) {
      std::cout << "\nWindow fit (positions 10.." << k + 10 << "): error "
                << fit->error << "\n  " << fit->function.ToString(2) << "\n";
    }
  }
  return 0;
}
