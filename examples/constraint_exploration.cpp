// A tour of RankHow's constraint vocabulary on one small instance:
//  * weight bounds and group bounds (the predicate P),
//  * position-range constraints ("no top-10 tuple moves more than 2 spots"),
//  * pinned winners and pairwise orders,
//  * alternative error measures (Kendall tau, top-weighted inversions),
//  * derived attributes turning a quadratic ranking linear.
//
// Run: ./build/examples/example_constraint_exploration

#include <iostream>

#include "core/rankhow.h"
#include "data/derived.h"
#include "data/synthetic.h"
#include "ranking/error_measures.h"
#include "ranking/score_ranking.h"
#include "util/string_util.h"

using namespace rankhow;

namespace {

RankHowOptions BaseOptions() {
  RankHowOptions options;
  options.eps.tie_eps = 5e-7;
  options.eps.eps1 = 1e-6;
  options.eps.eps2 = 0.0;
  options.time_limit_seconds = 60;
  return options;
}

void Show(const char* label, const Result<RankHowResult>& result) {
  if (!result.ok()) {
    std::cout << label << ": " << result.status().ToString() << "\n";
    return;
  }
  std::cout << label << ": error " << result->error
            << (result->proven_optimal ? " (optimal)" : "") << "   f = "
            << result->function.ToString(2) << "\n";
}

}  // namespace

int main() {
  SyntheticSpec spec;
  spec.num_tuples = 60;
  spec.num_attributes = 4;
  spec.distribution = SyntheticDistribution::kAntiCorrelated;
  spec.seed = 7;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = PowerSumRanking(data, 2, 10);  // quadratic ground truth

  std::cout << "60 anti-correlated tuples, ranking = top-10 by sum(A_i^2)\n\n";

  // 1. Plain optimum.
  RankHow plain(data, given, BaseOptions());
  auto base = plain.Solve();
  Show("[1] unconstrained", base);

  // 2. Weight floor on every attribute: "no attribute may be ignored".
  RankHow floored(data, given, BaseOptions());
  for (int a = 0; a < data.num_attributes(); ++a) {
    floored.problem().constraints.AddMinWeight(a, 0.05);
  }
  Show("[2] every weight >= 0.05", floored.Solve());

  // 3. Group bound: the first two attributes together at most 0.35.
  RankHow grouped(data, given, BaseOptions());
  grouped.problem().constraints.AddGroupBound({0, 1}, RelOp::kLe, 0.35);
  Show("[3] w1 + w2 <= 0.35", grouped.Solve());

  // 4. Position ranges: every top-5 tuple stays within +/-2 positions.
  RankHow banded(data, given, BaseOptions());
  for (int t : given.ranked_tuples()) {
    int p = given.position(t);
    if (p > 5) continue;
    banded.problem().position_constraints.push_back(
        {t, std::max(1, p - 2), p + 2});
  }
  Show("[4] top-5 within +/-2 positions (hard)", banded.Solve());

  // 4b. Example 1's relative band, as a one-liner: tuple ranked i-th must
  // land within [floor(0.9 i), ceil(1.1 i)].
  RankHow rel_banded(data, given, BaseOptions());
  Status band_status = AppendRelativePositionBand(
      given, 0.9, 1.1, 100, &rel_banded.problem().position_constraints);
  if (band_status.ok()) {
    Show("[4b] relative band 0.9i..1.1i (hard)", rel_banded.Solve());
  }

  // 5. Pin the winner and force tuple ranked 1 above tuple ranked 3.
  RankHow pinned(data, given, BaseOptions());
  int first = given.ranked_tuples()[0];
  int third = given.ranked_tuples()[2];
  pinned.problem().position_constraints.push_back({first, 1, 1});
  pinned.problem().order_constraints.push_back({first, third});
  Show("[5] winner pinned + pairwise order", pinned.Solve());

  // 6. Alternative measures on the unconstrained optimum.
  if (base.ok()) {
    auto positions = ScoreRankPositions(
        data.Scores(base->function.weights), 5e-7);
    std::cout << "\n[6] other measures of [1]: Kendall-tau distance = "
              << KendallTauDistance(given, positions)
              << ", top-weighted inversions = "
              << StrFormat("%.3f",
                           TopWeightedInversionError(given, positions))
              << ", tau coefficient = "
              << StrFormat("%.3f", KendallTauCoefficient(given, positions))
              << "\n";
  }

  // 7. Derived attributes: adding A_i^2 makes the quadratic ranking
  // linearly realizable (error 0).
  Dataset augmented = WithDerivedAttributes(data, {.squares = true});
  RankHow kernelized(augmented, given, BaseOptions());
  Show("\n[7] with derived attributes A_i^2", kernelized.Solve());

  return 0;
}
