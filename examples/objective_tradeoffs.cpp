// Choosing WHAT to optimize: the same given ranking fit under the three
// supported objectives (Sec. I-II of the paper):
//
//   position-error   Σ |ρ(r) − π(r)|            — Definition 3 (default)
//   top-heavy        Σ penalty(π(r))·|ρ(r)−π(r)| — errors at the top cost more
//   inversions       Kendall-tau distance        — count discordant pairs
//
// A function that is optimal for one objective is usually NOT optimal for
// the others; this example makes the trade-off concrete on a simulated NBA
// season ranked by the non-linear MP·PER production score, then cross-
// evaluates each winner under all three measures.
//
// Run: ./build/examples/example_objective_tradeoffs [--n=600] [--k=8]

#include <iostream>
#include <vector>

#include "core/rankhow.h"
#include "data/nba.h"
#include "ranking/objective.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace rankhow;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  int n = static_cast<int>(flags.GetInt("n", 600, "simulated player-seasons"));
  int k = static_cast<int>(flags.GetInt("k", 8, "length of the top ranking"));
  double budget = flags.GetDouble("budget", 20, "seconds per solve");
  uint64_t seed = flags.GetInt("seed", 7, "simulation seed");
  if (!flags.Finish()) return 0;

  NbaData nba = GenerateNba({.num_tuples = n, .seed = seed});
  Dataset data = nba.table;
  data.NormalizeMinMax();
  Ranking given = Ranking::FromScores(nba.mp_times_per, k, 0.0);

  RankHowOptions options;
  options.eps.tie_eps = 5e-5;  // the paper's NBA settings
  options.eps.eps1 = 1e-4;
  options.eps.eps2 = 0.0;
  options.time_limit_seconds = budget;

  std::cout << "Fitting the top-" << k << " of the MP*PER ranking over " << n
            << " simulated player-seasons, under three objectives.\n\n";

  struct Variant {
    const char* name;
    RankingObjectiveSpec spec;
  };
  std::vector<Variant> variants = {
      {"position-error", RankingObjectiveSpec{}},
      {"top-heavy", RankingObjectiveSpec::TopHeavy(k)},
      {"inversions", RankingObjectiveSpec::Inversions()},
  };

  std::vector<std::vector<double>> winners;
  TablePrinter solves({"objective", "optimum", "proven", "seconds",
                       "function"});
  for (const Variant& variant : variants) {
    RankHow solver(data, given, options);
    solver.problem().objective = variant.spec;
    auto result = solver.Solve();
    if (!result.ok()) {
      std::cout << variant.name << " failed: "
                << result.status().ToString() << "\n";
      return 1;
    }
    winners.push_back(result->function.weights);
    solves.AddRow({variant.name, StrFormat("%ld", result->error),
                   result->proven_optimal ? "yes" : "no",
                   FormatDouble(result->seconds, 2),
                   result->function.ToString()});
  }
  std::cout << solves.ToText();

  // Cross-evaluation: each winner scored under every measure. The diagonal
  // is (near-)optimal by construction; off-diagonal entries show what the
  // choice of objective costs you elsewhere.
  std::cout << "\nCross-evaluation (rows = optimized-for, columns = "
               "measured-as):\n\n";
  TablePrinter cross({"optimized \\ measured", "position-error", "top-heavy",
                      "inversions"});
  for (size_t i = 0; i < winners.size(); ++i) {
    std::vector<std::string> row = {variants[i].name};
    for (const Variant& measure : variants) {
      row.push_back(StrFormat(
          "%ld", ObjectiveOf(data, given, winners[i], options.eps.tie_eps,
                             measure.spec)));
    }
    cross.AddRow(row);
  }
  std::cout << cross.ToText();

  std::cout << "\nReading guide: the top-heavy winner concentrates its "
               "remaining error low in the ranking; the inversion winner "
               "preserves pairwise order even when absolute positions "
               "drift.\n";
  return 0;
}
