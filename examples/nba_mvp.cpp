// Example 1 / Section VI-B of the paper, end to end on the NBA simulator:
// hold an MVP vote, recover the panel's ranking with a simple linear
// function, then explore alternative functions under "realism" constraints
// (points must matter; bound the total weight of defensive skills; pin the
// number-1 player; force one player above another).
//
// Run: ./build/examples/example_nba_mvp [--n=6000] [--seed=42]

#include <iostream>

#include "core/rankhow.h"
#include "data/nba.h"
#include "ranking/score_ranking.h"
#include "util/string_util.h"

using namespace rankhow;

namespace {

void Report(const char* label, const Result<RankHowResult>& result,
            const MvpVoteResult& mvp, const Dataset& voted,
            double tie_eps) {
  if (!result.ok()) {
    std::cout << label << ": " << result.status().ToString() << "\n";
    return;
  }
  std::cout << label << "\n  f(x) = " << result->function.ToString(2)
            << "\n  position error " << result->error << " over "
            << mvp.ranking.k() << " ranked players"
            << (result->proven_optimal ? " (optimal)" : "") << ", "
            << StrFormat("%.2fs", result->seconds) << "\n";
  auto positions = ScoreRankPositionsOf(
      voted.Scores(result->function.weights), mvp.ranking.ranked_tuples(),
      tie_eps);
  std::cout << "  induced positions:";
  for (int p : positions) std::cout << " " << p;
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  int n = static_cast<int>(flags.GetInt("n", 6000, "player-seasons"));
  uint64_t seed = flags.GetInt("seed", 42, "simulation seed");
  if (!flags.Finish()) return 0;

  std::cout << "Simulating " << n << " player-seasons and a 100-panelist "
            << "MVP vote (10/7/5/3/1 ballots)...\n";
  NbaData nba = GenerateNba({.num_tuples = n, .seed = seed});
  MvpVoteResult mvp = SimulateMvpVote(nba, 100, seed + 1);

  std::cout << mvp.vote_receivers.size()
            << " players received votes; point totals:";
  for (int p : mvp.points) std::cout << " " << p;
  std::cout << "\n\n";

  Dataset voted = mvp.voted_table;
  voted.NormalizeMinMax();  // paper normalizes; ε values assume [0,1] scales

  RankHowOptions options;
  options.eps.tie_eps = 5e-5;  // the paper's NBA settings
  options.eps.eps1 = 1e-4;
  options.eps.eps2 = 0.0;
  options.time_limit_seconds = 120;

  // 1. Unconstrained optimum.
  RankHow solver(voted, mvp.ranking, options);
  auto unconstrained = solver.Solve();
  Report("[1] Unconstrained optimum", unconstrained, mvp, voted,
         options.eps.tie_eps);

  // 2. "Points scored should feature prominently": w_PTS >= 0.1.
  int pts = *voted.AttributeIndex("PTS");
  RankHow with_pts(voted, mvp.ranking, options);
  with_pts.problem().constraints.AddMinWeight(pts, 0.1, "pts>=0.1");
  Report("\n[2] With w_PTS >= 0.1", with_pts.Solve(), mvp, voted,
         options.eps.tie_eps);

  // 3. Bound the total weight of defensive skills (STL + BLK <= 0.3).
  int stl = *voted.AttributeIndex("STL");
  int blk = *voted.AttributeIndex("BLK");
  RankHow with_defense(voted, mvp.ranking, options);
  with_defense.problem().constraints.AddGroupBound({stl, blk}, RelOp::kLe,
                                                   0.3, "defense<=0.3");
  Report("\n[3] With w_STL + w_BLK <= 0.3", with_defense.Solve(), mvp, voted,
         options.eps.tie_eps);

  // 4. The number-1 player must stay at position 1, and the #1 player must
  // outscore the #2 player outright (Example 1's Jokic-above-Tatum).
  RankHow pinned(voted, mvp.ranking, options);
  int first = mvp.ranking.ranked_tuples()[0];
  int second = mvp.ranking.ranked_tuples()[1];
  pinned.problem().position_constraints.push_back({first, 1, 1});
  pinned.problem().order_constraints.push_back({first, second});
  Report("\n[4] Winner pinned at #1 and above #2", pinned.Solve(), mvp,
         voted, options.eps.tie_eps);

  return 0;
}
