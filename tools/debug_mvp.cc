// Developer repro tool for the MVP-instance LP-unbounded failure.
#include <iostream>

#include "core/opt_model_builder.h"
#include "core/rankhow.h"
#include "baselines/sampling.h"
#include "data/nba.h"
#include "lp/simplex.h"
#include "util/string_util.h"

using namespace rankhow;

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  int n = static_cast<int>(flags.GetInt("n", 3000, "tuples"));
  uint64_t seed = flags.GetInt("seed", 22, "seed");
  bool solve_bnb = flags.GetBool("bnb", false, "run full B&B");
  if (!flags.Finish()) return 0;

  NbaData nba = GenerateNba({.num_tuples = n, .seed = seed});
  MvpVoteResult mvp = SimulateMvpVote(nba, 100, seed + 1);
  Dataset voted = mvp.voted_table;
  voted.NormalizeMinMax();
  std::cout << "voted=" << voted.num_tuples() << " k=" << mvp.ranking.k()
            << "\n";

  EpsilonConfig eps;
  eps.tie_eps = 5e-5;
  eps.eps1 = 1e-4;
  eps.eps2 = 0.0;

  OptProblem problem;
  problem.data = &voted;
  problem.given = &mvp.ranking;
  problem.eps = eps;
  auto model = BuildOptModel(problem, WeightBox::FullSimplex(8));
  if (!model.ok()) {
    std::cout << "build: " << model.status().ToString() << "\n";
    return 1;
  }
  std::cout << "free=" << model->num_free_indicators
            << " fixed=" << model->num_fixed_indicators
            << " vars=" << model->milp.lp().num_variables()
            << " rows=" << model->milp.lp().num_constraints() << "\n";

  auto relaxation = model->milp.BuildRelaxation();
  if (!relaxation.ok()) {
    std::cout << "relax: " << relaxation.status().ToString() << "\n";
    return 1;
  }
  std::cout << "relaxation rows=" << relaxation->num_constraints() << "\n";
  auto sol = SimplexSolver().Solve(*relaxation);
  if (!sol.ok()) {
    std::cout << "root LP: " << sol.status().ToString() << "\n";
  } else {
    std::cout << "root LP obj=" << sol->objective
              << " iters=" << sol->iterations << "\n";
  }

  if (solve_bnb) {
    for (double e1 : {1e-4, 1e-6}) {
      RankHowOptions options;
      options.eps.eps1 = e1;
      options.eps.tie_eps = e1 / 2;
      options.eps.eps2 = 0.0;
      options.time_limit_seconds = 60;
      RankHow solver(voted, mvp.ranking, options);
      auto result = solver.Solve();
      if (!result.ok()) {
        std::cout << "bnb(e1=" << e1 << "): " << result.status().ToString()
                  << "\n";
      } else {
        std::cout << "bnb(e1=" << e1 << ") error=" << result->error
                  << " claimed=" << result->claimed_error
                  << " optimal=" << result->proven_optimal
                  << " nodes=" << result->stats.nodes_explored
                  << " secs=" << result->seconds << "\n";
      }
      // Cross-check: sampled weight vectors evaluated BOTH ways.
      SamplingOptions sampling;
      sampling.time_budget_seconds = 2;
      sampling.tie_eps = options.eps.tie_eps;
      sampling.seed = 5;
      auto smp = RunSampling(voted, mvp.ranking, sampling);
      if (smp.ok()) {
        auto milp_err = solver.MilpConsistentError(smp->weights);
        std::cout << "  sampling best true_err=" << smp->error
                  << " milp_err="
                  << (milp_err ? std::to_string(*milp_err) : "gap")
                  << " (from " << smp->samples_drawn << " samples)\n";
      }
    }
  }
  return 0;
}
