// arrangement_dump — regenerate the geometry of Figures 1 and 2.
//
// Figure 1 of the paper shows weight vectors over the 2-simplex with the
// oblique tie lines (weights where some pair of tuples scores equally)
// separating tie-free regions; Figure 2 shows Example 5's solution space
// with the indicator boundaries for (r, s, t) and the region containing a
// perfect scoring function. This tool emits both as CSV:
//
//   segments.csv : one row per indicator boundary segment clipped to the
//                  simplex — s, r, level, and the two barycentric endpoints
//   field.csv    : position error sampled on a barycentric grid (the
//                  terrain whose cells Fig. 1 illustrates)
//
// By default it reproduces Example 4/5's three tuples exactly; point it at
// any 3-attribute CSV with --data (first 3 numeric columns are used).
//
// Run: ./build/tools/tool_arrangement_dump [--resolution=60]
//      [--eps1=1e-6] [--eps2=0] [--data=file.csv --k=...]

#include <fstream>
#include <iostream>

#include "app/cli_driver.h"
#include "core/arrangement.h"
#include "util/string_util.h"

using namespace rankhow;

namespace {

Status WriteSegments(const std::string& path,
                     const std::vector<SimplexSegment>& segments) {
  std::ofstream out(path);
  if (!out) return Status::Invalid("cannot open " + path);
  out << "s,r,level,a_w1,a_w2,a_w3,b_w1,b_w2,b_w3\n";
  for (const SimplexSegment& seg : segments) {
    out << seg.s << ',' << seg.r << ',' << seg.level;
    for (double v : seg.a) out << ',' << v;
    for (double v : seg.b) out << ',' << v;
    out << '\n';
  }
  return Status();
}

Status WriteField(const std::string& path,
                  const std::vector<ErrorSample>& field) {
  std::ofstream out(path);
  if (!out) return Status::Invalid("cannot open " + path);
  out << "w1,w2,w3,error\n";
  for (const ErrorSample& sample : field) {
    out << sample.w[0] << ',' << sample.w[1] << ',' << sample.w[2] << ','
        << sample.error << '\n';
  }
  return Status();
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  std::string data_path = flags.GetString(
      "data", "", "optional 3-attribute CSV (default: Example 4's tuples)");
  std::string rank_column =
      flags.GetString("rank", "", "rank column of --data");
  int k = static_cast<int>(
      flags.GetInt("k", 2, "ranking length when --data has no rank column"));
  int resolution = static_cast<int>(
      flags.GetInt("resolution", 60, "barycentric grid subdivisions"));
  double eps1 = flags.GetDouble("eps1", 1e-6, "ε₁ boundary level (Fig. 2)");
  double eps2 = flags.GetDouble("eps2", 0.0, "ε₂ boundary level (Fig. 2)");
  double tie_eps = flags.GetDouble("eps", 0.0, "tie ε for the error field");
  if (!flags.Finish()) return 0;

  Dataset data;
  Ranking given;
  if (data_path.empty()) {
    // Example 4: r = (3,2,8), s = (4,1,15), t = (1,1,14), π = [1, 2, ⊥].
    data = Dataset({"A1", "A2", "A3"}, 3);
    const double rows[3][3] = {{3, 2, 8}, {4, 1, 15}, {1, 1, 14}};
    for (int t = 0; t < 3; ++t) {
      for (int a = 0; a < 3; ++a) data.set_value(t, a, rows[t][a]);
    }
    auto ranking = Ranking::Create({1, 2, kUnranked});
    if (!ranking.ok()) return 1;
    given = *std::move(ranking);
    std::cout << "Using Example 4/5's instance (Fig. 2 geometry).\n";
  } else {
    auto csv = ReadCsvFile(data_path);
    if (!csv.ok()) {
      std::cerr << csv.status().ToString() << "\n";
      return 1;
    }
    CliDataSpec spec;
    spec.rank_column = rank_column;
    spec.k = k;
    spec.normalize = false;
    auto problem = AssembleCliProblem(*csv, spec);
    if (!problem.ok()) {
      std::cerr << problem.status().ToString() << "\n";
      return 1;
    }
    if (problem->data.num_attributes() != 3) {
      std::cerr << "need exactly 3 attributes, got "
                << problem->data.num_attributes() << "\n";
      return 1;
    }
    data = std::move(problem->data);
    given = std::move(problem->given);
  }

  std::vector<int> tuples;
  for (int t = 0; t < data.num_tuples(); ++t) tuples.push_back(t);

  // Tie boundaries (Fig. 1's oblique lines) plus the ε₁/ε₂ indicator
  // levels (Fig. 2 / Equation 2).
  std::vector<SimplexSegment> all;
  for (double level : {0.0, eps1, eps2}) {
    auto segments = TieBoundarySegments(data, tuples, level);
    if (!segments.ok()) {
      std::cerr << segments.status().ToString() << "\n";
      return 1;
    }
    all.insert(all.end(), segments->begin(), segments->end());
  }
  Status st = WriteSegments("arrangement_segments.csv", all);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  auto field = ErrorField(data, given, resolution, tie_eps);
  if (!field.ok()) {
    std::cerr << field.status().ToString() << "\n";
    return 1;
  }
  st = WriteField("arrangement_field.csv", *field);
  if (!st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }

  long best = field->front().error;
  long worst = best;
  for (const ErrorSample& sample : *field) {
    best = std::min(best, sample.error);
    worst = std::max(worst, sample.error);
  }
  std::cout << all.size() << " boundary segments -> arrangement_segments.csv\n"
            << field->size() << " grid samples -> arrangement_field.csv "
            << "(error range " << best << ".." << worst << ")\n"
            << "Plot: color the simplex by `error`, draw the segments; the "
               "star of Fig. 1 is any minimum-error sample.\n";
  return 0;
}
