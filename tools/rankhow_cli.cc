// rankhow_cli — synthesize a linear scoring function for a ranked CSV.
//
// The end-user entry point to the library: point it at any CSV whose rows
// are ranked (either by a rank column or by file order) and it prints the
// most accurate simple linear scoring function, its verified position
// error, and a before/after table of the ranked tuples. Supports the
// paper's constraint exploration (weight floors/ceilings, pairwise order),
// the three objectives, all exact strategies, and SYM-GD for large inputs.
//
// Examples:
//   tool_rankhow_cli --data=players.csv --id=PLR --rank=mvp_rank
//   tool_rankhow_cli --data=players.csv --id=PLR --k=10 \
//       --attrs=PTS,REB,AST,STL,BLK --min-weight=PTS:0.1 \
//       --order="Jokic>Tatum" --strategy=milp --time-limit=30
//   tool_rankhow_cli --data=big.csv --k=25 --sym-gd --cell=0.01

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include <sys/stat.h>

#include "app/cli_driver.h"
#include "core/seeding.h"
#include "core/solve_session.h"
#include "core/sym_gd.h"
#include "data/shared_dataset.h"
#include "net/reactor.h"
#include "ranking/score_ranking.h"
#include "server/registry_router.h"
#include "server/session_registry.h"
#include "server/wire.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

using namespace rankhow;

namespace {

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

/// Prints the ranked tuples' given vs. synthesized positions.
void PrintComparison(const CliProblem& problem,
                     const std::vector<double>& weights, double tie_eps) {
  const Ranking& given = problem.given;
  std::vector<double> scores = problem.data.Scores(weights);
  std::vector<int> positions =
      ScoreRankPositionsOf(scores, given.ranked_tuples(), tie_eps);
  TablePrinter table({"label", "given", "synthesized", "score"});
  for (size_t i = 0; i < given.ranked_tuples().size(); ++i) {
    int t = given.ranked_tuples()[i];
    table.AddRow({problem.labels[t], std::to_string(given.position(t)),
                  std::to_string(positions[i]),
                  FormatDouble(scores[t], 4)});
  }
  std::cout << table.ToText();
}

Result<std::string> ReadTextFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open session script: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

struct ParsedScripts {
  std::vector<std::string> paths;
  std::vector<std::vector<SessionCommand>> scripts;
};

/// Parses every --session script up front so a typo on script 3 fails
/// before script 1 burns its solve budget.
Result<ParsedScripts> ParseSessionScripts(const std::string& session_spec) {
  ParsedScripts out;
  for (const std::string& p : Split(session_spec, ',')) {
    std::string path(Trim(p));
    if (path.empty()) continue;
    RH_ASSIGN_OR_RETURN(std::string text, ReadTextFile(path));
    RH_ASSIGN_OR_RETURN(std::vector<SessionCommand> script,
                        ParseSessionScript(text));
    if (script.empty()) {
      return Status::Invalid("session script is empty: " + path);
    }
    out.paths.push_back(std::move(path));
    out.scripts.push_back(std::move(script));
  }
  if (out.paths.empty()) {
    return Status::Invalid("--session lists no script files");
  }
  return out;
}

/// Renders a run's per-line proven error/bound table (sessions and
/// scripted server clients share the format).
void PrintOutcomeTable(const std::vector<SessionStepOutcome>& outcomes) {
  TablePrinter table({"line", "command", "error", "bound", "proven",
                      "seconds"});
  for (const SessionStepOutcome& step : outcomes) {
    const char* kind = "solve";
    switch (step.command.kind) {
      case SessionCommand::Kind::kSolve: kind = "solve"; break;
      case SessionCommand::Kind::kMinWeight: kind = "min-weight"; break;
      case SessionCommand::Kind::kMaxWeight: kind = "max-weight"; break;
      case SessionCommand::Kind::kDrop: kind = "drop"; break;
      case SessionCommand::Kind::kOrder: kind = "order"; break;
      case SessionCommand::Kind::kEps: kind = "eps"; break;
      case SessionCommand::Kind::kEps1: kind = "eps1"; break;
      case SessionCommand::Kind::kEps2: kind = "eps2"; break;
      case SessionCommand::Kind::kObjective: kind = "objective"; break;
      case SessionCommand::Kind::kAppend: kind = "append"; break;
    }
    std::string command = kind;
    if (!step.command.arg.empty()) command += " " + step.command.arg;
    table.AddRow({std::to_string(step.command.line), command,
                  std::to_string(step.result.error),
                  std::to_string(step.result.bound),
                  step.result.proven_optimal ? "yes" : "no",
                  FormatDouble(step.result.seconds, 3)});
  }
  std::cout << table.ToText();
}

/// Renders one script's outcomes plus the session's reuse counters.
void PrintSessionOutcomes(const std::string& script_name,
                          const std::vector<SessionStepOutcome>& outcomes,
                          const SolveSessionStats& stats) {
  std::cout << "session " << script_name << ":\n";
  PrintOutcomeTable(outcomes);
  std::cout << StrFormat(
      "  (model builds %lld, patches %lld, presolves %lld, pool hits %lld, "
      "bound seeds %lld)\n\n",
      static_cast<long long>(stats.model_builds),
      static_cast<long long>(stats.model_patches),
      static_cast<long long>(stats.presolve_runs),
      static_cast<long long>(stats.pool_hits),
      static_cast<long long>(stats.bound_seeds));
}

/// Builds a fresh session over the assembled problem and applies the
/// flag-level constraints through the session edit API (they are part of
/// the base problem every script line edits against). The session shares
/// `data`'s snapshot copy-on-write — batch/serve fan-out holds one resident
/// dataset however many sessions run.
Result<std::unique_ptr<SolveSession>> MakeSession(
    const SharedDataset& data, const CliProblem& problem,
    const RankHowOptions& options, const RankingObjectiveSpec& objective,
    const std::string& min_weights, const std::string& max_weights,
    const std::string& orders) {
  auto session = std::make_unique<SolveSession>(SharedDataset(data),
                                                problem.given, options);
  RH_RETURN_NOT_OK(session->SetObjective(objective));
  WeightConstraintSet base;
  RH_RETURN_NOT_OK(
      ApplyWeightBounds(session->data(), min_weights, true, &base));
  RH_RETURN_NOT_OK(
      ApplyWeightBounds(session->data(), max_weights, false, &base));
  for (const WeightConstraint& c : base.constraints()) {
    RH_RETURN_NOT_OK(session->AddWeightConstraint(c));
  }
  std::vector<PairwiseOrderConstraint> base_orders;
  RH_RETURN_NOT_OK(ApplyOrderConstraints(problem.labels, orders,
                                         &base_orders));
  for (const PairwiseOrderConstraint& oc : base_orders) {
    RH_RETURN_NOT_OK(session->AddOrderConstraint(oc.above, oc.below));
  }
  return session;
}

/// "path/to/players.csv" -> "players": the dataset id a catalog entry
/// serves under (`open CLIENT players`).
std::string DatasetIdFromPath(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) base = base.substr(0, dot);
  return base;
}

/// `--listen` mode: the epoll reactor serving the wire protocol over a
/// Unix-domain/TCP listener, routing across a lazily-loaded multi-dataset
/// catalog (`--data` takes a comma-separated CSV list; dataset ids are the
/// file basenames; the first is the default). Runs until the process is
/// terminated.
int RunListenServer(const std::string& listen_spec,
                    const std::string& data_paths, const CliDataSpec& spec,
                    const RouterOptions& router_options,
                    const ReactorOptions& reactor_options_in) {
  auto address = ParseListenSpec(listen_spec);
  if (!address.ok()) return Fail(address.status());

  // Declared before the router and the server: teardown callbacks running
  // inside ReactorServer::Stop touch both, so they must be destroyed last.
  ServerMetrics metrics;
  RegistryRouter router(router_options);
  std::vector<std::string> ids;
  for (const std::string& p : Split(data_paths, ',')) {
    const std::string path(Trim(p));
    if (path.empty()) continue;
    const std::string id = DatasetIdFromPath(path);
    // Lazy loader: the CSV is parsed on the first `open` that names the
    // dataset (and again if the registry was LRU-evicted meanwhile).
    Status registered = router.RegisterDataset(
        id, [path, spec]() -> Result<RegistryRouter::DatasetBundle> {
          RH_ASSIGN_OR_RETURN(CsvTable csv, ReadCsvFile(path));
          RH_ASSIGN_OR_RETURN(CliProblem problem,
                              AssembleCliProblem(csv, spec));
          RegistryRouter::DatasetBundle bundle;
          bundle.data = SharedDataset(std::move(problem.data));
          bundle.given = std::move(problem.given);
          bundle.labels = std::move(problem.labels);
          return bundle;
        });
    if (!registered.ok()) return Fail(registered);
    ids.push_back(id);
  }
  if (ids.empty()) {
    std::cerr << "error: --listen needs --data=a.csv[,b.csv...]\n";
    return 1;
  }

  if (!router_options.journal_dir.empty()) {
    // Crash recovery before serving: rebuild every journaled session's
    // constraint state through the serial replay path (no solves re-run —
    // incumbents come back lazily), then report the `recover` accounting.
    auto recovered = router.RecoverFromJournals();
    if (!recovered.ok()) return Fail(recovered.status());
    std::cerr << StrFormat(
        "rankhow: recover replayed=%lld truncated=%lld skipped=%lld "
        "datasets=%d sessions=%d fingerprint_mismatches=%lld "
        "replay_failures=%lld\n",
        static_cast<long long>(recovered->replayed),
        static_cast<long long>(recovered->truncated),
        static_cast<long long>(recovered->skipped), recovered->datasets,
        recovered->sessions,
        static_cast<long long>(recovered->fingerprint_mismatches),
        static_cast<long long>(recovered->replay_failures));
  }

  ServeStreamOptions serve_options;
  // Network semantics: every connection owns the clients it opens, and
  // its end (quit/EOF/drop) closes them without draining siblings.
  serve_options.connection_scoped_clients = true;
  serve_options.metrics = &metrics;
  ReactorOptions reactor_options = reactor_options_in;
  reactor_options.metrics = &metrics;
  ReactorServer server(MakeWireReactorCallbacks(&router, serve_options),
                       reactor_options);
  Status started = server.Start(*address);
  if (!started.ok()) return Fail(started);
  std::cerr << "rankhow: listening on " << server.bound_spec() << " ("
            << ids.size() << " dataset" << (ids.size() == 1 ? "" : "s")
            << ": " << Join(ids, ", ") << "; default " << ids[0] << "; "
            << server.num_loops() << " event loop"
            << (server.num_loops() == 1 ? "" : "s") << ")\n";
  server.Wait();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(argc, argv);
  std::string data_path =
      flags.GetString("data", "", "CSV file with the ranked relation");
  std::string id_column =
      flags.GetString("id", "", "label column (not used for scoring)");
  std::string rank_column = flags.GetString(
      "rank", "", "column with given positions (blank/-/na = unranked)");
  int k = static_cast<int>(flags.GetInt(
      "k", 10, "ranking length when --rank is absent (file order ranks)"));
  std::string attrs = flags.GetString(
      "attrs", "", "comma-separated ranking attributes (default: all)");
  std::string negate = flags.GetString(
      "negate", "", "attributes where lower is better (negated)");
  bool normalize =
      flags.GetBool("normalize", true, "min-max rescale attributes to [0,1]");
  bool offset = flags.GetBool(
      "offset-ranking", false,
      "accept rankings that start above position 1 (mid-ranking windows)");
  bool drop_duplicates = flags.GetBool(
      "drop-duplicates", false, "keep one of identically-valued tuples");
  std::string min_weights = flags.GetString(
      "min-weight", "", "weight floors, e.g. PTS:0.1,AST:0.05");
  std::string max_weights =
      flags.GetString("max-weight", "", "weight ceilings, e.g. BLK:0.3");
  std::string orders = flags.GetString(
      "order", "", "pairwise orders by label, e.g. 'Jokic>Tatum'");
  std::string objective_name = flags.GetString(
      "objective", "position", "position | topheavy | inversions");
  std::string strategy_name =
      flags.GetString("strategy", "auto", "auto | milp | spatial | sat");
  double tie_eps = flags.GetDouble("eps", 5e-5, "tie tolerance ε (Def. 2)");
  double eps1 = flags.GetDouble("eps1", 1e-4, "beats threshold ε₁ (Eq. 2)");
  double eps2 = flags.GetDouble("eps2", 0.0, "tie threshold ε₂ (Eq. 2)");
  std::string time_limit_spec = flags.GetString(
      "time-limit", "60", "solve budget in seconds (0 = none)");
  std::string threads_spec = flags.GetString(
      "threads", "1",
      "search worker threads: 1 = serial, 'all' (or 0) = every hardware "
      "thread, n = exactly n");
  std::string session_spec = flags.GetString(
      "session", "",
      "scripted session mode: an edit script (one edit+solve per line; see "
      "README), or a comma-separated list of scripts fanned out as "
      "independent sessions across the thread pool");
  bool serve = flags.GetBool(
      "serve", false,
      "session server mode: route per-client edit streams (line protocol "
      "on stdin/stdout; see README) to SolveSessions sharing the dataset "
      "copy-on-write, scheduled on the --threads pool");
  int clients = static_cast<int>(flags.GetInt(
      "clients", 0,
      "with --serve: run N scripted clients (client i streams the i-th "
      "--session script, round-robin) instead of reading a transport — "
      "deterministic multi-client mode for testing and benchmarks"));
  std::string listen_spec = flags.GetString(
      "listen", "",
      "network session server: serve the wire protocol on unix:PATH (or a "
      "bare path containing '/') or HOST:PORT (port 0 = ephemeral, "
      "printed on stderr); --data may list several CSVs — dataset ids are "
      "the file basenames, selected per client via 'open CLIENT DATASET' "
      "(see docs/PROTOCOL.md and docs/OPERATIONS.md)");
  int max_registries = static_cast<int>(flags.GetInt(
      "max-registries", 4,
      "with --listen: resident dataset registries; loading beyond this "
      "LRU-evicts an idle zero-client registry"));
  int max_sessions = static_cast<int>(flags.GetInt(
      "max-sessions", 64,
      "with --listen: total open client sessions across all datasets; "
      "opening beyond this LRU-closes idle sessions"));
  std::string journal_dir = flags.GetString(
      "journal-dir", "",
      "with --listen: write-ahead session journals (one per dataset) in "
      "this directory, and recover journaled sessions on startup (see "
      "docs/OPERATIONS.md 'Durability & recovery'); empty = no journal");
  int journal_fsync = static_cast<int>(flags.GetInt(
      "journal-fsync", 32,
      "with --journal-dir: fsync the journal after every N records (1 = "
      "every record, 0 = let the OS flush)"));
  std::string warm_cache_dir = flags.GetString(
      "warm-cache-dir", "",
      "with --listen: persist proven winners to <dir>/warm.cache keyed by "
      "problem fingerprint, and seed warm starts from it across restarts "
      "and registry evictions (see docs/OPERATIONS.md 'Warm-start cache'); "
      "empty = no cache");
  int idle_timeout = static_cast<int>(flags.GetInt(
      "idle-timeout", 0,
      "with --listen: drop connections silent for this many seconds (their "
      "sessions abort-close like a vanished peer); 0 = never"));
  int loops = static_cast<int>(flags.GetInt(
      "loops", 0,
      "with --listen: epoll event-loop threads multiplexing the "
      "connections; 0 = min(4, hardware threads)"));
  int64_t max_conn_buffer = flags.GetInt(
      "max-conn-buffer", 4 << 20,
      "with --listen: per-connection queued-response byte bound — a peer "
      "that stops reading past this is abort-closed (backpressure) instead "
      "of stalling the server");
  int max_pending = static_cast<int>(flags.GetInt(
      "max-pending", 256,
      "with --listen: per-dataset overload watermark — queued + in-flight "
      "commands beyond this shed new submits with a RETRY-AFTER hint; "
      "0 = never shed"));
  bool share_incumbents = flags.GetBool(
      "share-incumbents", true,
      "with --serve/--listen: registry-level cross-client incumbent "
      "sharing — clients over one snapshot warm-start from each other's "
      "proven winners (candidates only, revalidated per client)");
  bool use_sym_gd = flags.GetBool(
      "sym-gd", false, "approximate with symbolic gradient descent (Sec. IV)");
  double cell = flags.GetDouble("cell", 0.01, "SYM-GD cell size c");
  bool adaptive = flags.GetBool(
      "adaptive", true, "SYM-GD Algorithm 2 (double the cell when stuck)");
  std::string seeds_spec = flags.GetString(
      "seeds", "1",
      "SYM-GD portfolio size: race this many diverse seeds across the "
      "thread pool and keep the best (requires --sym-gd)");
  bool show_table =
      flags.GetBool("show-table", true, "print given vs synthesized table");
  if (!flags.Finish()) return 0;

  if (data_path.empty()) {
    std::cerr << "error: --data is required (try --help)\n";
    return 1;
  }

  CliDataSpec spec;
  if (!attrs.empty()) {
    for (const std::string& a : Split(attrs, ',')) {
      spec.attributes.emplace_back(Trim(a));
    }
  }
  if (!negate.empty()) {
    for (const std::string& a : Split(negate, ',')) {
      spec.negate.emplace_back(Trim(a));
    }
  }
  spec.id_column = id_column;
  spec.rank_column = rank_column;
  spec.k = k;
  spec.normalize = normalize;
  spec.offset_ranking = offset;
  spec.drop_duplicates = drop_duplicates;

  auto strategy = ParseStrategy(strategy_name);
  if (!strategy.ok()) return Fail(strategy.status());
  auto threads = ParseThreadCount(threads_spec);
  if (!threads.ok()) return Fail(threads.status());
  auto time_limit_parsed = ParseTimeLimit(time_limit_spec);
  if (!time_limit_parsed.ok()) return Fail(time_limit_parsed.status());
  const double time_limit = *time_limit_parsed;
  auto seeds_parsed = ParsePositiveCount("seeds", seeds_spec);
  if (!seeds_parsed.ok()) return Fail(seeds_parsed.status());
  const int seeds = *seeds_parsed;

  RankHowOptions options;
  options.eps.tie_eps = tie_eps;
  options.eps.eps1 = eps1;
  options.eps.eps2 = eps2;
  options.strategy = *strategy;
  options.time_limit_seconds = time_limit;
  options.num_threads = *threads;
  if (!options.eps.Valid()) {
    std::cerr << "error: epsilons must satisfy eps2 <= eps < eps1\n";
    return 1;
  }

  if (!listen_spec.empty()) {
    // Network serving loads its datasets lazily (first `open` per id), so
    // this mode never touches the CSVs up front.
    if (serve || clients != 0 || !session_spec.empty() || use_sym_gd ||
        !min_weights.empty() || !max_weights.empty() || !orders.empty()) {
      std::cerr << "error: --listen is a standalone server mode; drop "
                   "--serve/--clients/--session/--sym-gd and the "
                   "constraint flags (clients script their own "
                   "constraints)\n";
      return 1;
    }
    // The default objective for every client session; `objective` edits
    // re-derive per-dataset ladders from each session's own ranking, so
    // the --k flag only sizes the default spec here.
    auto objective = ParseObjectiveSpec(objective_name, k);
    if (!objective.ok()) return Fail(objective.status());
    RouterOptions router_options;
    router_options.server.solver = options;
    router_options.server.objective = *objective;
    router_options.server.num_workers = *threads;
    router_options.server.share_incumbents = share_incumbents;
    router_options.max_resident_registries = max_registries;
    router_options.max_open_sessions = max_sessions;
    if (max_registries < 1 || max_sessions < 1) {
      std::cerr << "error: --max-registries/--max-sessions want positive "
                   "counts\n";
      return 1;
    }
    if (journal_fsync < 0 || max_pending < 0 || idle_timeout < 0 ||
        loops < 0 || max_conn_buffer < 1) {
      std::cerr << "error: --journal-fsync/--max-pending/--idle-timeout/"
                   "--loops want non-negative counts and --max-conn-buffer "
                   "a positive byte count\n";
      return 1;
    }
    router_options.server.max_clients = max_sessions;
    router_options.server.max_pending_commands = max_pending;
    if (!journal_dir.empty()) {
      // Best-effort create; an unusable directory degrades per dataset
      // (the router serves without durability, loudly) rather than
      // refusing to start.
      ::mkdir(journal_dir.c_str(), 0755);
      router_options.journal_dir = journal_dir;
      router_options.journal.fsync_every = journal_fsync;
    }
    if (!warm_cache_dir.empty()) {
      // Same best-effort contract as the journal: an unusable directory
      // serves cache-off, loudly, rather than refusing to start.
      ::mkdir(warm_cache_dir.c_str(), 0755);
      router_options.warm_cache_dir = warm_cache_dir;
    }
    ReactorOptions reactor_options;
    reactor_options.num_loops = loops;
    reactor_options.idle_timeout_seconds = idle_timeout;
    reactor_options.max_conn_buffer = static_cast<size_t>(max_conn_buffer);
    return RunListenServer(listen_spec, data_path, spec, router_options,
                           reactor_options);
  }

  auto csv = ReadCsvFile(data_path);
  if (!csv.ok()) return Fail(csv.status());

  auto problem = AssembleCliProblem(*csv, spec);
  if (!problem.ok()) return Fail(problem.status());

  auto objective = ParseObjectiveSpec(objective_name, problem->given.k());
  if (!objective.ok()) return Fail(objective.status());

  // In wire-serve mode stdout carries ONLY tagged protocol responses; the
  // banner goes to stderr so strict line parsers never see it.
  (serve && clients == 0 ? std::cerr : std::cout)
      << "rankhow: " << problem->data.num_tuples() << " tuples, "
      << problem->data.num_attributes() << " attributes, k="
      << problem->given.k() << "\n";

  if (clients != 0 && !serve) {
    std::cerr << "error: --clients is a --serve mode\n";
    return 1;
  }
  if (serve) {
    if (use_sym_gd) {
      std::cerr << "error: --serve drives the exact solver; drop --sym-gd\n";
      return 1;
    }
    if (!min_weights.empty() || !max_weights.empty() || !orders.empty()) {
      std::cerr << "error: --serve clients own their constraints; drop "
                   "--min-weight/--max-weight/--order (script them per "
                   "client)\n";
      return 1;
    }
    if (clients < 0) {
      std::cerr << "error: --clients wants a positive count\n";
      return 1;
    }
    if (clients == 0 && !session_spec.empty()) {
      std::cerr << "error: --serve reads the wire protocol from stdin; "
                   "use --clients=N to stream --session scripts\n";
      return 1;
    }
    ServerOptions server_options;
    server_options.solver = options;
    server_options.objective = *objective;
    server_options.num_workers = *threads;
    server_options.max_clients = std::max(64, clients);
    server_options.share_incumbents = share_incumbents;
    SessionRegistry registry(SharedDataset(problem->data), problem->given,
                             problem->labels, server_options);
    if (clients > 0) {
      // Deterministic scripted-client mode: client i streams the i-th
      // --session script (round-robin) — no transport, used by tests and
      // the throughput bench.
      if (session_spec.empty()) {
        std::cerr << "error: --serve --clients=N needs --session scripts\n";
        return 1;
      }
      auto parsed = ParseSessionScripts(session_spec);
      if (!parsed.ok()) return Fail(parsed.status());
      auto runs = RunScriptedClients(&registry, parsed->scripts, clients);
      if (!runs.ok()) return Fail(runs.status());
      int exit_code = 0;
      for (const ScriptedClientRun& run : *runs) {
        std::cout << "client " << run.client << ":\n";
        PrintOutcomeTable(run.outcomes);
        if (!run.status.ok()) {
          std::cout << "  first failed step: " << run.status.ToString()
                    << "\n";
          exit_code = 1;
        }
      }
      SessionRegistryStats stats = registry.Stats();
      std::cout << StrFormat(
          "server: %d clients, %d resident dataset copies, %lld commands, "
          "%lld COW forks\n",
          stats.open_clients, stats.resident_dataset_copies,
          static_cast<long long>(stats.commands_executed),
          static_cast<long long>(stats.dataset_forks));
      return exit_code;
    }
    // The stdio stream still gets verb latencies (`metrics` works over a
    // pipe too); there is no transport, so the gauges stay zero.
    ServerMetrics metrics;
    ServeStreamOptions stdio_options;
    stdio_options.metrics = &metrics;
    Status served = ServeStream(&registry, std::cin, std::cout,
                                stdio_options);
    if (!served.ok()) return Fail(served);
    return 0;
  }

  if (!session_spec.empty()) {
    if (use_sym_gd) {
      std::cerr << "error: --session drives the exact solver; drop "
                   "--sym-gd\n";
      return 1;
    }
    auto parsed = ParseSessionScripts(session_spec);
    if (!parsed.ok()) return Fail(parsed.status());
    std::vector<std::string>& paths = parsed->paths;
    std::vector<std::vector<SessionCommand>>& scripts = parsed->scripts;
    SharedDataset shared(problem->data);

    if (paths.size() == 1) {
      // Single scripted session; inner solves use the --threads workers.
      auto session = MakeSession(shared, *problem, options, *objective,
                                 min_weights, max_weights, orders);
      if (!session.ok()) return Fail(session.status());
      auto outcomes =
          RunSessionScript(session->get(), scripts[0], problem->labels);
      if (!outcomes.ok()) return Fail(outcomes.status());
      PrintSessionOutcomes(paths[0], *outcomes, (*session)->stats());
      return 0;
    }

    // Batch mode: independent sessions fanned across the thread pool, each
    // solving serially (the pool supplies the parallelism).
    RankHowOptions batch_options = options;
    batch_options.num_threads = 1;
    struct BatchRun {
      Status status;
      std::vector<SessionStepOutcome> outcomes;
      SolveSessionStats stats;
    };
    std::vector<BatchRun> runs(paths.size());
    {
      ThreadPool pool(ThreadPool::ResolveThreadCount(*threads));
      TaskGroup group(&pool);
      for (size_t i = 0; i < paths.size(); ++i) {
        group.Spawn([&, i] {
          auto session = MakeSession(shared, *problem, batch_options,
                                     *objective, min_weights, max_weights,
                                     orders);
          if (!session.ok()) {
            runs[i].status = session.status();
            return;
          }
          auto outcomes =
              RunSessionScript(session->get(), scripts[i], problem->labels);
          if (!outcomes.ok()) {
            runs[i].status = outcomes.status();
            return;
          }
          runs[i].outcomes = *std::move(outcomes);
          runs[i].stats = (*session)->stats();
        });
      }
      group.Wait();
    }
    int exit_code = 0;
    for (size_t i = 0; i < paths.size(); ++i) {
      if (!runs[i].status.ok()) {
        std::cerr << "session " << paths[i]
                  << " failed: " << runs[i].status.ToString() << "\n";
        exit_code = 1;
        continue;
      }
      PrintSessionOutcomes(paths[i], runs[i].outcomes, runs[i].stats);
    }
    return exit_code;
  }

  ScoringFunction function;
  long error = 0;
  std::string summary;
  if (use_sym_gd) {
    SymGdOptions sym_options;
    sym_options.cell_size = cell;
    sym_options.adaptive = adaptive;
    sym_options.time_budget_seconds = time_limit;
    sym_options.num_seeds = seeds;
    sym_options.solver = options;
    sym_options.solver.strategy = SolveStrategy::kAuto;
    SymGd symgd(problem->data, problem->given, sym_options);
    symgd.problem().objective = *objective;
    Status st = ApplyWeightBounds(problem->data, min_weights, true,
                                  &symgd.problem().constraints);
    if (st.ok()) {
      st = ApplyWeightBounds(problem->data, max_weights, false,
                             &symgd.problem().constraints);
    }
    if (st.ok()) {
      st = ApplyOrderConstraints(problem->labels, orders,
                                 &symgd.problem().order_constraints);
    }
    if (!st.ok()) return Fail(st);
    Result<SymGdResult> result = Status::Internal("unset");
    if (seeds > 1) {
      result = symgd.RunPortfolio();
    } else {
      auto seed = OrdinalRegressionSeed(problem->data, problem->given, eps1);
      if (!seed.ok()) return Fail(seed.status());
      result = symgd.Run(*seed);
    }
    if (!result.ok()) return Fail(result.status());
    function = std::move(result->function);
    error = result->error;
    summary = StrFormat("sym-gd: %d cells, final cell %.4g, %.2fs",
                        result->iterations, result->final_cell_size,
                        result->seconds);
    if (!result->portfolio.empty()) {
      summary += StrFormat("\nportfolio (%d seeds, winner %s):",
                           static_cast<int>(result->portfolio.size()),
                           result->portfolio[result->winning_seed]
                               .seed_name.c_str());
      for (const SeedRun& run : result->portfolio) {
        summary += StrFormat("\n  %-10s error %ld in %d cells (%.2fs)",
                             run.seed_name.c_str(), run.error,
                             run.iterations, run.seconds);
      }
    }
  } else {
    RankHow solver(problem->data, problem->given, options);
    solver.problem().objective = *objective;
    Status st = ApplyWeightBounds(problem->data, min_weights, true,
                                  &solver.problem().constraints);
    if (st.ok()) {
      st = ApplyWeightBounds(problem->data, max_weights, false,
                             &solver.problem().constraints);
    }
    if (st.ok()) {
      st = ApplyOrderConstraints(problem->labels, orders,
                                 &solver.problem().order_constraints);
    }
    if (!st.ok()) return Fail(st);
    auto result = solver.Solve();
    if (!result.ok()) return Fail(result.status());
    function = std::move(result->function);
    error = result->error;
    summary = StrFormat(
        "%s: %s, bound %ld, %lld nodes, %.2fs",
        SolveStrategyName(result->strategy_used),
        result->proven_optimal ? "proven optimal" : "best incumbent",
        result->bound, static_cast<long long>(result->stats.nodes_explored),
        result->seconds);
    if (result->verification && !result->verification->consistent) {
      summary += "  [NUMERICALLY INCONSISTENT — raise --eps1]";
    }
  }

  std::cout << "\nscoring function:  " << function.ToString(3) << "\n";
  std::cout << "verified " << ObjectiveKindName(objective->kind)
            << " error: " << error;
  if (problem->given.k() > 0) {
    std::cout << StrFormat("  (%.3f per ranked tuple)",
                           static_cast<double>(error) / problem->given.k());
  }
  std::cout << "\n" << summary << "\n\n";
  if (show_table) PrintComparison(*problem, function.weights, tie_eps);
  return 0;
}
