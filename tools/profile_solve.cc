// Times the phases of one RankHow solve (model build, presolve, search,
// verification) on an NBA-simulator instance. Used to chase time-budget
// overruns; kept as a repo tool because it is the quickest way to see where
// a configuration's wall clock goes.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/opt_model_builder.h"
#include "core/presolve.h"
#include "core/rankhow.h"
#include "data/nba.h"
#include "util/timer.h"

using namespace rankhow;

int main(int argc, char** argv) {
  bool mvp = argc > 1 && std::strcmp(argv[1], "mvp") == 0;
  int n = argc > 1 && !mvp ? std::atoi(argv[1]) : 1200;
  int m = argc > 2 ? std::atoi(argv[2]) : 8;
  int k = argc > 3 ? std::atoi(argv[3]) : 6;
  double budget = argc > 4 ? std::atof(argv[4]) : 10;

  Dataset data;
  Ranking given;
  if (mvp) {
    NbaData nba = GenerateNba({.num_tuples = 6000, .seed = 22});
    MvpVoteResult vote = SimulateMvpVote(nba, 100, 22);
    data = vote.voted_table;
    data.NormalizeMinMax();
    given = vote.ranking;
    std::printf("mvp instance: %d voted players, m=%d, k=%d\n",
                data.num_tuples(), data.num_attributes(), given.k());
  } else {
    NbaData nba = GenerateNba({.num_tuples = n, .seed = 1});
    data = nba.table;
    std::vector<int> attrs;
    for (int a = 0; a < m; ++a) attrs.push_back(a);
    data = data.SelectAttributes(attrs);
    data.NormalizeMinMax();
    given = Ranking::FromScores(nba.mp_times_per, k, 0.0);
  }
  m = data.num_attributes();

  EpsilonConfig eps;
  eps.tie_eps = 5e-5;
  eps.eps1 = 1e-4;
  eps.eps2 = 0.0;

  OptProblem problem;
  problem.data = &data;
  problem.given = &given;
  problem.eps = eps;

  WallTimer t;
  auto model = BuildOptModel(problem, WeightBox::FullSimplex(m), true, true);
  std::printf("build model: %.2fs (free=%ld fixed=%ld)\n", t.ElapsedSeconds(),
              model->num_free_indicators, model->num_fixed_indicators);

  t.Restart();
  auto pre = PresolveIncumbent(problem, WeightBox::FullSimplex(m));
  std::printf("presolve: %.2fs (error=%ld evals=%d)\n", t.ElapsedSeconds(),
              pre->error, pre->evaluated);

  RankHowOptions options;
  options.eps = eps;
  options.time_limit_seconds = budget;
  if (argc > 5) {
    options.strategy = std::strcmp(argv[5], "spatial") == 0
                           ? SolveStrategy::kSpatial
                           : SolveStrategy::kIndicatorMilp;
  }
  RankHow solver(data, given, options);
  t.Restart();
  auto result = solver.Solve();
  std::printf(
      "solve: %.2fs (error=%ld bound=%ld optimal=%d nodes=%lld lp_iters=%lld "
      "lazy=%lld incumbents=%lld)\n",
      t.ElapsedSeconds(), result->error, result->bound,
      result->proven_optimal,
      static_cast<long long>(result->stats.nodes_explored),
      static_cast<long long>(result->stats.lp_iterations),
      static_cast<long long>(result->stats.lazy_rounds),
      static_cast<long long>(result->stats.incumbent_updates));
  return 0;
}
