/// \file rankhow_coord.cc
/// Shard coordinator for a fleet of `rankhow_cli --listen` workers
/// (docs/OPERATIONS.md "Distributed serving"). Clients speak the
/// unchanged wire protocol (docs/PROTOCOL.md) to this process; it routes
/// each `open` to a worker by the catalog shard map, proxies session
/// traffic verbatim, health-checks the fleet, scatter-gathers
/// `stats`/`metrics`, and fails sessions over to a replacement worker by
/// replaying their acked edit scripts when a worker dies.
///
///   rankhow_coord --listen=127.0.0.1:9000
///       --workers=127.0.0.1:9001,127.0.0.1:9002
///       --shard-map=nba=127.0.0.1:9001

#include <chrono>
#include <iostream>
#include <thread>

#include "coord/coordinator.h"
#include "util/string_util.h"

namespace rankhow {
namespace {

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

int Run(int argc, char** argv) {
  FlagParser flags(argc, argv);
  std::string listen_spec = flags.GetString(
      "listen", "",
      "address to serve clients on: unix:PATH (or a bare path containing "
      "'/') or HOST:PORT (port 0 = ephemeral, printed on stderr)");
  std::string workers_spec = flags.GetString(
      "workers", "",
      "comma-separated worker listen specs; datasets outside --shard-map "
      "are assigned round-robin over this list on first open (sticky)");
  std::string shard_map_spec = flags.GetString(
      "shard-map", "",
      "explicit dataset pins, comma-separated dataset=host:port entries; "
      "workers named only here join the worker list");
  int health_interval_ms = static_cast<int>(flags.GetInt(
      "health-interval-ms", 1000, "worker health-probe period"));
  int health_timeout_ms = static_cast<int>(flags.GetInt(
      "health-timeout-ms", 2000, "per-probe response timeout"));
  int health_failures = static_cast<int>(flags.GetInt(
      "health-failures", 3,
      "consecutive probe failures before a worker is marked down (a "
      "broken session connection probes immediately)"));
  int dial_timeout_ms = static_cast<int>(flags.GetInt(
      "dial-timeout-ms", 2000, "worker connect timeout"));
  if (!flags.Finish()) return 0;

  if (listen_spec.empty()) {
    std::cerr << "error: --listen is required (try --help)\n";
    return 1;
  }
  if (health_interval_ms < 1 || health_timeout_ms < 1 ||
      health_failures < 1 || dial_timeout_ms < 1) {
    std::cerr << "error: health/dial settings want positive counts\n";
    return 1;
  }
  auto address = ParseListenSpec(listen_spec);
  if (!address.ok()) return Fail(address.status());
  auto shard_map = ShardMap::Parse(workers_spec, shard_map_spec);
  if (!shard_map.ok()) return Fail(shard_map.status());

  CoordOptions options;
  options.health.interval_ms = health_interval_ms;
  options.health.timeout_ms = health_timeout_ms;
  options.health.failure_threshold = health_failures;
  options.health.dial_timeout_ms = dial_timeout_ms;

  const size_t num_workers = shard_map->workers().size();
  std::vector<std::string> specs;
  for (const WorkerSpec& worker : shard_map->workers()) {
    specs.push_back(worker.spec);
  }
  const int pinned = shard_map->num_fixed_shards();
  CoordServer server(std::move(*shard_map), options);
  Status started = server.Start(*address);
  if (!started.ok()) return Fail(started);
  std::cerr << "rankhow_coord: listening on " << server.bound_spec() << " ("
            << num_workers << " worker" << (num_workers == 1 ? "" : "s")
            << ": " << Join(specs, ", ") << "; " << pinned
            << " pinned shard" << (pinned == 1 ? "" : "s") << ")\n";
  // Serve until the process is terminated; workers treat a dying
  // coordinator's connections like vanished clients (abort-close).
  for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
}

}  // namespace
}  // namespace rankhow

int main(int argc, char** argv) { return rankhow::Run(argc, argv); }
