// Ad-hoc repro driver for the warm-start B&B path: runs one indicator-MILP
// RankHow solve with warm starts on and off and prints BnbStats. Kept as a
// repo tool because it is the quickest way to compare the two engines on a
// single instance.
#include <cstdio>
#include <cstdlib>

#include "core/rankhow.h"
#include "data/synthetic.h"
#include "ranking/score_ranking.h"

using namespace rankhow;

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::atoll(argv[1]) : 3;
  int dist = argc > 2 ? std::atoi(argv[2]) : 0;
  double limit = argc > 3 ? std::atof(argv[3]) : 30;
  SyntheticSpec spec;
  spec.num_tuples = 24;
  spec.num_attributes = 3;
  spec.distribution = static_cast<SyntheticDistribution>(dist);
  spec.seed = seed;
  Dataset data = GenerateSynthetic(spec);
  Ranking given = PowerSumRanking(data, 2, 5);

  for (bool warm : {false, true}) {
    RankHowOptions options;
    options.eps.tie_eps = 5e-7;
    options.eps.eps1 = 1e-6;
    options.eps.eps2 = 0.0;
    options.strategy = SolveStrategy::kIndicatorMilp;
    options.time_limit_seconds = limit;
    options.use_warm_start = warm;
    RankHow solver(data, given, options);
    auto r = solver.Solve();
    if (!r.ok()) {
      std::printf("warm=%d FAILED: %s\n", warm,
                  r.status().ToString().c_str());
      continue;
    }
    const BnbStats& s = r->stats;
    std::printf(
        "warm=%d error=%ld bound=%ld optimal=%d nodes=%lld pivots=%lld "
        "(primal=%lld dual=%lld repair=%lld import=%lld) warm/cold=%lld/%lld "
        "rebuilds=%lld fallbacks=%lld lazy=%lld secs=%.2f\n",
        warm, r->error, r->bound, r->proven_optimal,
        (long long)s.nodes_explored, (long long)s.lp_iterations,
        (long long)s.lp_primal_pivots, (long long)s.lp_dual_pivots,
        (long long)s.lp_repair_pivots, (long long)s.lp_import_pivots,
        (long long)s.lp_warm_solves, (long long)s.lp_cold_solves,
        (long long)s.lp_rebuilds, (long long)s.lp_fallback_solves,
        (long long)s.lazy_rounds, s.seconds);
  }
  return 0;
}
